#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, workspace tests,
# and a short deterministic stress sweep of the STM runtime.
#
# Usage: scripts/verify.sh [stress-seconds]   (default 10)

set -euo pipefail
cd "$(dirname "$0")/.."

STRESS_SECONDS="${1:-10}"

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> stress smoke (${STRESS_SECONDS}s, every algorithm/lock/CM combo)"
cargo run --release --offline -p testkit --bin stress -- --seconds "$STRESS_SECONDS"

echo "==> verify OK"
