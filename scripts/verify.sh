#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, workspace tests,
# and a short deterministic stress sweep of the STM runtime.
#
# Usage: scripts/verify.sh [stress-seconds]   (default 10)

set -euo pipefail
cd "$(dirname "$0")/.."

STRESS_SECONDS="${1:-10}"

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> stress smoke (${STRESS_SECONDS}s, every algorithm/lock/CM combo; mixed, read-mostly, write-heavy and contended-commit schedules per seed)"
cargo run --release --offline -p testkit --bin stress -- --seconds "$STRESS_SECONDS"

# Chaos tier: the same 21-combo matrix with tm's deterministic fault
# injection armed (spurious aborts, delays, panics) and the ticket oracle
# still on. Separate cargo invocations so the `chaos`/`fault` features
# never unify into the plain build or the bench binaries.
echo "==> chaos tests (tm fault layer + chaos schedules + fault-path zero-alloc guard)"
cargo test -q --offline -p tm --features fault
cargo test -q --offline -p testkit --features chaos

echo "==> chaos stress (5s, every combo, deterministic fault plan; all four schedules)"
cargo run --release --offline -p testkit --features chaos --bin stress -- --chaos --seconds 5

# Wire smoke: a real mcached on ephemeral TCP + UDP + Unix transports
# (epoll backend — the default), mcslap workloads on every transport
# plus the two connection-scale scenarios (each asserts every response
# against the workload oracle and frame_errors=0 server-side), then a
# clean pipe-driven shutdown that must exit 0.
echo "==> wire smoke (mcached over loopback TCP/UDP/unix, epoll backend)"
WIRE_LOG="$PWD/target/mcached-smoke.log"
WIRE_CTL="$PWD/target/mcached-smoke.ctl"
WIRE_SOCK="$PWD/target/mcached-smoke.sock"
rm -f "$WIRE_CTL" "$WIRE_SOCK"
mkfifo "$WIRE_CTL"
target/release/mcached --port 0 --udp 0 --unix "$WIRE_SOCK" --threads 2 \
    < "$WIRE_CTL" > "$WIRE_LOG" 2>&1 &
WIRE_PID=$!
exec 9> "$WIRE_CTL" # hold the control pipe open until shutdown
for _ in $(seq 1 300); do grep -q '^LISTENING-UNIX' "$WIRE_LOG" && break; sleep 0.1; done
grep -q '^LISTENING-UNIX' "$WIRE_LOG"
WIRE_ADDR=$(awk '/^LISTENING /{print $2; exit}' "$WIRE_LOG")
WIRE_UDP=$(awk '/^LISTENING-UDP/{print $2; exit}' "$WIRE_LOG")
target/release/mcslap --tcp "$WIRE_ADDR" --execute-number 5000 --concurrency 4 \
    --read-ratio 90 --multiget 8
target/release/mcslap --tcp "$WIRE_ADDR" --execute-number 5000 --concurrency 4 \
    --read-ratio 50 --binary --multiget 4 --setq-pipeline 8
target/release/mcslap --unix "$WIRE_SOCK" --execute-number 3000 --concurrency 2 \
    --read-ratio 80
target/release/mcslap --udp "$WIRE_UDP" --execute-number 2000 --connections 2 \
    --read-ratio 90
target/release/mcslap --udp "$WIRE_UDP" --execute-number 500 --connections 2 \
    --keys 100 --value-size 4000   # multi-datagram responses
echo "==> connection-scale smoke (churn storm + fan-in, epoll backend)"
target/release/mcslap --tcp "$WIRE_ADDR" --churn 4 --execute-number 50 --keys 200
target/release/mcslap --tcp "$WIRE_ADDR" --fanin 200 --concurrency 4 \
    --execute-number 400 --keys 200
echo shutdown >&9
wait "$WIRE_PID"
exec 9>&-
rm -f "$WIRE_CTL"
grep -q 'frame_errors=0' "$WIRE_LOG"
echo "    wire smoke OK: $(tail -n 1 "$WIRE_LOG")"

# The same connection-scale scenarios on the portable polling backend:
# both backends must survive churn and fan-in with zero frame errors
# and shut down cleanly.
echo "==> connection-scale smoke (churn storm + fan-in, poll backend)"
POLL_LOG="$PWD/target/mcached-poll-smoke.log"
POLL_CTL="$PWD/target/mcached-poll-smoke.ctl"
rm -f "$POLL_CTL"
mkfifo "$POLL_CTL"
target/release/mcached --port 0 --threads 2 --event-loop poll \
    < "$POLL_CTL" > "$POLL_LOG" 2>&1 &
POLL_PID=$!
exec 8> "$POLL_CTL"
for _ in $(seq 1 300); do grep -q '^LISTENING' "$POLL_LOG" && break; sleep 0.1; done
grep -q '^LISTENING' "$POLL_LOG"
POLL_ADDR=$(awk '/^LISTENING /{print $2; exit}' "$POLL_LOG")
target/release/mcslap --tcp "$POLL_ADDR" --execute-number 2000 --concurrency 2 \
    --read-ratio 90
target/release/mcslap --tcp "$POLL_ADDR" --churn 2 --execute-number 30 --keys 100
target/release/mcslap --tcp "$POLL_ADDR" --fanin 100 --concurrency 2 \
    --execute-number 200 --keys 100
echo shutdown >&8
wait "$POLL_PID"
exec 8>&-
rm -f "$POLL_CTL"
grep -q 'frame_errors=0' "$POLL_LOG"
echo "    poll-backend smoke OK: $(tail -n 1 "$POLL_LOG")"

# Durability tier: the kill-at-random-commit harness. 36 seeded kill
# points sweep every (fsync policy x kill mode) combination — each child
# is murdered by chaos injection inside the log writer at a seed-chosen
# append, and the parent replays the log against the exact oracle — plus
# one injected-EIO degradation case per policy. Then a warm-restart
# round trip under mcslap verifies and times recovery end to end.
echo "==> crash sweep (mccrash: 36 kill points x {always,every:8,off} x {before,mid,after} + 3 chaos-fail arms)"
target/release/mccrash --sweep 36 --seed 1

echo "==> warm restart smoke (mcslap --restart: load, seal, recover, verify)"
target/release/mcslap --restart --branch it-oncommit --keys 5000 --concurrency 2 \
    --dur-fsync every:32

# Adaptive smoke: the three-phase schedule (read-mostly → write-storm →
# hot-key zipfian) with the controller live. The run must show the
# controller actually working: at least one algorithm switch (the
# read-mostly phase crosses RO_HIGH and lands on NOrec) and a non-zero
# privatized-hit count from the armed hot keys. Throughput comparisons
# against static configs are recorded in EXPERIMENTS.md, not gated here
# (single-run macro numbers drift too much across hosts to assert on).
echo "==> adaptive smoke (mcslap --phase-shift: controller switches + hot-key privatization)"
ADAPT_OUT=$(target/release/mcslap --phase-shift --branch it-oncommit --concurrency 4 \
    --execute-number 30000 --keys 4000 --adapt on --hot-slots 64 --magazine 64 \
    --adapt-epoch-ms 20)
echo "$ADAPT_OUT" | sed 's/^/    /'
echo "$ADAPT_OUT" | grep -q 'switches=[1-9]' || {
    echo "adaptive smoke: controller never switched algorithm"; exit 1; }
echo "$ADAPT_OUT" | grep -Eq 'hits=[1-9][0-9]*' || {
    echo "adaptive smoke: hot-key path never served a privatized hit"; exit 1; }

echo "==> bench smoke (stm_fastpath: word-granularity speedup + zero-alloc counts + contended sharded-clock arms)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_fastpath

echo "==> bench smoke (stm_getpath: read-only fast lane + multiget batching)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_getpath

echo "==> bench smoke (stm_setpath: mutation fast lane + store batching + slab magazines)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_setpath

echo "==> bench smoke (stm_wirepath: in-process vs loopback GET/SET roundtrips)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_wirepath

echo "==> bench smoke (stm_durpath: redo-log overhead per fsync policy + replay recovery)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_durpath

echo "==> bench smoke (stm_adaptpath: hot-key privatized GET + controller tick/switch costs)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_adaptpath

echo "==> bench smoke (stm_netpath: connection lifecycle + fan-in GET, epoll vs poll)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_netpath

# Offline regression gate, two tiers:
#
# 1. RATIO gates inside the benches themselves (stm_getpath asserts the
#    fast-lane/fulltx ratio floor and the multiget non-inversion). The
#    paired arms run interleaved, so these ratios are stable across host
#    noise epochs — they are the *tight* gate, and a failure above
#    already aborted this script.
# 2. This ABSOLUTE gate: the fresh run's MINIMUM vs the committed
#    BENCH_*.json baselines' MEDIAN (noise only ever adds time, so the
#    fresh min is the stable cost estimate while the baseline median
#    sits a noise margin above its own floor). Measured cross-epoch
#    drift on shared hosts reaches ~35% even on minima, so the
#    threshold is 50% — this tier only catches catastrophic (≳1.5x)
#    absolute regressions. Zero-alloc counters must stay exactly zero
#    regardless. Runs BEFORE the cp below so the fresh reports can
#    never gate against themselves.
echo "==> bench regression gate (fresh min vs committed baseline median, 50%)"
cargo run --release --offline -p testkit --bin bench_compare -- . target/testkit-bench --threshold 50

cp target/testkit-bench/BENCH_fastpath_*.json target/testkit-bench/BENCH_getpath_*.json \
   target/testkit-bench/BENCH_setpath_*.json target/testkit-bench/BENCH_wirepath_*.json \
   target/testkit-bench/BENCH_durpath_*.json target/testkit-bench/BENCH_adaptpath_*.json \
   target/testkit-bench/BENCH_netpath_*.json .

echo "==> verify OK"
