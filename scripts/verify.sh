#!/usr/bin/env bash
# Tier-1 verification, fully offline: release build, workspace tests,
# and a short deterministic stress sweep of the STM runtime.
#
# Usage: scripts/verify.sh [stress-seconds]   (default 10)

set -euo pipefail
cd "$(dirname "$0")/.."

STRESS_SECONDS="${1:-10}"

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

echo "==> stress smoke (${STRESS_SECONDS}s, every algorithm/lock/CM combo)"
cargo run --release --offline -p testkit --bin stress -- --seconds "$STRESS_SECONDS"

# Chaos tier: the same 21-combo matrix with tm's deterministic fault
# injection armed (spurious aborts, delays, panics) and the ticket oracle
# still on. Separate cargo invocations so the `chaos`/`fault` features
# never unify into the plain build or the bench binaries.
echo "==> chaos tests (tm fault layer + chaos schedules + fault-path zero-alloc guard)"
cargo test -q --offline -p tm --features fault
cargo test -q --offline -p testkit --features chaos

echo "==> chaos stress (5s, every combo, deterministic fault plan)"
cargo run --release --offline -p testkit --features chaos --bin stress -- --chaos --seconds 5

echo "==> bench smoke (stm_fastpath: word-granularity speedup + zero-alloc counts)"
TESTKIT_BENCH_SAMPLES="${TESTKIT_BENCH_SAMPLES:-15}" \
    TESTKIT_BENCH_DIR="$PWD/target/testkit-bench" \
    cargo bench --offline -p bench --bench stm_fastpath
cp target/testkit-bench/BENCH_fastpath_*.json .

echo "==> verify OK"
