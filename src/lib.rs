//! # tm-memcached
//!
//! A Rust reproduction of *"Transactionalizing Legacy Code: an Experience
//! Report Using GCC and Memcached"* (Ruan, Vyas, Liu & Spear, ASPLOS
//! 2014) — the STM runtime, the cache, the transactionalization history,
//! and the paper's full evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`tm`] — the STM runtime in the image of GCC libitm (atomic/relaxed
//!   transactions, the global serial readers/writer lock, eager/lazy/NOrec
//!   algorithms, contention managers, onCommit handlers, serialization
//!   accounting).
//! * [`tmstd`] — transaction-safe standard-library replacements and the
//!   marshal-to-stack `transaction_pure` wrappers of §3.4.
//! * [`mcache`] — the memcached-1.4.15-like cache with every paper branch.
//! * [`workload`] — the memslap-style load generator.
//! * [`lockprof`] — the mutrace-style lock contention profiler of §3.1.
//!
//! ## Quick start
//!
//! ```
//! use tm_memcached::mcache::{Branch, McCache, McConfig, Stage};
//!
//! // Run the paper's final serialization-free branch:
//! let cache = McCache::start(McConfig {
//!     branch: Branch::IpNoLock,
//!     workers: 2,
//!     ..Default::default()
//! });
//! cache.set(0, b"key", b"value", 0, 0);
//! assert_eq!(cache.get(1, b"key").unwrap().data, b"value");
//! assert_eq!(cache.tm_stats().serialization_rate(), 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios, `crates/bench` for the
//! figure/table reproductions, and `DESIGN.md`/`EXPERIMENTS.md` for the
//! system inventory and measured results.

#![warn(missing_docs)]

pub use lockprof;
pub use mcache;
pub use tm;
pub use tmstd;
pub use workload;
