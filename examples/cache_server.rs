//! A miniature memcached session: drive the cache through the ASCII and
//! binary protocols on the paper's final branch, then print the `stats`
//! output and the TM runtime's serialization report.
//!
//! Run with `cargo run --example cache_server -- [branch]` where branch is
//! one of: baseline, semaphore, ip, it, ip-max, it-max, ip-lib, it-lib,
//! ip-oncommit, it-oncommit, ip-nolock, it-nolock (default: ip-nolock).

use tm_memcached::mcache::proto::{binary, execute_ascii};
use tm_memcached::mcache::{Branch, McCache, McConfig, Stage};

fn parse_branch(name: &str) -> Branch {
    match name {
        "baseline" => Branch::Baseline,
        "semaphore" => Branch::Semaphore,
        "ip" => Branch::Ip(Stage::Plain),
        "it" => Branch::It(Stage::Plain),
        "ip-callable" => Branch::Ip(Stage::Callable),
        "it-callable" => Branch::It(Stage::Callable),
        "ip-max" => Branch::Ip(Stage::Max),
        "it-max" => Branch::It(Stage::Max),
        "ip-lib" => Branch::Ip(Stage::Lib),
        "it-lib" => Branch::It(Stage::Lib),
        "ip-oncommit" => Branch::Ip(Stage::OnCommit),
        "it-oncommit" => Branch::It(Stage::OnCommit),
        "ip-nolock" => Branch::IpNoLock,
        "it-nolock" => Branch::ItNoLock,
        other => {
            eprintln!("unknown branch {other:?}, using ip-nolock");
            Branch::IpNoLock
        }
    }
}

fn main() {
    let branch = std::env::args()
        .nth(1)
        .map(|s| parse_branch(&s))
        .unwrap_or(Branch::IpNoLock);
    let cache = McCache::start(McConfig {
        branch,
        workers: 2,
        ..Default::default()
    });
    println!("== serving on branch {branch} ==\n");

    // An ASCII session, printed like a telnet transcript.
    let session: &[&[u8]] = &[
        b"version\r\n",
        b"set greeting 0 0 13\r\nhello, world!\r\n",
        b"get greeting\r\n",
        b"set counter 0 0 2\r\n41\r\n",
        b"incr counter 1\r\n",
        b"gets counter\r\n",
        b"append greeting 0 0 2\r\n!!\r\n",
        b"get greeting\r\n",
        b"delete counter\r\n",
        b"get counter greeting\r\n",
        b"stats\r\n",
    ];
    for req in session {
        print!("> {}", String::from_utf8_lossy(req).replace("\r\n", "\\r\\n "));
        println!();
        let resp = execute_ascii(&cache, 0, req);
        for line in String::from_utf8_lossy(&resp).split("\r\n") {
            if !line.is_empty() {
                println!("< {line}");
            }
        }
    }

    // The same cache through the binary protocol (memslap --binary).
    println!("\n== binary protocol ==");
    let set = binary::Request {
        opcode: binary::Opcode::Set,
        opaque: 1,
        cas: 0,
        key: b"bin-key".to_vec(),
        value: b"bin-value".to_vec(),
        extra: 0,
    };
    let wire = set.encode();
    println!("encoded set request: {} bytes (24-byte header + body)", wire.len());
    let decoded = binary::Request::decode(&wire).expect("round trip");
    let resp = binary::execute(&cache, 1, &decoded);
    println!("set -> {:?}", resp.status);
    let get = binary::Request {
        opcode: binary::Opcode::Get,
        opaque: 2,
        cas: 0,
        key: b"bin-key".to_vec(),
        value: vec![],
        extra: 0,
    };
    let resp = binary::execute(&cache, 1, &get);
    println!(
        "get -> {:?} value={:?} cas={}",
        resp.status,
        String::from_utf8_lossy(&resp.value),
        resp.cas
    );

    // What did it cost in TM terms?
    let tm = cache.tm_stats();
    println!("\n== TM runtime report ==");
    println!("{tm}");
    println!("commits={} aborts={}", tm.commits, tm.aborts);
}
