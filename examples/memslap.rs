//! The paper's experiment in miniature: run the memslap-style workload
//! against two branches (lock-based baseline vs the final transactional
//! branch) and compare run time and serialization behaviour.
//!
//! Run with `cargo run --release --example memslap -- [threads] [ops]`
//! (defaults: 4 threads, 5000 ops/thread — the paper used 625000).

use std::sync::Arc;
use std::time::Instant;

use tm_memcached::mcache::{Branch, McCache, McConfig, Stage};
use tm_memcached::workload::{Op, Workload};

fn run(branch: Branch, threads: usize, ops: usize) {
    let wl = Arc::new(
        Workload::builder()
            .concurrency(threads)
            .execute_number(ops)
            .key_count(2000)
            .value_size(256)
            .binary(true)
            .build(),
    );
    let handle = McCache::start(McConfig {
        branch,
        workers: threads,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    // Warm the cache so gets hit, like memslap's initial set window.
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let cache = cache.clone();
            let wl = wl.clone();
            s.spawn(move || {
                for op in wl.stream(w) {
                    match op {
                        Op::Get(k) => {
                            if let Some(v) = cache.get(w, wl.key(k)) {
                                // Verify payload integrity end-to-end.
                                assert!(
                                    wl.verify_value(k, &v.data),
                                    "corrupt value for key {k} on {branch}"
                                );
                            }
                        }
                        Op::Set(k) => {
                            cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                        }
                        Op::Delete(k) => {
                            cache.delete(w, wl.key(k));
                        }
                        Op::Incr(k, d) => {
                            cache.arith(w, wl.key(k), d, true);
                        }
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let stats = cache.stats();
    let tm = cache.tm_stats();
    println!("-- {branch} --");
    println!(
        "  {threads} threads x {ops} ops: {secs:.3}s ({:.0} ops/s)",
        (threads * ops) as f64 / secs
    );
    println!(
        "  hits={} misses={} evictions={} expansions={}",
        stats.threads.get_hits,
        stats.threads.get_misses,
        stats.global.evictions,
        stats.global.expansions
    );
    println!("  tm: {tm}");
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let ops: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5000);
    println!(
        "memslap-style run: --concurrency={threads} --execute-number={ops} --binary\n"
    );
    for branch in [
        Branch::Baseline,
        Branch::It(Stage::Plain),
        Branch::Ip(Stage::OnCommit),
        Branch::IpNoLock,
    ] {
        run(branch, threads, ops);
    }
}
