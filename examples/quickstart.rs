//! Quickstart: the STM runtime on its own — atomic transactions, relaxed
//! transactions with unsafe operations, onCommit handlers, and the
//! serialization accounting behind the paper's tables.
//!
//! Run with `cargo run --example quickstart`.

use tm_memcached::tm::{
    Algorithm, ContentionManager, RelaxedPlan, SerialLockMode, TCell, TmRuntime, Transaction,
};

fn main() {
    // 1. The GCC-default runtime: eager STM, serialize-after-100
    //    contention policy, global serial readers/writer lock.
    let rt = TmRuntime::default_runtime();

    // A classic invariant: money moves between accounts, the total is
    // conserved, concurrently from several threads.
    let accounts: Vec<TCell<u64>> = (0..8).map(|_| TCell::new(1000)).collect();
    std::thread::scope(|s| {
        for t in 0..4 {
            let accounts = &accounts;
            let rt = &rt;
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let from = ((t + i) % 8) as usize;
                    let to = ((t + i * 3 + 1) % 8) as usize;
                    if from == to {
                        continue;
                    }
                    rt.atomic(|tx| {
                        let balance = tx.read(&accounts[from])?;
                        let amount = (i % 10).min(balance);
                        tx.modify(&accounts[from], |v| v - amount)?;
                        tx.modify(&accounts[to], |v| v + amount)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let total: u64 = accounts.iter().map(|a| a.load_direct()).sum();
    println!("total after 8000 concurrent transfers: {total} (expected 8000)");
    assert_eq!(total, 8000);

    // 2. Relaxed transactions: I/O inside a transaction forces the
    //    in-flight switch to serial-irrevocable mode.
    let log = TCell::new(0u64);
    rt.relaxed(RelaxedPlan::new(), |tx| {
        tx.fetch_add(&log, 1)?;
        tx.unsafe_op(|| println!("this print ran serially & irrevocably"))?;
        Ok(())
    });

    // 3. onCommit handlers run after commit, after all runtime locks are
    //    released — the §3.5 mechanism that removed the last relaxed
    //    transactions from memcached.
    rt.atomic(|tx| {
        tx.fetch_add(&log, 1)?;
        tx.on_commit(|| println!("deferred to onCommit: no serialization needed"));
        Ok(())
    });

    let s = rt.stats();
    println!(
        "runtime stats: commits={} aborts={} in-flight={} start-serial={} abort-serial={}",
        s.commits, s.aborts, s.in_flight_switch, s.start_serial, s.abort_serial
    );
    assert_eq!(s.in_flight_switch, 1);

    // 4. The paper's §4 runtime: serial lock removed, pick your algorithm
    //    and contention manager.
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = TmRuntime::builder()
            .algorithm(algo)
            .contention_manager(ContentionManager::None)
            .serial_lock(SerialLockMode::None)
            .build();
        let c = TCell::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        rt.atomic(|tx| tx.fetch_add(&c, 1));
                    }
                });
            }
        });
        println!(
            "{algo}: counter={} aborts/commit={:.3}",
            c.load_direct(),
            rt.stats().aborts_per_commit()
        );
        assert_eq!(c.load_direct(), 4000);
    }
}
