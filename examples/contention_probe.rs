//! The paper's first step (§3.1), reproduced: profile memcached's locks
//! under load with the mutrace-style profiler and discover which ones are
//! worth transactionalizing.
//!
//! The paper: "This revealed that the cache_lock and stats_lock were the
//! only locks that threads frequently failed to acquire on their first
//! attempt."
//!
//! Run with `cargo run --release --example contention_probe`.

use std::sync::Arc;

use tm_memcached::mcache::{Branch, McCache, McConfig};
use tm_memcached::workload::{Op, Workload};

fn main() {
    let threads = 8;
    let wl = Arc::new(
        Workload::builder()
            .concurrency(threads)
            .execute_number(4000)
            .key_count(1000)
            .value_size(128)
            .build(),
    );
    let handle = McCache::start(McConfig {
        branch: Branch::Baseline,
        workers: threads,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }

    std::thread::scope(|s| {
        for w in 0..threads {
            let cache = cache.clone();
            let wl = wl.clone();
            s.spawn(move || {
                for op in wl.stream(w) {
                    match op {
                        Op::Get(k) => {
                            cache.get(w, wl.key(k));
                        }
                        Op::Set(k) => {
                            cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                        }
                        Op::Delete(k) => {
                            cache.delete(w, wl.key(k));
                        }
                        Op::Incr(k, d) => {
                            cache.arith(w, wl.key(k), d, true);
                        }
                    }
                }
            });
        }
    });

    println!("mutrace-style contention profile of the Baseline branch:\n");
    // Top 12 rows; item-lock stripes and per-thread stats locks should sit
    // near the bottom with ~zero contention.
    for row in handle.profiler().report().into_iter().take(12) {
        println!("{row}");
    }
    println!();
    let report = handle.profiler().report();
    // On the paper's 12-core box, contention shows up as failed first
    // acquisition attempts. On a single-core host the lock holder is never
    // truly concurrent with a contender, so we additionally weigh how hot
    // each lock is (global locks acquired on every operation are the ones
    // that contend the moment real parallelism exists).
    let mut hot: Vec<_> = report
        .iter()
        .filter(|r| r.contention_rate() > 0.01 || r.acquisitions > 5_000)
        .map(|r| (r.name.clone(), r.acquisitions, r.contended))
        .collect();
    hot.sort_by_key(|(_, acq, contended)| std::cmp::Reverse((*contended, *acq)));
    println!("locks worth replacing with transactions:");
    for (name, acq, contended) in hot.iter().take(4) {
        println!("  {name} (acq={acq}, contended={contended})");
    }
    println!("(the paper found: cache_lock and stats_lock)");
}
