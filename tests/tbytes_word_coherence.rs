//! Property tests for [`TBytes`] byte/word coherence: random programs that
//! mix byte-granularity and word-granularity accesses over the *same*
//! buffer — aliased writes, unaligned head/tail spans, cross-word copies —
//! checked against a plain `Vec<u8>` sequential model, inside one
//! transaction (so reads go through the redo-log lookup under the buffered
//! algorithms) and again after commit through direct loads.

use testkit::prop::gen::{self, Index};
use testkit::{no_shrink, prop_assert_eq, proptest};
use tm::{Algorithm, ContentionManager, SerialLockMode, TBytes, TmRuntime, Transaction};

fn runtimes() -> Vec<TmRuntime> {
    [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec]
        .into_iter()
        .map(|algo| {
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .build()
        })
        .collect()
}

/// One step of a random mixed-granularity program. Positions are
/// length-agnostic [`Index`]es resolved against the concrete buffer at run
/// time; fills come from a seed word cycled over the span.
#[derive(Clone, Copy, Debug)]
enum Op {
    WriteByte(Index, u8),
    /// Byte-span store via `write_bytes` (word-granular inside).
    WriteRange(Index, Index, u64),
    /// Same span semantics through `copy_from_slice`.
    CopySlice(Index, Index, u64),
    /// Whole-word store via `write_words`.
    WriteWord(Index, u64),
    ReadByte(Index),
    ReadRange(Index, Index),
    ReadWords(Index, Index),
    /// Aliased cross-word copy within the buffer: bulk read then bulk
    /// write inside the same transaction.
    CopyWithin(Index, Index, Index),
}

no_shrink!(Op);

fn op_gen() -> impl Fn(&mut testkit::rng::SmallRng) -> Op + Clone {
    use testkit::rng::Rng;
    move |rng| {
        let i = Index(rng.next_u64());
        let j = Index(rng.next_u64());
        let k = Index(rng.next_u64());
        match rng.gen_range(0u32..8) {
            0 => Op::WriteByte(i, (rng.next_u64() & 0xFF) as u8),
            1 => Op::WriteRange(i, j, rng.next_u64()),
            2 => Op::CopySlice(i, j, rng.next_u64()),
            3 => Op::WriteWord(i, rng.next_u64()),
            4 => Op::ReadByte(i),
            5 => Op::ReadRange(i, j),
            6 => Op::ReadWords(i, j),
            _ => Op::CopyWithin(i, j, k),
        }
    }
}

fn fill(seed: u64, n: usize) -> Vec<u8> {
    seed.to_le_bytes().iter().copied().cycle().take(n).collect()
}

/// The word the model says word index `wi` holds: little-endian bytes,
/// zero-padded past `len` (padding bytes are never written non-zero
/// because `masked_word` zeroes them on word stores).
fn model_word(model: &[u8], wi: usize) -> u64 {
    let base = wi * 8;
    let mut w = 0u64;
    for bi in 0..8usize.min(model.len().saturating_sub(base)) {
        w |= u64::from(model[base + bi]) << (bi * 8);
    }
    w
}

/// Zeroes the bytes of `w` that fall past `len` when stored at word `wi`,
/// keeping the buffer's padding invariant (padding reads as zero).
fn masked_word(w: u64, wi: usize, len: usize) -> u64 {
    let base = wi * 8;
    let live = 8usize.min(len.saturating_sub(base));
    if live == 8 {
        w
    } else {
        w & ((1u64 << (live * 8)) - 1)
    }
}

proptest! {
    #![cases(32)]

    /// In-transaction reads see exactly the sequential model at every
    /// step, and the committed buffer equals the model, for every
    /// algorithm. Lengths 9..40 force an unaligned tail word.
    #[test]
    fn mixed_granularity_matches_model(
        len in gen::range(9usize..40),
        ops in gen::vec(op_gen(), 1..24),
    ) {
        for rt in runtimes() {
            let words = len.div_ceil(8);
            let b = TBytes::zeroed(len);
            let mut model = vec![0u8; len];
            rt.atomic(|tx| {
                // The model is rebuilt on retry (irrelevant here: single
                // thread, no conflicts), so recompute from scratch.
                let mut m = vec![0u8; len];
                for &op in &ops {
                    match op {
                        Op::WriteByte(i, v) => {
                            let i = i.index(len);
                            m[i] = v;
                            tx.write_byte(&b, i, v)?;
                        }
                        Op::WriteRange(a, l, seed) => {
                            let off = a.index(len);
                            let n = l.index(len - off + 1);
                            let src = fill(seed, n);
                            m[off..off + n].copy_from_slice(&src);
                            tx.write_bytes(&b, off, &src)?;
                        }
                        Op::CopySlice(a, l, seed) => {
                            let off = a.index(len);
                            let n = l.index(len - off + 1);
                            let src = fill(seed, n);
                            m[off..off + n].copy_from_slice(&src);
                            tx.copy_from_slice(&b, off, &src)?;
                        }
                        Op::WriteWord(wi, w) => {
                            let wi = wi.index(words);
                            let w = masked_word(w, wi, len);
                            let base = wi * 8;
                            let bytes = w.to_le_bytes();
                            let live = 8usize.min(len - base);
                            m[base..base + live].copy_from_slice(&bytes[..live]);
                            tx.write_words(&b, wi, &[w])?;
                        }
                        Op::ReadByte(i) => {
                            let i = i.index(len);
                            assert_eq!(tx.read_byte(&b, i)?, m[i], "read_byte at {i}");
                        }
                        Op::ReadRange(a, l) => {
                            let off = a.index(len);
                            let n = l.index(len - off + 1);
                            let mut dst = vec![0u8; n];
                            tx.read_bytes(&b, off, &mut dst)?;
                            assert_eq!(dst, &m[off..off + n], "read_bytes at {off}+{n}");
                        }
                        Op::ReadWords(wi, nw) => {
                            let wi = wi.index(words);
                            let nw = nw.index(words - wi) + 1;
                            let mut dst = vec![0u64; nw];
                            tx.read_words(&b, wi, &mut dst)?;
                            let want: Vec<u64> =
                                (wi..wi + nw).map(|w| model_word(&m, w)).collect();
                            assert_eq!(dst, want, "read_words at {wi}+{nw}");
                        }
                        Op::CopyWithin(d, s, l) => {
                            let soff = s.index(len);
                            let doff = d.index(len);
                            let n = l.index(len - soff.max(doff) + 1);
                            let mut tmp = vec![0u8; n];
                            tx.read_bytes(&b, soff, &mut tmp)?;
                            tx.write_bytes(&b, doff, &tmp)?;
                            m.copy_within(soff..soff + n, doff);
                        }
                    }
                }
                model = m;
                Ok(())
            });
            prop_assert_eq!(
                &b.to_vec_direct(),
                &model,
                "committed state, algorithm {:?}",
                rt.algorithm()
            );
            // Padding bytes past len stay zero through all the word ops.
            if len % 8 != 0 {
                let tail = b.load_word_direct(words - 1);
                prop_assert_eq!(tail, model_word(&model, words - 1), "tail padding");
            }
        }
    }

    /// The direct (uninstrumented) slice/word ops agree with the model
    /// too — same rewrite, no transaction.
    #[test]
    fn direct_slice_ops_match_model(
        len in gen::range(9usize..40),
        ops in gen::vec(op_gen(), 1..24),
    ) {
        let words = len.div_ceil(8);
        let b = TBytes::zeroed(len);
        let mut m = vec![0u8; len];
        for &op in &ops {
            match op {
                Op::WriteByte(i, v) => {
                    let i = i.index(len);
                    m[i] = v;
                    b.store_byte_direct(i, v);
                }
                Op::WriteRange(a, l, seed) | Op::CopySlice(a, l, seed) => {
                    let off = a.index(len);
                    let n = l.index(len - off + 1);
                    let src = fill(seed, n);
                    m[off..off + n].copy_from_slice(&src);
                    b.store_slice_direct(off, &src);
                }
                Op::WriteWord(wi, w) => {
                    let wi = wi.index(words);
                    let w = masked_word(w, wi, len);
                    let base = wi * 8;
                    let bytes = w.to_le_bytes();
                    let live = 8usize.min(len - base);
                    m[base..base + live].copy_from_slice(&bytes[..live]);
                    b.store_word_direct(wi, w);
                }
                Op::ReadByte(i) => {
                    let i = i.index(len);
                    prop_assert_eq!(b.load_byte_direct(i), m[i]);
                }
                Op::ReadRange(a, l) => {
                    let off = a.index(len);
                    let n = l.index(len - off + 1);
                    let mut dst = vec![0u8; n];
                    b.load_slice_direct(off, &mut dst);
                    prop_assert_eq!(&dst, &m[off..off + n]);
                }
                Op::ReadWords(wi, nw) => {
                    let wi = wi.index(words);
                    let nw = nw.index(words - wi) + 1;
                    for w in wi..wi + nw {
                        prop_assert_eq!(b.load_word_direct(w), model_word(&m, w));
                    }
                }
                Op::CopyWithin(d, s, l) => {
                    let soff = s.index(len);
                    let doff = d.index(len);
                    let n = l.index(len - soff.max(doff) + 1);
                    let mut tmp = vec![0u8; n];
                    b.load_slice_direct(soff, &mut tmp);
                    b.store_slice_direct(doff, &tmp);
                    m.copy_within(soff..soff + n, doff);
                }
            }
        }
        prop_assert_eq!(&b.to_vec_direct(), &m);
    }
}
