//! End-to-end integration: the memslap-style workload driven through every
//! branch of the cache, with payload verification and bookkeeping
//! invariants checked afterwards.

use std::sync::Arc;

use tm_memcached::mcache::{Branch, McCache, McConfig, SlabConfig};
use tm_memcached::workload::{Op, OpMix, Workload};

fn config(branch: Branch, workers: usize) -> McConfig {
    McConfig {
        branch,
        workers,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 7,
        hash_power_max: 10,
        item_lock_power: 6,
        ..Default::default()
    }
}

fn drive(branch: Branch, threads: usize, ops: usize) -> Arc<McCache> {
    let wl = Arc::new(
        Workload::builder()
            .concurrency(threads)
            .execute_number(ops)
            .key_count(300)
            .value_size(128)
            .mix(OpMix {
                get: 8,
                set: 2,
                delete: 1,
                incr: 0,
            })
            .build(),
    );
    let handle = McCache::start(config(branch, threads));
    let cache = handle.cache().clone();
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }
    std::thread::scope(|s| {
        for w in 0..threads {
            let cache = cache.clone();
            let wl = wl.clone();
            s.spawn(move || {
                for op in wl.stream(w) {
                    match op {
                        Op::Get(k) => {
                            if let Some(v) = cache.get(w, wl.key(k)) {
                                assert!(
                                    wl.verify_value(k, &v.data),
                                    "{branch}: corrupt payload for key {k}: {} bytes",
                                    v.data.len()
                                );
                            }
                        }
                        Op::Set(k) => {
                            cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                        }
                        Op::Delete(k) => {
                            cache.delete(w, wl.key(k));
                        }
                        Op::Incr(k, d) => {
                            cache.arith(w, wl.key(k), d, true);
                        }
                    }
                }
            });
        }
    });
    cache
}

#[test]
fn lock_branches_end_to_end() {
    for branch in [Branch::Baseline, Branch::Semaphore] {
        let cache = drive(branch, 4, 400);
        let s = cache.stats();
        // 4 threads x 400 ops + the 300 preload sets.
        assert_eq!(s.threads.total_cmds(), 1900, "{branch}");
        assert!(s.threads.get_hits > 0, "{branch}");
        assert_eq!(cache.tm_stats().commits, 0, "{branch} must not run transactions");
    }
}

#[test]
fn transactional_branches_end_to_end() {
    use tm_memcached::mcache::Stage;
    for branch in [
        Branch::Ip(Stage::Plain),
        Branch::It(Stage::Plain),
        Branch::Ip(Stage::Max),
        Branch::It(Stage::Max),
        Branch::Ip(Stage::Lib),
        Branch::It(Stage::Lib),
        Branch::Ip(Stage::OnCommit),
        Branch::It(Stage::OnCommit),
    ] {
        let cache = drive(branch, 4, 250);
        let s = cache.stats();
        // 4 threads x 250 ops + the 300 preload sets.
        assert_eq!(s.threads.total_cmds(), 1300, "{branch}");
        let tm = cache.tm_stats();
        assert!(tm.commits > 0, "{branch}");
        // Bookkeeping: begins = commits + aborts + cancels.
        assert_eq!(
            tm.begins,
            tm.commits + tm.aborts + tm.cancels,
            "{branch}: attempt accounting broken: {tm:?}"
        );
    }
}

#[test]
fn nolock_branches_never_serialize() {
    for branch in [Branch::IpNoLock, Branch::ItNoLock] {
        let cache = drive(branch, 4, 250);
        let tm = cache.tm_stats();
        assert_eq!(tm.in_flight_switch, 0, "{branch}: {tm:?}");
        assert_eq!(tm.start_serial, 0, "{branch}: {tm:?}");
        assert_eq!(tm.abort_serial, 0, "{branch}: {tm:?}");
        assert_eq!(tm.irrevocable_commits, 0, "{branch}: {tm:?}");
    }
}

#[test]
fn oncommit_branch_uses_handlers_not_serialization() {
    use tm_memcached::mcache::Stage;
    let cache = drive(Branch::It(Stage::OnCommit), 2, 400);
    let tm = cache.tm_stats();
    assert_eq!(tm.in_flight_switch + tm.start_serial, 0, "{tm:?}");
    assert!(
        tm.commit_handlers_run > 0,
        "sem_post must have moved to onCommit handlers: {tm:?}"
    );
}

#[test]
fn counters_are_consistent_after_load() {
    use tm_memcached::mcache::Stage;
    for branch in [Branch::Baseline, Branch::Ip(Stage::OnCommit), Branch::ItNoLock] {
        let cache = drive(branch, 2, 500);
        let s = cache.stats();
        // curr_items is bounded by total_items and by the keyspace (no
        // phantom items).
        assert!(s.global.curr_items <= s.global.total_items, "{branch}: {s:?}");
        assert!(s.global.curr_items <= 300 + 1, "{branch}: {s:?}");
        assert_eq!(
            s.threads.get_cmds,
            s.threads.get_hits + s.threads.get_misses,
            "{branch}"
        );
        assert_eq!(s.global.cmd_total, s.threads.total_cmds(), "{branch}");
    }
}

#[test]
fn all_algorithms_run_the_cache() {
    use tm::Algorithm;
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let mut cfg = config(Branch::IpNoLock, 2);
        cfg.algorithm = algo;
        let handle = McCache::start(cfg);
        let c = handle.cache().clone();
        std::thread::scope(|s| {
            for w in 0..2 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key = format!("algo-{}", i % 20);
                        if i % 3 == 0 {
                            c.set(w, key.as_bytes(), b"payload", 0, 0);
                        } else {
                            c.get(w, key.as_bytes());
                        }
                    }
                });
            }
        });
        assert!(c.tm_stats().commits > 0, "{algo}");
        assert!(c.get(0, b"algo-0").is_some() || c.get(0, b"algo-1").is_some(), "{algo}");
    }
}
