//! Steady-state transactions must not allocate.
//!
//! The per-thread log arena keeps read-set, write-set, undo/redo buffers,
//! the open-addressed write-map, and the handler vectors alive across
//! retries and across transactions on the same thread — cleared, never
//! freed. After a short warmup that sizes every buffer, a committing
//! transaction of the same shape performs **zero** heap allocations, for
//! every algorithm. The counting allocator in `testkit::alloc` proves it.

use tm::{Algorithm, ContentionManager, SerialLockMode, TBytes, TCell, TmRuntime, Transaction};

#[global_allocator]
static COUNTING_ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

/// Allocations per transaction over `n` runs of `txn`, after `warmup`
/// runs that are allowed to grow buffers.
fn allocs_per_txn(warmup: u32, n: u64, mut txn: impl FnMut()) -> u64 {
    for _ in 0..warmup {
        txn();
    }
    let before = testkit::alloc::thread_allocs();
    for _ in 0..n {
        txn();
    }
    testkit::alloc::thread_allocs() - before
}

fn assert_zero_alloc_steady_state(algo: Algorithm) {
    let rt = runtime(algo);

    // Small lock-acquire-shaped transaction: stays on the inline
    // write-set scan (≤ 8 writes).
    let cells: Vec<TCell<u64>> = (0..4).map(TCell::new).collect();
    let small = allocs_per_txn(50, 200, || {
        rt.atomic(|tx| {
            for c in &cells {
                let v = tx.read(c)?;
                tx.write(c, v + 1)?;
            }
            Ok(())
        });
    });
    assert_eq!(small, 0, "{algo:?}: small txn allocated");

    // Bulk-copy transaction: 256B = 32 word writes, which spills the
    // write-set onto the open-addressed map — sized during warmup, then
    // generation-cleared, never reallocated.
    let payload = [0x42u8; 256];
    let dst = TBytes::zeroed(256);
    let mut out = [0u8; 256];
    let bulk = allocs_per_txn(50, 200, || {
        rt.atomic(|tx| {
            tx.write_bytes(&dst, 0, &payload)?;
            tx.read_bytes(&dst, 0, &mut out)?;
            Ok(())
        });
    });
    assert_eq!(bulk, 0, "{algo:?}: bulk txn allocated");

    // Commit handlers: the boxed-closure backing storage is recycled, but
    // each registration necessarily boxes its closure — assert the count
    // is exactly that one box and nothing else.
    let counter = TCell::new(0u64);
    let with_handler = allocs_per_txn(50, 200, || {
        rt.atomic(|tx| {
            tx.fetch_add(&counter, 1)?;
            tx.on_commit(|| {});
            Ok(())
        });
    });
    assert!(
        with_handler <= 200,
        "{algo:?}: handler txns allocated {with_handler} times over 200 \
         txns (expected at most the one closure box per registration)"
    );
}

#[test]
fn eager_steady_state_commits_without_allocating() {
    assert_zero_alloc_steady_state(Algorithm::Eager);
}

#[test]
fn lazy_steady_state_commits_without_allocating() {
    assert_zero_alloc_steady_state(Algorithm::Lazy);
}

#[test]
fn norec_steady_state_commits_without_allocating() {
    assert_zero_alloc_steady_state(Algorithm::Norec);
}

/// Retries reuse the same arena: a transaction that aborts several times
/// before committing allocates nothing once warm.
#[test]
fn retry_path_reuses_arena() {
    use std::cell::Cell;
    let rt = runtime(Algorithm::Lazy);
    let cell = TCell::new(0u64);
    let attempts = Cell::new(0u32);
    let run = || {
        attempts.set(0);
        rt.atomic(|tx| {
            attempts.set(attempts.get() + 1);
            let v = tx.read(&cell)?;
            if attempts.get() < 3 {
                // Force a retry through the user-abort path.
                return Err(tm::Abort::Conflict);
            }
            tx.write(&cell, v + 1)?;
            Ok(())
        });
    };
    let allocs = allocs_per_txn(20, 100, run);
    assert_eq!(allocs, 0, "retrying txns allocated once warm");
}
