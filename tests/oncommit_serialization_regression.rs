//! Regression lock on the paper's headline result (Table 4): with safe
//! libraries *and* onCommit-deferred signaling, the memcached transactions
//! never serialize — no transaction starts on the serial path and none
//! switches to it in flight. This is the property the whole
//! transactionalization effort converges on, so it gets its own test at a
//! heavier scale than the table-shape checks: 4 workers, the full op mix
//! (get/set/delete/incr), and a payload-integrity sweep afterwards.

use std::sync::Arc;

use tm_memcached::mcache::{Branch, McCache, McConfig, SlabConfig, Stage};
use tm_memcached::workload::{Op, OpMix, Workload};

#[test]
fn oncommit_branches_never_serialize() {
    let threads = 4;
    let ops = std::env::var("MC_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500);
    for branch in [Branch::Ip(Stage::OnCommit), Branch::It(Stage::OnCommit)] {
        let wl = Arc::new(
            Workload::builder()
                .concurrency(threads)
                .execute_number(ops)
                .key_count(600)
                .value_size(128)
                .mix(OpMix {
                    get: 8,
                    set: 1,
                    delete: 1,
                    incr: 1,
                })
                .build(),
        );
        let handle = McCache::start(McConfig {
            branch,
            workers: threads,
            slab: SlabConfig {
                mem_limit: 8 << 20,
                page_size: 64 << 10,
                chunk_min: 96,
                growth_factor: 1.5,
            },
            // Saturated table (key_count > 1.5 * 2^max buckets): every set
            // keeps hitting the maintenance-signal site, so the deferred
            // sem_post handlers stay exercised for the whole run.
            hash_power: 7,
            hash_power_max: 8,
            item_lock_power: 6,
            ..Default::default()
        });
        let cache = handle.cache().clone();
        for i in 0..wl.key_count() {
            cache.set(0, wl.key(i), &wl.value(i), 0, 0);
        }
        let before = cache.tm_stats();
        std::thread::scope(|s| {
            for w in 0..threads {
                let cache = cache.clone();
                let wl = wl.clone();
                s.spawn(move || {
                    for op in wl.stream(w) {
                        match op {
                            Op::Get(k) => {
                                cache.get(w, wl.key(k));
                            }
                            Op::Set(k) => {
                                cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                            }
                            Op::Delete(k) => {
                                cache.delete(w, wl.key(k));
                            }
                            Op::Incr(k, d) => {
                                cache.arith(w, wl.key(k), d, true);
                            }
                        }
                    }
                });
            }
        });
        let s = cache.tm_stats().since(&before);

        // The regression being locked: zero serialization events of either
        // kind across the whole run. A single one is a fail — before the
        // onCommit stage these numbered in the hundreds per thousand ops.
        assert_eq!(s.start_serial, 0, "{branch}: start-serial crept back: {s:?}");
        assert_eq!(
            s.in_flight_switch, 0,
            "{branch}: in-flight switch crept back: {s:?}"
        );
        // (abort_serial is not asserted: serializing after 100 retries is
        // the GCC contention manager's policy, not a property of the code
        // transformation this test guards.)

        // ... while the workload really ran transactionally and the
        // deferred signal handlers really fired.
        assert!(
            s.commits >= (threads * ops) as u64,
            "{branch}: too few commits for {threads}x{ops} ops: {s:?}"
        );
        assert!(
            s.commit_handlers_run > 0,
            "{branch}: onCommit handlers never fired: {s:?}"
        );

        // Payload integrity: any surviving key must carry either its
        // deterministic value or a numeric incr result — never torn bytes.
        let mut checked = 0;
        for i in 0..wl.key_count() {
            if let Some(got) = cache.get(0, wl.key(i)) {
                let numeric = got
                    .data
                    .iter()
                    .all(|&b| b.is_ascii_digit() || b == b'\r' || b == b'\n' || b == b' ');
                assert!(
                    wl.verify_value(i, &got.data) || numeric,
                    "{branch}: torn value for key {i}: {:?}",
                    &got.data[..got.data.len().min(32)]
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "{branch}: nothing left to verify");
    }
}
