//! Edge cases for the §3.4 library-safety layer: marshaling and the
//! reimplemented memory/string functions at their boundaries — empty
//! inputs, marshal-buffer-length strings, non-ASCII bytes, and
//! overlapping copy regions. Everything here runs through both clones
//! (instrumented and uninstrumented) where the distinction matters.

use tm::{TBytes, TmRuntime};
use tmstd::{
    atoi, memcmp, memcmp_slice, memcpy, memmove, memset, parse_i64, parse_u64, snprintf_str,
    strchr, strlen, strncmp, strncpy, strnlen, strtoull, DirectAccess, TxAccess,
    GENEROUS_INPUT_BUF, GENEROUS_OUTPUT_BUF,
};

// --- empty slices ---------------------------------------------------------

#[test]
fn empty_buffers_compare_equal_and_copy_nothing() {
    let empty = TBytes::from_slice(b"");
    let other = TBytes::from_slice(b"");
    let mut a = DirectAccess;
    assert_eq!(memcmp(&mut a, &empty, 0, &other, 0, 0).unwrap(), 0);
    assert_eq!(memcmp_slice(&mut a, &empty, 0, b"").unwrap(), 0);
    // Zero-length copies touch no bytes, even at offset 0 of an empty buffer.
    memcpy(&mut a, &empty, 0, &other, 0, 0).unwrap();
    memmove(&mut a, &empty, 0, &other, 0, 0).unwrap();
    memset(&mut a, &empty, 0, 0xFF, 0).unwrap();
    assert_eq!(empty.to_vec_direct(), b"");
}

#[test]
fn empty_string_functions() {
    let empty = TBytes::from_slice(b"");
    let mut a = DirectAccess;
    assert_eq!(strlen(&mut a, &empty, 0).unwrap(), 0);
    assert_eq!(strnlen(&mut a, &empty, 0, 16).unwrap(), 0);
    assert_eq!(strchr(&mut a, &empty, 0, b'x').unwrap(), None);
    assert_eq!(strncmp(&mut a, &empty, 0, b"", 0).unwrap(), 0);
    // strncpy with n == 0 writes nothing.
    let dst = TBytes::from_slice(&[7u8; 4]);
    strncpy(&mut a, &dst, 0, b"abc", 0).unwrap();
    assert_eq!(dst.to_vec_direct(), vec![7u8; 4]);
}

#[test]
fn empty_parse_inputs_are_rejected_not_mangled() {
    assert_eq!(parse_u64(b""), None);
    assert_eq!(parse_i64(b""), None);
    assert_eq!(parse_u64(b"   "), None, "whitespace only");
    let s = TBytes::from_slice(b"123");
    let mut a = DirectAccess;
    // A zero-length marshal window parses nothing.
    assert_eq!(strtoull(&mut a, &s, 0, 0).unwrap(), None);
    // An offset at the end of the buffer marshals an empty window.
    assert_eq!(strtoull(&mut a, &s, 3, 8).unwrap(), None);
    let e = TBytes::from_slice(b"");
    assert_eq!(atoi(&mut a, &e, 0).unwrap(), 0);
}

#[test]
fn snprintf_empty_string_writes_only_nul() {
    let d = TBytes::from_slice(&[9u8; 4]);
    let mut a = DirectAccess;
    assert_eq!(snprintf_str(&mut a, &d, 0, 4, "").unwrap(), 0);
    assert_eq!(d.to_vec_direct(), vec![0, 9, 9, 9]);
}

// --- max-length strings ---------------------------------------------------

#[test]
fn strtoull_clamps_to_its_marshal_window() {
    // The stack copy is 40 bytes: digits past it are invisible to the
    // parse, exactly like memcached's bounded safe_strtoull buffer.
    let digits = [b'7'; 64];
    let s = TBytes::from_slice(&digits);
    let mut a = DirectAccess;
    let (v, used) = strtoull(&mut a, &s, 0, 64).unwrap().unwrap();
    assert_eq!(used, 40, "consumes at most the marshaled window");
    assert_eq!(v, u64::MAX, "40 sevens saturate");
}

#[test]
fn forty_digit_value_saturates_but_stays_total() {
    let s: Vec<u8> = std::iter::repeat(b'9').take(40).collect();
    assert_eq!(parse_u64(&s), Some((u64::MAX, 40)));
    let neg: Vec<u8> = std::iter::once(b'-').chain(s.iter().copied()).collect();
    assert_eq!(parse_i64(&neg), Some((-i64::MAX, 41)));
}

#[test]
fn snprintf_exact_capacity_boundaries() {
    let mut a = DirectAccess;
    // cap == len + 1: fits exactly, nothing truncated.
    let d = TBytes::zeroed(8);
    assert_eq!(snprintf_str(&mut a, &d, 0, 6, "hello").unwrap(), 5);
    assert_eq!(&d.to_vec_direct()[..6], b"hello\0");
    // cap == len: C semantics lose the last byte to the NUL.
    let e = TBytes::zeroed(8);
    assert_eq!(snprintf_str(&mut a, &e, 0, 5, "hello").unwrap(), 5);
    assert_eq!(&e.to_vec_direct()[..5], b"hell\0");
}

#[test]
fn generous_buffers_hold_a_maximum_item_line() {
    // memcached's largest key is 250 bytes; a full "VALUE <key> <flags>
    // <len>\r\n" header plus a 1 KiB value fits the paper's generous 4
    // KiB in / 8 KiB out marshaling buffers with room to spare.
    let header = 6 + 1 + 250 + 1 + 10 + 1 + 20 + 2;
    assert!(header + 1024 < GENEROUS_INPUT_BUF);
    assert!(GENEROUS_OUTPUT_BUF >= 2 * GENEROUS_INPUT_BUF);
}

// --- non-ASCII bytes ------------------------------------------------------

#[test]
fn memcmp_treats_bytes_as_unsigned() {
    // In C, memcmp compares unsigned chars: 0xFF > 0x01. A signed-char
    // slip would invert this.
    let hi = TBytes::from_slice(&[0xFF]);
    let lo = TBytes::from_slice(&[0x01]);
    let mut a = DirectAccess;
    assert!(memcmp(&mut a, &hi, 0, &lo, 0, 1).unwrap() > 0);
    assert!(memcmp(&mut a, &lo, 0, &hi, 0, 1).unwrap() < 0);
    assert!(memcmp_slice(&mut a, &hi, 0, &[0x01]).unwrap() > 0);
    assert!(strncmp(&mut a, &hi, 0, &[0x01], 1).unwrap() > 0);
}

#[test]
fn non_ascii_keys_survive_string_functions() {
    // Keys are arbitrary bytes in memcached's binary protocol.
    let key = [0xC3u8, 0xA9, 0x80, 0xFE, 0x01, 0x00, 0xAA];
    let s = TBytes::from_slice(&key);
    let mut a = DirectAccess;
    assert_eq!(strlen(&mut a, &s, 0).unwrap(), 5, "NUL ends the string");
    assert_eq!(strchr(&mut a, &s, 0, 0xFE).unwrap(), Some(3));
    assert_eq!(strchr(&mut a, &s, 0, 0xAA).unwrap(), None, "past the NUL");
    let dst = TBytes::zeroed(7);
    strncpy(&mut a, &dst, 0, &key, 7).unwrap();
    assert_eq!(&dst.to_vec_direct()[..5], &key[..5]);
    assert_eq!(&dst.to_vec_direct()[5..], &[0, 0], "NUL padding");
}

#[test]
fn non_ascii_bytes_do_not_parse_as_digits() {
    // 0xB2 is SUPERSCRIPT TWO in latin-1; is_ascii_digit must reject it
    // (C's isdigit with a locale could not be trusted here).
    assert_eq!(parse_u64(&[0xC2, 0xB2]), None);
    assert_eq!(parse_u64(&[0xB9, 0xB2, 0xB3]), None);
    assert_eq!(parse_u64(b"12\xC2\xB2"), Some((12, 2)), "stops at the first");
}

#[test]
fn snprintf_multibyte_utf8_roundtrips() {
    let text = "héllo — ключ";
    let d = TBytes::zeroed(64);
    let mut a = DirectAccess;
    let n = snprintf_str(&mut a, &d, 0, 64, text).unwrap();
    assert_eq!(n, text.len(), "byte length, not char count");
    assert_eq!(&d.to_vec_direct()[..n], text.as_bytes());
    assert_eq!(d.to_vec_direct()[n], 0);
}

// --- overlapping copy regions --------------------------------------------

#[test]
fn memmove_overlap_matches_vec_model_both_directions() {
    let init: Vec<u8> = (0..32).collect();
    for (doff, soff, n) in [(4usize, 0usize, 20usize), (0, 4, 20), (8, 8, 16), (1, 0, 31)] {
        let b = TBytes::from_slice(&init);
        let mut model = init.clone();
        let mut a = DirectAccess;
        memmove(&mut a, &b, doff, &b, soff, n).unwrap();
        model.copy_within(soff..soff + n, doff);
        assert_eq!(
            b.to_vec_direct(),
            model,
            "memmove doff={doff} soff={soff} n={n}"
        );
    }
}

#[test]
fn memmove_overlap_transactional_clone_agrees() {
    // The instrumented clone must be overlap-safe too: its reads all
    // happen before its writes (full-temporary copy), even when the
    // transaction's own write set already covers the source range.
    let init: Vec<u8> = (0..24).rev().collect();
    for (doff, soff, n) in [(6usize, 0usize, 18usize), (0, 6, 18)] {
        let rt = TmRuntime::default_runtime();
        let b = TBytes::from_slice(&init);
        let mut model = init.clone();
        rt.atomic(|tx| {
            let mut a = TxAccess::new(tx);
            // Dirty the buffer first so the copy reads tentative state.
            tmstd::memcpy_from_slice(&mut a, &b, 0, &[0xAB, 0xCD])?;
            memmove(&mut a, &b, doff, &b, soff, n)
        });
        model[0] = 0xAB;
        model[1] = 0xCD;
        model.copy_within(soff..soff + n, doff);
        assert_eq!(b.to_vec_direct(), model, "tx memmove doff={doff} soff={soff}");
    }
}

#[test]
fn memcpy_same_buffer_disjoint_ranges() {
    // memcpy's contract only forbids *overlap*; disjoint ranges of one
    // buffer are legal and common (shuffling an item's suffix in place).
    let b = TBytes::from_slice(b"0123456789abcdef");
    let mut a = DirectAccess;
    memcpy(&mut a, &b, 8, &b, 0, 8).unwrap();
    assert_eq!(b.to_vec_direct(), b"0123456701234567");
}
