//! Qualitative invariants of the paper's Tables 1–4: which stage removes
//! which serialization cause, checked end-to-end through the cache.

use std::sync::Arc;

use tm_memcached::mcache::{Branch, McCache, McConfig, SlabConfig, Stage};
use tm_memcached::workload::{Op, Workload};
use tm_memcached::tm::StatsSnapshot;

fn measure(branch: Branch) -> StatsSnapshot {
    let threads = 2;
    let wl = Arc::new(
        Workload::builder()
            .concurrency(threads)
            .execute_number(600)
            .key_count(400)
            .value_size(96)
            .build(),
    );
    let handle = McCache::start(McConfig {
        branch,
        workers: threads,
        slab: SlabConfig {
            mem_limit: 4 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        // Saturating table: the per-set maintenance-signal site fires, as
        // in the paper's Tables (one sem_post site per set).
        hash_power: 7,
        hash_power_max: 8,
        item_lock_power: 6,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }
    let before = cache.tm_stats();
    std::thread::scope(|s| {
        for w in 0..threads {
            let cache = cache.clone();
            let wl = wl.clone();
            s.spawn(move || {
                for op in wl.stream(w) {
                    match op {
                        Op::Get(k) => {
                            cache.get(w, wl.key(k));
                        }
                        Op::Set(k) => {
                            cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                        }
                        Op::Delete(k) => {
                            cache.delete(w, wl.key(k));
                        }
                        Op::Incr(k, d) => {
                            cache.arith(w, wl.key(k), d, true);
                        }
                    }
                }
            });
        }
    });
    cache.tm_stats().since(&before)
}

#[test]
fn table1_shape_plain_vs_callable() {
    // Paper Table 1: callable annotations change nothing measurable.
    let ip = measure(Branch::Ip(Stage::Plain));
    let ipc = measure(Branch::Ip(Stage::Callable));
    let it = measure(Branch::It(Stage::Plain));

    assert!(ip.start_serial > 0, "{ip:?}");
    assert!(it.start_serial > 0, "{it:?}");
    // IT's item transactions start serial far more often than IP's
    // (paper: 36.1% vs 5.6%).
    assert!(
        it.start_serial as f64 / it.transactions() as f64
            > 2.0 * ip.start_serial as f64 / ip.transactions() as f64,
        "IT {it:?} vs IP {ip:?}"
    );
    // IP runs more transactions (lock/unlock mini-transactions).
    assert!(ip.transactions() > it.transactions(), "IP {ip:?} vs IT {it:?}");
    // Callable ~ Plain (within noise).
    let rate = |s: &StatsSnapshot| {
        (s.start_serial + s.in_flight_switch) as f64 / s.transactions() as f64
    };
    assert!(
        (rate(&ip) - rate(&ipc)).abs() < 0.05,
        "callable changed serialization: {ip:?} vs {ipc:?}"
    );
}

#[test]
fn table2_shape_max_trades_start_serial_for_in_flight() {
    // Paper Table 2 + §3.3 text: the Max transformation removes IP's
    // start-serial transactions but they "still ultimately serialized"
    // in flight.
    let ip_plain = measure(Branch::Ip(Stage::Plain));
    let ip_max = measure(Branch::Ip(Stage::Max));
    assert!(ip_plain.start_serial > 0);
    assert_eq!(ip_max.start_serial, 0, "{ip_max:?}");
    assert!(
        ip_max.in_flight_switch > ip_plain.in_flight_switch,
        "Max must delay, not remove, serialization: {ip_max:?} vs {ip_plain:?}"
    );
    // IT-Max: the store transaction still begins with memcpy (libc), so
    // some transactions still start serial.
    let it_max = measure(Branch::It(Stage::Max));
    assert!(it_max.start_serial > 0, "{it_max:?}");
    assert!(it_max.in_flight_switch > 0, "{it_max:?}");
}

#[test]
fn table3_shape_lib_leaves_only_sem_post() {
    // Paper Table 3: after safe libraries, IP serializes only in flight
    // (sem_post mid-transaction), IT only at start (the hoisted signal
    // section), and far less than before.
    let ip = measure(Branch::Ip(Stage::Lib));
    let it = measure(Branch::It(Stage::Lib));
    assert_eq!(ip.start_serial, 0, "{ip:?}");
    assert!(ip.in_flight_switch > 0, "{ip:?}");
    assert_eq!(it.in_flight_switch, 0, "{it:?}");
    assert!(it.start_serial > 0, "{it:?}");
    let ip_max = measure(Branch::Ip(Stage::Max));
    assert!(
        ip.in_flight_switch < ip_max.in_flight_switch,
        "Lib must reduce serialization: {ip:?} vs {ip_max:?}"
    );
}

#[test]
fn table4_shape_oncommit_eliminates_serialization() {
    // Paper Table 4: "transactions no longer serialize at begin time, or
    // due to an unsafe call during their execution".
    for branch in [Branch::Ip(Stage::OnCommit), Branch::It(Stage::OnCommit)] {
        let s = measure(branch);
        assert_eq!(s.in_flight_switch, 0, "{branch}: {s:?}");
        assert_eq!(s.start_serial, 0, "{branch}: {s:?}");
        assert!(s.commit_handlers_run > 0, "{branch}: handlers must fire: {s:?}");
    }
}

#[test]
fn figure10_nolock_runs_without_serial_lock() {
    for branch in [Branch::IpNoLock, Branch::ItNoLock] {
        let s = measure(branch);
        assert_eq!(
            s.in_flight_switch + s.start_serial + s.abort_serial,
            0,
            "{branch}: {s:?}"
        );
        assert!(s.commits > 0, "{branch}");
    }
}
