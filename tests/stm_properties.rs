//! Property-based tests of the STM runtime: random transactional programs
//! against a sequential model, for every algorithm and serial-lock mode.

use testkit::prop::gen;
use testkit::rng::{Rng, SmallRng};
use testkit::{no_shrink, prop_assert, prop_assert_eq, proptest};
use tm::{Algorithm, ContentionManager, SerialLockMode, TBytes, TCell, TmRuntime, Transaction};

fn runtimes() -> Vec<TmRuntime> {
    let mut v = Vec::new();
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        v.push(
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::GCC_DEFAULT)
                .serial_lock(SerialLockMode::ReaderWriter)
                .build(),
        );
        v.push(
            TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .build(),
        );
    }
    v
}

/// One step of a random transactional program.
#[derive(Clone, Copy, Debug)]
enum Step {
    Read(u8),
    Write(u8, u64),
    Add(u8, u64),
    CopyCell(u8, u8),
}

no_shrink!(Step);

fn step_gen(cells: u8) -> impl Fn(&mut SmallRng) -> Step + Clone {
    move |rng: &mut SmallRng| match rng.gen_range(0u32..4) {
        0 => Step::Read(rng.gen_range(0..cells)),
        1 => Step::Write(rng.gen_range(0..cells), rng.next_u64()),
        2 => Step::Add(rng.gen_range(0..cells), rng.gen_range(0u64..1000)),
        _ => Step::CopyCell(rng.gen_range(0..cells), rng.gen_range(0..cells)),
    }
}

proptest! {
    #![cases(48)]

    /// A committed transaction leaves exactly the state a sequential
    /// interpreter produces, for every algorithm.
    #[test]
    fn committed_txn_matches_sequential_model(
        init in gen::vec(gen::any_u64(), 6..7),
        steps in gen::vec(step_gen(6), 1..24),
    ) {
        for rt in runtimes() {
            let cells: Vec<TCell<u64>> = init.iter().copied().map(TCell::new).collect();
            let mut model = init.clone();
            for &s in &steps {
                match s {
                    Step::Read(_) => {}
                    Step::Write(i, v) => model[i as usize] = v,
                    Step::Add(i, v) => {
                        model[i as usize] = model[i as usize].wrapping_add(v)
                    }
                    Step::CopyCell(a, b) => model[b as usize] = model[a as usize],
                }
            }
            rt.atomic(|tx| {
                for &s in &steps {
                    match s {
                        Step::Read(i) => {
                            tx.read(&cells[i as usize])?;
                        }
                        Step::Write(i, v) => tx.write(&cells[i as usize], v)?,
                        Step::Add(i, v) => {
                            tx.modify(&cells[i as usize], |x| x.wrapping_add(v))?;
                        }
                        Step::CopyCell(a, b) => {
                            let v = tx.read(&cells[a as usize])?;
                            tx.write(&cells[b as usize], v)?;
                        }
                    }
                }
                Ok(())
            });
            let actual: Vec<u64> = cells.iter().map(|c| c.load_direct()).collect();
            prop_assert_eq!(&actual, &model, "algorithm {:?}", rt.algorithm());
        }
    }

    /// A cancelled transaction leaves no trace, for every algorithm.
    #[test]
    fn cancelled_txn_has_no_effect(
        init in gen::vec(gen::any_u64(), 4..5),
        steps in gen::vec(step_gen(4), 1..16),
    ) {
        for rt in runtimes() {
            let cells: Vec<TCell<u64>> = init.iter().copied().map(TCell::new).collect();
            let r: Result<(), _> = rt.try_atomic(|tx| {
                for &s in &steps {
                    match s {
                        Step::Read(i) => {
                            tx.read(&cells[i as usize])?;
                        }
                        Step::Write(i, v) => tx.write(&cells[i as usize], v)?,
                        Step::Add(i, v) => {
                            tx.modify(&cells[i as usize], |x| x.wrapping_add(v))?;
                        }
                        Step::CopyCell(a, b) => {
                            let v = tx.read(&cells[a as usize])?;
                            tx.write(&cells[b as usize], v)?;
                        }
                    }
                }
                tm::cancel()
            });
            prop_assert!(r.is_err());
            let actual: Vec<u64> = cells.iter().map(|c| c.load_direct()).collect();
            prop_assert_eq!(&actual, &init, "algorithm {:?}", rt.algorithm());
        }
    }

    /// Transactional byte-buffer windows behave like `Vec<u8>` splices.
    #[test]
    fn tbytes_window_ops_match_vec_model(
        len in gen::range(1usize..96),
        writes in gen::vec(
            |rng: &mut SmallRng| (gen::index()(rng), gen::bytes(1..24)(rng)),
            1..12,
        ),
    ) {
        for rt in runtimes() {
            let buf = TBytes::zeroed(len);
            let mut model = vec![0u8; len];
            rt.atomic(|tx| {
                for (at, data) in &writes {
                    let off = at.index(len);
                    let n = data.len().min(len - off);
                    tx.write_bytes(&buf, off, &data[..n])?;
                }
                Ok(())
            });
            for (at, data) in &writes {
                let off = at.index(len);
                let n = data.len().min(len - off);
                model[off..off + n].copy_from_slice(&data[..n]);
            }
            prop_assert_eq!(buf.to_vec_direct(), model, "algorithm {:?}", rt.algorithm());
        }
    }

    /// Reads inside the writing transaction observe the transaction's own
    /// writes (read-own-writes), for every algorithm.
    #[test]
    fn read_own_writes(vals in gen::vec(gen::any_u64(), 1..8)) {
        for rt in runtimes() {
            let c = TCell::new(0u64);
            rt.atomic(|tx| {
                for &v in &vals {
                    tx.write(&c, v)?;
                    assert_eq!(tx.read(&c)?, v, "read-own-writes violated");
                }
                Ok(())
            });
            prop_assert_eq!(c.load_direct(), *vals.last().unwrap());
        }
    }
}

/// Concurrency stress: disjoint invariants under every algorithm (not a
/// proptest — deterministic thread count, random interleavings supplied by
/// the scheduler).
#[test]
fn concurrent_invariant_bank_transfer() {
    for rt in runtimes() {
        let rt = std::sync::Arc::new(rt);
        let accounts: std::sync::Arc<Vec<TCell<u64>>> =
            std::sync::Arc::new((0..6).map(|_| TCell::new(500)).collect());
        let mut handles = vec![];
        for t in 0..4u64 {
            let rt = rt.clone();
            let accounts = accounts.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..400u64 {
                    let from = ((t + i) % 6) as usize;
                    let to = ((t * 3 + i * 5 + 1) % 6) as usize;
                    if from == to {
                        continue;
                    }
                    rt.atomic(|tx| {
                        let f = tx.read(&accounts[from])?;
                        let amount = (i % 7).min(f);
                        tx.write(&accounts[from], f - amount)?;
                        tx.modify(&accounts[to], |v| v + amount)?;
                        // Invariant visible inside the transaction.
                        let sum: u64 = {
                            let mut s = 0;
                            for a in accounts.iter() {
                                s += tx.read(a)?;
                            }
                            s
                        };
                        assert_eq!(sum, 3000, "intra-txn invariant broken");
                        Ok(())
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = accounts.iter().map(|a| a.load_direct()).sum();
        assert_eq!(total, 3000, "algorithm {:?}", rt.algorithm());
    }
}

/// The eager algorithm's write-through doom-window must never leak
/// intermediate values into *committed* state.
#[test]
fn no_lost_updates_under_heavy_conflict() {
    for rt in runtimes() {
        let rt = std::sync::Arc::new(rt);
        let hot = std::sync::Arc::new(TCell::new(0u64));
        let mut handles = vec![];
        for _ in 0..4 {
            let rt = rt.clone();
            let hot = hot.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..800 {
                    rt.atomic(|tx| tx.fetch_add(&hot, 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hot.load_direct(), 3200, "algorithm {:?}", rt.algorithm());
    }
}
