//! # lockprof — a mutrace-style lock contention profiler
//!
//! The paper's first step (§3.1) was to profile memcached's locks with
//! mutrace and discover that only `cache_lock` and `stats_lock` "were the
//! only locks that threads frequently failed to acquire on their first
//! attempt". This crate reproduces that methodology: [`ProfiledMutex`]
//! counts, per named lock, total acquisitions, *contended* acquisitions
//! (the first `try_lock` failed), explicit `try_lock` failures, and
//! cumulative hold time; [`Profiler::report`] prints a mutrace-like table
//! sorted by contention.
//!
//! ```
//! use lockprof::{Profiler, ProfiledMutex};
//!
//! let profiler = Profiler::new();
//! let cache_lock = ProfiledMutex::new("cache_lock", (), &profiler);
//! {
//!     let _g = cache_lock.lock();
//! }
//! assert_eq!(profiler.report()[0].acquisitions, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::time::Instant;

pub mod sync;

use sync::{Condvar, Mutex, MutexGuard};

/// Counters for one named lock.
#[derive(Debug, Default)]
pub struct LockStats {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    try_failures: AtomicU64,
    hold_nanos: AtomicU64,
}

/// One row of [`Profiler::report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockReport {
    /// The lock's registered name.
    pub name: String,
    /// Successful acquisitions (blocking and try).
    pub acquisitions: u64,
    /// Blocking acquisitions that did not succeed on the first attempt —
    /// mutrace's headline number.
    pub contended: u64,
    /// `try_lock` calls that returned `None`.
    pub try_failures: u64,
    /// Total time the lock was held, in nanoseconds.
    pub hold_nanos: u64,
}

impl LockReport {
    /// Fraction of blocking acquisitions that contended.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

impl fmt::Display for LockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} acq={:<10} contended={:<8} ({:.2}%) try-fail={:<8} held={:.3}ms",
            self.name,
            self.acquisitions,
            self.contended,
            100.0 * self.contention_rate(),
            self.try_failures,
            self.hold_nanos as f64 / 1e6,
        )
    }
}

type LockRegistry = Arc<StdMutex<Vec<(String, Arc<LockStats>)>>>;

/// A registry of named locks; prints the contention table.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    locks: LockRegistry,
}

impl Profiler {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Registers a named lock and returns its stats cell. Called by
    /// [`ProfiledMutex::new`]; useful directly for instrumenting other
    /// primitives.
    pub fn register(&self, name: &str) -> Arc<LockStats> {
        let stats = Arc::new(LockStats::default());
        self.locks
            .lock()
            .expect("profiler registry poisoned")
            .push((name.to_owned(), stats.clone()));
        stats
    }

    /// Snapshot of every registered lock, sorted by contended acquisitions
    /// (mutrace's default order).
    pub fn report(&self) -> Vec<LockReport> {
        let mut rows: Vec<LockReport> = self
            .locks
            .lock()
            .expect("profiler registry poisoned")
            .iter()
            .map(|(name, s)| LockReport {
                name: name.clone(),
                acquisitions: s.acquisitions.load(Ordering::Relaxed),
                contended: s.contended.load(Ordering::Relaxed),
                try_failures: s.try_failures.load(Ordering::Relaxed),
                hold_nanos: s.hold_nanos.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by(|a, b| b.contended.cmp(&a.contended).then(a.name.cmp(&b.name)));
        rows
    }

    /// The report as a printable mutrace-like table.
    pub fn report_table(&self) -> String {
        let mut out = String::from("lock                     statistics (sorted by contention)\n");
        for row in self.report() {
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }
}

/// A named mutex that records contention statistics.
#[derive(Debug)]
pub struct ProfiledMutex<T> {
    mutex: Mutex<T>,
    stats: Arc<LockStats>,
}

impl<T> ProfiledMutex<T> {
    /// Creates and registers a profiled mutex.
    pub fn new(name: &str, value: T, profiler: &Profiler) -> Self {
        ProfiledMutex {
            mutex: Mutex::new(value),
            stats: profiler.register(name),
        }
    }

    /// Blocking acquisition. Counts the acquisition as *contended* when the
    /// opportunistic first `try_lock` fails — mutrace's definition.
    pub fn lock(&self) -> ProfiledGuard<'_, T> {
        let guard = match self.mutex.try_lock() {
            Some(g) => g,
            None => {
                self.stats.contended.fetch_add(1, Ordering::Relaxed);
                self.mutex.lock()
            }
        };
        self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
        ProfiledGuard {
            guard: Some(guard),
            stats: &self.stats,
            since: Instant::now(),
        }
    }

    /// Non-blocking acquisition, as memcached uses for its lock-order
    /// violations (item locks taken while later locks are held).
    pub fn try_lock(&self) -> Option<ProfiledGuard<'_, T>> {
        match self.mutex.try_lock() {
            Some(guard) => {
                self.stats.acquisitions.fetch_add(1, Ordering::Relaxed);
                Some(ProfiledGuard {
                    guard: Some(guard),
                    stats: &self.stats,
                    since: Instant::now(),
                })
            }
            None => {
                self.stats.try_failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// RAII guard for [`ProfiledMutex`]; records hold time on drop.
#[derive(Debug)]
pub struct ProfiledGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    stats: &'a Arc<LockStats>,
    since: Instant,
}

impl<'a, T> ProfiledGuard<'a, T> {
    /// Waits on `cv`, releasing and re-acquiring the underlying mutex. The
    /// wait time is *excluded* from hold time (the lock is not held while
    /// blocked), matching how memcached pairs `pthread_cond_wait` with
    /// `cache_lock`/`slabs_lock`.
    pub fn wait_on(&mut self, cv: &Condvar) {
        let held = self.since.elapsed().as_nanos() as u64;
        self.stats.hold_nanos.fetch_add(held, Ordering::Relaxed);
        cv.wait(self.guard.as_mut().expect("guard already released"));
        self.since = Instant::now();
    }

    /// Waits on `cv` with a timeout; returns `true` if the wait timed out.
    pub fn wait_on_for(&mut self, cv: &Condvar, dur: std::time::Duration) -> bool {
        let held = self.since.elapsed().as_nanos() as u64;
        self.stats.hold_nanos.fetch_add(held, Ordering::Relaxed);
        let r = cv.wait_for(self.guard.as_mut().expect("guard already released"), dur);
        self.since = Instant::now();
        r.timed_out()
    }
}

impl<T> std::ops::Deref for ProfiledGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for ProfiledGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard already released")
    }
}

impl<T> Drop for ProfiledGuard<'_, T> {
    fn drop(&mut self) {
        let held = self.since.elapsed().as_nanos() as u64;
        self.stats.hold_nanos.fetch_add(held, Ordering::Relaxed);
        drop(self.guard.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn uncontended_lock_counts() {
        let p = Profiler::new();
        let m = ProfiledMutex::new("m", 0u32, &p);
        for _ in 0..5 {
            *m.lock() += 1;
        }
        let r = &p.report()[0];
        assert_eq!(r.acquisitions, 5);
        assert_eq!(r.contended, 0);
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn try_lock_failure_counts() {
        let p = Profiler::new();
        let m = ProfiledMutex::new("m", (), &p);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        let r = &p.report()[0];
        assert_eq!(r.try_failures, 1);
        assert_eq!(r.acquisitions, 2);
    }

    #[test]
    fn contention_is_detected() {
        let p = Profiler::new();
        let m = Arc::new(ProfiledMutex::new("hot", 0u64, &p));
        let mut handles = vec![];
        for _ in 0..4 {
            let m = m.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    let mut g = m.lock();
                    *g += 1;
                    // Stretch the critical section so others collide.
                    std::hint::black_box(&mut *g);
                    thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = &p.report()[0];
        assert_eq!(r.acquisitions, 800);
        assert!(r.contended > 0, "expected contention on the hot lock");
        assert_eq!(*m.lock(), 800);
    }

    #[test]
    fn report_sorted_by_contention() {
        let p = Profiler::new();
        let quiet = ProfiledMutex::new("quiet", (), &p);
        let hot = Arc::new(ProfiledMutex::new("hot", (), &p));
        let _ = quiet.lock();
        let g = hot.lock();
        let h2 = {
            let hot = hot.clone();
            thread::spawn(move || {
                let _ = hot.lock();
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(g);
        h2.join().unwrap();
        let rows = p.report();
        assert_eq!(rows[0].name, "hot");
        assert!(rows[0].contended >= 1);
    }

    #[test]
    fn condvar_wait_roundtrip() {
        let p = Profiler::new();
        let m = Arc::new(ProfiledMutex::new("cv", false, &p));
        let cv = Arc::new(Condvar::new());
        let waiter = {
            let (m, cv) = (m.clone(), cv.clone());
            thread::spawn(move || {
                let mut g = m.lock();
                while !*g {
                    g.wait_on(&cv);
                }
            })
        };
        thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn wait_with_timeout() {
        let p = Profiler::new();
        let m = ProfiledMutex::new("cv", (), &p);
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(g.wait_on_for(&cv, Duration::from_millis(5)));
    }

    #[test]
    fn report_table_formats() {
        let p = Profiler::new();
        let m = ProfiledMutex::new("stats_lock", (), &p);
        let _ = m.lock();
        let table = p.report_table();
        assert!(table.contains("stats_lock"), "{table}");
        assert!(table.contains("acq=1"), "{table}");
    }
}
