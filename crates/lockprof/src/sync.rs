//! Thin, dependency-free synchronization primitives.
//!
//! The crate used to pull in `parking_lot` for its non-poisoning mutex and
//! its `Condvar::wait(&mut guard)` signature. The build environment is
//! hermetic (path-only dependencies), so this module wraps `std::sync`
//! behind the same API shape instead:
//!
//! * [`Mutex::lock`] returns the guard directly — a poisoned mutex is
//!   recovered rather than propagated, matching `parking_lot` semantics
//!   (panicking while holding a lock does not brick unrelated threads).
//! * [`Mutex::try_lock`] returns `Option`, not `Result`.
//! * [`Condvar::wait`] takes `&mut MutexGuard` and re-fills it, so callers
//!   can wait in a loop without ceding guard ownership.

use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

/// A non-poisoning mutual-exclusion lock over `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Blocking acquisition. Recovers (rather than propagates) poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Non-blocking acquisition; `None` if the lock is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists only so
/// [`Condvar::wait`] can temporarily take ownership (the `std` wait API
/// consumes the guard); it is `Some` at every API boundary.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then re-acquires it. Spurious wakeups are possible, as with every
    /// condition variable — wait in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`], but gives up after `dur`.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, r) = match self.inner.wait_timeout(g, dur) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_try_lock() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 2);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock after poison must still work");
    }

    #[test]
    fn condvar_wait_and_notify() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let waiter = {
            let (m, cv) = (m.clone(), cv.clone());
            thread::spawn(move || {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            })
        };
        thread::sleep(Duration::from_millis(5));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn timed_wait_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(2)).timed_out());
    }
}
