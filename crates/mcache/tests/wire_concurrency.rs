//! Wire-level concurrency and robustness: many client threads hammering
//! one [`mcache::net::Server`] over loopback, with every response checked
//! against the deterministic oracle; CAS races with structural
//! invariants; and abrupt mid-frame disconnects that must release the
//! connection slot without poisoning worker state.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mcache::net::{NetConfig, Server};
use mcache::{Branch, McCache, McConfig, SlabConfig, Stage};

fn server(branch: Branch, workers: usize) -> Server {
    let handle = McCache::start(McConfig {
        branch,
        workers,
        slab: SlabConfig {
            mem_limit: 16 << 20,
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 8,
        hash_power_max: 10,
        item_lock_power: 5,
        maintenance: false,
        ..Default::default()
    });
    Server::start(
        handle,
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn connect(srv: &Server) -> TcpStream {
    let s = TcpStream::connect(srv.local_addr()).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s
}

fn read_line(s: &mut TcpStream, buf: &mut Vec<u8>) -> Vec<u8> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(i) = buf.windows(2).position(|w| w == b"\r\n") {
            let line = buf[..i].to_vec();
            buf.drain(..i + 2);
            return line;
        }
        let n = s.read(&mut chunk).expect("read line");
        assert!(n > 0, "connection closed mid-line");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Reads a full get response (to END) and returns the VALUE data blocks.
fn read_values(s: &mut TcpStream, buf: &mut Vec<u8>) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line = read_line(s, buf);
        if line == b"END" {
            return out;
        }
        let text = String::from_utf8_lossy(&line).to_string();
        let len: usize = text.split_whitespace().nth(3).unwrap().parse().unwrap();
        let mut chunk = [0u8; 4096];
        while buf.len() < len + 2 {
            let n = s.read(&mut chunk).expect("read data block");
            assert!(n > 0, "connection closed mid-value");
            buf.extend_from_slice(&chunk[..n]);
        }
        out.push(buf[..len].to_vec());
        assert_eq!(&buf[len..len + 2], b"\r\n");
        buf.drain(..len + 2);
    }
}

/// The oracle: thread `t`'s key `i` always stores exactly this value at
/// version `v` — any wire response disagreeing is a server bug.
fn oracle_value(t: usize, i: usize, v: usize) -> Vec<u8> {
    format!("value-{t}-{i}-{v}-{}", "x".repeat((t * 7 + i * 3 + v) % 64)).into_bytes()
}

#[test]
fn concurrent_clients_match_the_oracle() {
    const THREADS: usize = 4;
    const KEYS_PER_THREAD: usize = 32;
    const ROUNDS: usize = 12;
    let srv = server(Branch::It(Stage::OnCommit), 4);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let srv = &srv;
            scope.spawn(move || {
                let mut s = connect(srv);
                let mut buf = Vec::new();
                for v in 0..ROUNDS {
                    // A pipelined burst: every key's set in ONE write,
                    // then the STORED replies in order.
                    let mut wire = Vec::new();
                    for i in 0..KEYS_PER_THREAD {
                        let val = oracle_value(t, i, v);
                        wire.extend_from_slice(
                            format!("set t{t}:k{i} 0 0 {}\r\n", val.len()).as_bytes(),
                        );
                        wire.extend_from_slice(&val);
                        wire.extend_from_slice(b"\r\n");
                    }
                    s.write_all(&wire).unwrap();
                    for _ in 0..KEYS_PER_THREAD {
                        assert_eq!(read_line(&mut s, &mut buf), b"STORED");
                    }
                    // Multiget the whole private keyspace back: all hits,
                    // every data block exactly the oracle's bytes.
                    let mut req = b"get".to_vec();
                    for i in 0..KEYS_PER_THREAD {
                        req.extend_from_slice(format!(" t{t}:k{i}").as_bytes());
                    }
                    req.extend_from_slice(b"\r\n");
                    s.write_all(&req).unwrap();
                    let vals = read_values(&mut s, &mut buf);
                    assert_eq!(vals.len(), KEYS_PER_THREAD, "private keys never miss");
                    for (i, data) in vals.iter().enumerate() {
                        assert_eq!(data, &oracle_value(t, i, v), "t{t} k{i} round {v}");
                    }
                }
            });
        }
    });

    let ns = srv.net_stats();
    assert_eq!(ns.frame_errors, 0, "clean traffic must not count frame errors");
    let st = srv.cache().stats();
    assert_eq!(st.request_panics, 0);
    assert_eq!(
        st.threads.get_misses, 0,
        "private keyspaces: every wire GET must hit"
    );
}

#[test]
fn cas_races_over_loopback_keep_structural_invariants() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 50;
    let srv = server(Branch::ItNoLock, 4);

    // Seed the contested key.
    {
        let mut s = connect(&srv);
        let mut buf = Vec::new();
        s.write_all(b"set contested 0 0 6\r\nseed-0\r\n").unwrap();
        assert_eq!(read_line(&mut s, &mut buf), b"STORED");
    }

    let wins: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let srv = &srv;
                scope.spawn(move || {
                    let mut s = connect(srv);
                    let mut buf = Vec::new();
                    let mut wins = 0usize;
                    for r in 0..ROUNDS {
                        // gets → cas with the observed id: classic optimistic
                        // update. Exactly one of the racers can win each
                        // version; losers see EXISTS (or NOT_FOUND never —
                        // the key is never deleted).
                        s.write_all(b"gets contested\r\n").unwrap();
                        let line = read_line(&mut s, &mut buf);
                        let text = String::from_utf8_lossy(&line).to_string();
                        assert!(text.starts_with("VALUE contested "), "{text:?}");
                        let len: usize =
                            text.split_whitespace().nth(3).unwrap().parse().unwrap();
                        let cas: u64 =
                            text.split_whitespace().nth(4).unwrap().parse().unwrap();
                        let mut chunk = [0u8; 4096];
                        while buf.len() < len + 2 {
                            let n = s.read(&mut chunk).unwrap();
                            assert!(n > 0);
                            buf.extend_from_slice(&chunk[..n]);
                        }
                        buf.drain(..len + 2);
                        assert_eq!(read_line(&mut s, &mut buf), b"END");

                        let val = format!("w-{t}-{r}");
                        let req =
                            format!("cas contested 0 0 {} {cas}\r\n{val}\r\n", val.len());
                        s.write_all(req.as_bytes()).unwrap();
                        match read_line(&mut s, &mut buf).as_slice() {
                            b"STORED" => wins += 1,
                            b"EXISTS" => {}
                            other => panic!(
                                "cas answered {:?}",
                                String::from_utf8_lossy(other)
                            ),
                        }
                    }
                    wins
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Somebody must have won, and the survivor is a well-formed candidate.
    let total: usize = wins.iter().sum();
    assert!(total >= 1, "at least one CAS must land");
    let mut s = connect(&srv);
    let mut buf = Vec::new();
    s.write_all(b"get contested\r\n").unwrap();
    let vals = read_values(&mut s, &mut buf);
    assert_eq!(vals.len(), 1);
    let text = String::from_utf8_lossy(&vals[0]).to_string();
    assert!(
        text == "seed-0" || text.starts_with("w-"),
        "final value is one of the writes: {text:?}"
    );
    assert_eq!(srv.net_stats().frame_errors, 0);
    assert_eq!(srv.cache().stats().request_panics, 0);
}

/// Polls until the server's live-connection gauge drains to `want`.
fn wait_for_connections(srv: &Server, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if srv.net_stats().curr_connections == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "curr_connections stuck at {} (want {want})",
            srv.net_stats().curr_connections
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn abrupt_mid_frame_disconnect_releases_the_slot() {
    let srv = server(Branch::It(Stage::OnCommit), 2);

    // ASCII: die with a set's data block half-sent.
    {
        let mut s = connect(&srv);
        s.write_all(b"set doomed 0 0 100\r\npartial-data").unwrap();
        wait_for_connections(&srv, 1);
        drop(s);
    }
    wait_for_connections(&srv, 0);

    // Binary: die mid-header.
    {
        let mut s = connect(&srv);
        s.write_all(&[0x80, 0x01, 0x00]).unwrap();
        wait_for_connections(&srv, 1);
        drop(s);
    }
    wait_for_connections(&srv, 0);

    // The worker that owned those connections still serves correctly.
    let mut s = connect(&srv);
    let mut buf = Vec::new();
    s.write_all(b"set alive 0 0 2\r\nok\r\n").unwrap();
    assert_eq!(read_line(&mut s, &mut buf), b"STORED");
    s.write_all(b"get alive\r\n").unwrap();
    assert_eq!(read_values(&mut s, &mut buf), vec![b"ok".to_vec()]);
    // The torn frames never executed and never counted as panics; the
    // half-sent set must not have stored anything.
    s.write_all(b"get doomed\r\n").unwrap();
    assert!(read_values(&mut s, &mut buf).is_empty());
    assert_eq!(srv.cache().stats().request_panics, 0);
    let ns = srv.net_stats();
    assert_eq!(ns.curr_connections, 1);
    assert_eq!(ns.total_connections, 3);
}
