//! Graceful degradation: a redo-log I/O failure must leave the cache
//! fully serving (cache-only mode), tick `log_write_errors`, and never
//! panic or block a commit.
//!
//! Lives in its own integration-test binary because the chaos triggers
//! are process-global statics; sharing a process with the other
//! durability tests would inject failures into their logs.

use std::path::PathBuf;
use std::sync::atomic::Ordering;

use mcache::dur::{APPEND_COUNTER, CHAOS_FAIL_AFTER};
use mcache::{Branch, DurFsync, McCache, McConfig, SlabConfig, Stage};

#[test]
fn log_write_failure_degrades_to_cache_only() {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "mcache-durchaos-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let c = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.25,
        },
        hash_power: 8,
        hash_power_max: 10,
        dur_path: Some(dir.clone()),
        dur_fsync: DurFsync::Always,
        ..Default::default()
    });
    c.set(0, b"before", b"v", 0, 0);
    assert!(c.dur_enabled());

    // Every append from here on fails as if the disk returned EIO.
    CHAOS_FAIL_AFTER.store(APPEND_COUNTER.load(Ordering::SeqCst), Ordering::SeqCst);
    for i in 0..50u32 {
        c.set(0, format!("k{i}").as_bytes(), b"v", 0, 0);
    }
    assert!(c.delete(0, b"k0"));
    CHAOS_FAIL_AFTER.store(u64::MAX, Ordering::SeqCst);

    // The cache itself never noticed: every op served normally.
    assert_eq!(c.get(0, b"k1").unwrap().data, b"v");
    assert_eq!(c.get(0, b"k0"), None);
    assert!(!c.dur_enabled(), "log must be in cache-only mode");
    let d = c.dur_stats().unwrap();
    assert!(
        d.log_write_errors >= 51,
        "each dropped append must tick log_write_errors: {d:?}"
    );
    // Degradation is sticky: post-chaos appends stay dropped.
    c.set(0, b"late", b"v", 0, 0);
    let d2 = c.dur_stats().unwrap();
    assert!(d2.log_write_errors > d.log_write_errors);
    assert_eq!(d2.appends, d.appends, "no append lands after degradation");

    drop(c);
    let _ = std::fs::remove_dir_all(&dir);
}
