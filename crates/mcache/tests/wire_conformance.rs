//! Wire-level protocol conformance: a real [`mcache::net::Server`] on an
//! ephemeral loopback port, driven with raw byte streams — including
//! torn frames delivered one byte at a time, oversized keys and values,
//! and malformed input — asserting exact response bytes and whether the
//! connection survives.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mcache::net::{NetConfig, Server};
use mcache::proto::binary::{Opcode, Request, Response, Status};
use mcache::proto::{ASCII_LINE_MAX, ASCII_VALUE_MAX};
use mcache::{Branch, McCache, McConfig, SlabConfig, Stage};

fn server(branch: Branch) -> Server {
    let handle = McCache::start(McConfig {
        branch,
        workers: 2,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 6,
        hash_power_max: 8,
        item_lock_power: 4,
        maintenance: false,
        ..Default::default()
    });
    Server::start(
        handle,
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn connect(srv: &Server) -> TcpStream {
    let s = TcpStream::connect(srv.local_addr()).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Reads exactly `expected.len()` bytes and asserts they match.
fn expect_exact(s: &mut TcpStream, expected: &[u8]) {
    let mut got = vec![0u8; expected.len()];
    s.read_exact(&mut got).unwrap_or_else(|e| {
        panic!(
            "short read (wanted {:?}): {e}",
            String::from_utf8_lossy(expected)
        )
    });
    assert_eq!(
        got,
        expected,
        "wire bytes: got {:?}, wanted {:?}",
        String::from_utf8_lossy(&got),
        String::from_utf8_lossy(expected)
    );
}

/// Sends a request and asserts the exact response bytes.
fn roundtrip(s: &mut TcpStream, req: &[u8], expected: &[u8]) {
    s.write_all(req).unwrap();
    expect_exact(s, expected);
}

/// Asserts the server closed this connection (EOF, not timeout).
fn expect_closed(s: &mut TcpStream) {
    let mut b = [0u8; 64];
    loop {
        match s.read(&mut b) {
            Ok(0) => return,
            Ok(_) => continue, // drain any final error line
            Err(e) => panic!("expected EOF, got {e}"),
        }
    }
}

/// Reads one binary response frame; pipelined leftovers stay in `buf`
/// for the next call.
fn read_frame(s: &mut TcpStream, buf: &mut Vec<u8>) -> Response {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((resp, used)) = Response::decode(buf) {
            buf.drain(..used);
            return resp;
        }
        let n = s.read(&mut chunk).expect("read binary frame");
        assert!(n > 0, "connection closed mid-frame");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Reads one raw binary response header + body, returning the status
/// field — for error frames whose opcode byte is garbage by design
/// (Response::decode rejects those).
fn read_raw_status(s: &mut TcpStream) -> u16 {
    let mut header = [0u8; 24];
    s.read_exact(&mut header).expect("read raw response header");
    assert_eq!(header[0], 0x81, "response magic");
    let body_len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let mut body = vec![0u8; body_len];
    s.read_exact(&mut body).expect("read raw response body");
    u16::from_be_bytes([header[6], header[7]])
}

/// The ASCII script every transport variant must satisfy, in order.
fn ascii_script() -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut v: Vec<(&[u8], &[u8])> = vec![
        (b"set k1 5 0 3\r\nabc\r\n", b"STORED\r\n"),
        (b"get k1\r\n", b"VALUE k1 5 3\r\nabc\r\nEND\r\n"),
        (b"add k1 0 0 1\r\nZ\r\n", b"NOT_STORED\r\n"),
        (b"replace k1 0 0 3\r\nxyz\r\n", b"STORED\r\n"),
        (b"append k1 0 0 1\r\n!\r\n", b"STORED\r\n"),
        (b"prepend k1 0 0 1\r\n>\r\n", b"STORED\r\n"),
        (b"get k1\r\n", b"VALUE k1 0 5\r\n>xyz!\r\nEND\r\n"),
        (b"set k2 0 0 2\r\nhi\r\n", b"STORED\r\n"),
        // multiget: both keys, request order.
        (
            b"get k1 k2 missing\r\n",
            b"VALUE k1 0 5\r\n>xyz!\r\nVALUE k2 0 2\r\nhi\r\nEND\r\n",
        ),
        (b"delete k2\r\n", b"DELETED\r\n"),
        (b"delete k2\r\n", b"NOT_FOUND\r\n"),
        (b"set n 0 0 1\r\n5\r\n", b"STORED\r\n"),
        (b"incr n 10\r\n", b"15\r\n"),
        (b"decr n 20\r\n", b"0\r\n"),
        (b"touch n 100\r\n", b"TOUCHED\r\n"),
        (b"touch missing 100\r\n", b"NOT_FOUND\r\n"),
        (b"version\r\n", b"VERSION 1.4.15-tm (IT-onCommit)\r\n"),
        (b"bogus_command\r\n", b"ERROR\r\n"),
        (b"get\r\n", b"ERROR\r\n"),
        // nbytes bytes arrive but the data block's terminator is wrong:
        // the frame consumes exactly nbytes+2 so the stream stays synced.
        (b"set k3 0 0 3\r\nabXY\r", b"CLIENT_ERROR bad data chunk\r\n"),
    ];
    // noreply storage is silent; prove it by the very next response.
    v.push((b"set quiet 0 0 2 noreply\r\nqq\r\n", b""));
    v.push((b"get quiet\r\n", b"VALUE quiet 0 2\r\nqq\r\nEND\r\n"));
    v.push((b"delete quiet noreply\r\n", b""));
    v.push((b"get quiet\r\n", b"END\r\n"));
    v.into_iter()
        .map(|(a, b)| (a.to_vec(), b.to_vec()))
        .collect()
}

#[test]
fn ascii_script_over_the_wire() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    for (req, resp) in ascii_script() {
        roundtrip(&mut s, &req, &resp);
    }
}

#[test]
fn ascii_script_survives_one_byte_writes() {
    // The same script, every request delivered one byte per write: the
    // incremental scanner must frame identically no matter where the
    // socket reads land.
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    for (req, resp) in ascii_script() {
        for &b in req.iter() {
            s.write_all(&[b]).unwrap();
        }
        expect_exact(&mut s, &resp);
    }
}

#[test]
fn ascii_cas_over_the_wire() {
    let srv = server(Branch::ItNoLock);
    let mut s = connect(&srv);
    roundtrip(&mut s, b"set c 0 0 3\r\nv-1\r\n", b"STORED\r\n");

    // gets exposes the CAS id; parse it back out.
    s.write_all(b"gets c\r\n").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    while !buf.ends_with(b"END\r\n") {
        let n = s.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-gets");
        buf.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&buf).to_string();
    assert!(text.starts_with("VALUE c 0 3 "), "gets response: {text:?}");
    let cas: u64 = text
        .split_whitespace()
        .nth(4)
        .and_then(|w| w.split('\r').next())
        .unwrap()
        .parse()
        .unwrap();

    let good = format!("cas c 0 0 3 {cas}\r\nv-2\r\n");
    roundtrip(&mut s, good.as_bytes(), b"STORED\r\n");
    // Stale CAS id loses.
    let stale = format!("cas c 0 0 3 {cas}\r\nv-3\r\n");
    roundtrip(&mut s, stale.as_bytes(), b"EXISTS\r\n");
    roundtrip(&mut s, b"cas ghost 0 0 1 9\r\nx\r\n", b"NOT_FOUND\r\n");
    roundtrip(&mut s, b"get c\r\n", b"VALUE c 0 3\r\nv-2\r\nEND\r\n");
}

#[test]
fn oversized_key_is_client_error_and_survivable() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    let big = "k".repeat(251);

    let req = format!("get {big}\r\n");
    roundtrip(
        &mut s,
        req.as_bytes(),
        b"CLIENT_ERROR bad command line format\r\n",
    );
    // A store with an oversized key frames as line + data block (the
    // data is consumed with the doomed command), answered once.
    let req = format!("set {big} 0 0 1\r\nx\r\n");
    roundtrip(
        &mut s,
        req.as_bytes(),
        b"CLIENT_ERROR bad command line format\r\n",
    );
    // The connection is still in sync.
    roundtrip(&mut s, b"set ok 0 0 2\r\nok\r\n", b"STORED\r\n");
    roundtrip(&mut s, b"get ok\r\n", b"VALUE ok 0 2\r\nok\r\nEND\r\n");
}

#[test]
fn oversized_value_is_swallowed_not_fatal() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);

    // nbytes over the cap: the server answers immediately and discards
    // the in-flight data block without buffering it.
    let n = ASCII_VALUE_MAX + 1;
    s.write_all(format!("set huge 0 0 {n}\r\n").as_bytes()).unwrap();
    expect_exact(&mut s, b"SERVER_ERROR object too large for cache\r\n");
    // Stream the doomed payload anyway — it must be swallowed so the
    // next command starts on a frame boundary.
    let chunk = vec![b'z'; 64 << 10];
    let mut sent = 0;
    while sent < n {
        let take = chunk.len().min(n - sent);
        s.write_all(&chunk[..take]).unwrap();
        sent += take;
    }
    s.write_all(b"\r\n").unwrap();
    roundtrip(&mut s, b"get huge\r\n", b"END\r\n");
    roundtrip(&mut s, b"set after 0 0 2\r\nok\r\n", b"STORED\r\n");
    assert!(srv.net_stats().frame_errors >= 1, "counted as a frame error");
}

#[test]
fn absurd_value_length_closes_without_killing_the_worker() {
    // `set k 0 0 18446744073709551615`: the declared length overflows
    // `swallow + 2` in usize arithmetic. The connection must be closed
    // as unsyncable — not panic the net worker (which owns every other
    // connection on its shard) or wrap the swallow count.
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    roundtrip(&mut s, b"set live 0 0 2\r\nok\r\n", b"STORED\r\n");
    s.write_all(format!("set k 0 0 {}\r\n", u64::MAX).as_bytes()).unwrap();
    expect_exact(&mut s, b"SERVER_ERROR object too large for cache\r\n");
    expect_closed(&mut s);
    assert!(srv.net_stats().frame_errors >= 1);
    // The worker survived: a fresh connection is served normally.
    let mut s2 = connect(&srv);
    roundtrip(&mut s2, b"get live\r\n", b"VALUE live 0 2\r\nok\r\nEND\r\n");
}

#[test]
fn slow_reader_backpressure_bounds_pending_responses() {
    // A client that pipelines gets of a fat value but never reads the
    // responses must be parked at the write-side high-water mark, not
    // amplified into an unbounded response buffer.
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 6,
        hash_power_max: 8,
        item_lock_power: 4,
        maintenance: false,
        ..Default::default()
    });
    let srv = Server::start(
        handle,
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            wbuf_high_water: 32 << 10,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let mut s = connect(&srv);

    let val = vec![b'v'; 16 << 10];
    let mut set = format!("set fat 0 0 {}\r\n", val.len()).into_bytes();
    set.extend_from_slice(&val);
    set.extend_from_slice(b"\r\n");
    roundtrip(&mut s, &set, b"STORED\r\n");

    // ~28 KiB of requests fanning out to ~67 MiB of responses; without
    // backpressure that all lands in the connection's write buffer.
    const GETS: usize = 4096;
    let burst = b"get fat\r\n".repeat(GETS);
    s.write_all(&burst).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while srv.net_stats().backpressure_stalls == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never stalled the non-reading client"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Draining the socket releases the backlog: every response arrives
    // complete and in order.
    let mut one = format!("VALUE fat 0 {}\r\n", val.len()).into_bytes();
    one.extend_from_slice(&val);
    one.extend_from_slice(b"\r\nEND\r\n");
    for i in 0..GETS {
        let mut got = vec![0u8; one.len()];
        s.read_exact(&mut got)
            .unwrap_or_else(|e| panic!("short read at response {i}: {e}"));
        assert!(got == one, "response {i} corrupted");
    }
    assert!(srv.net_stats().backpressure_stalls > 0);
}

#[test]
fn overlong_line_closes_the_connection() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    // An unterminated command line past the cap cannot be resynced.
    let junk = vec![b'a'; ASCII_LINE_MAX + 1];
    s.write_all(&junk).unwrap();
    expect_closed(&mut s);
    // The server itself is fine: new connections work.
    let mut s2 = connect(&srv);
    roundtrip(&mut s2, b"version\r\n", b"VERSION 1.4.15-tm (IT-onCommit)\r\n");
}

#[test]
fn quit_closes_after_flushing() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    // Pipelined: the set's reply must arrive before the close.
    s.write_all(b"set q 0 0 1\r\nx\r\nquit\r\n").unwrap();
    expect_exact(&mut s, b"STORED\r\n");
    expect_closed(&mut s);
}

#[test]
fn stats_includes_net_counters() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    roundtrip(&mut s, b"set sk 0 0 2\r\nsv\r\n", b"STORED\r\n");
    s.write_all(b"stats\r\n").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !buf.ends_with(b"END\r\n") {
        let n = s.read(&mut chunk).unwrap();
        assert!(n > 0, "connection closed mid-stats");
        buf.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&buf);
    for key in [
        "STAT curr_connections 1",
        "STAT total_connections 1",
        "STAT bytes_read ",
        "STAT bytes_written ",
        "STAT frame_errors 0",
        "STAT cmd_set ",
    ] {
        assert!(text.contains(key), "stats missing {key:?} in:\n{text}");
    }
}

fn bin_req(opcode: Opcode, opaque: u32, key: &[u8], value: &[u8]) -> Request {
    Request {
        opcode,
        opaque,
        cas: 0,
        key: key.to_vec(),
        value: value.to_vec(),
        extra: 0,
    }
}

#[test]
fn binary_script_over_the_wire() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);

    let mut rb = Vec::new();
    s.write_all(&bin_req(Opcode::Set, 1, b"bk", b"bv").encode()).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.status, r.opaque), (Status::Ok, 1));

    s.write_all(&bin_req(Opcode::Get, 2, b"bk", b"").encode()).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.status, r.opaque), (Status::Ok, 2));
    assert_eq!(r.value, b"bv");
    assert_ne!(r.cas, 0, "get hits expose the item CAS");
    assert!(r.key.is_empty(), "plain GET does not echo the key");

    s.write_all(&bin_req(Opcode::GetK, 3, b"bk", b"").encode()).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.status, r.opaque), (Status::Ok, 3));
    assert_eq!(r.key, b"bk");

    s.write_all(&bin_req(Opcode::Get, 4, b"ghost", b"").encode()).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.status, r.opaque), (Status::KeyNotFound, 4));

    s.write_all(&bin_req(Opcode::Delete, 5, b"bk", b"").encode()).unwrap();
    assert_eq!(read_frame(&mut s, &mut rb).status, Status::Ok);
}

#[test]
fn binary_quiet_semantics_over_the_wire() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);

    // SETQ burst: quiet stores answer nothing on success; only the
    // terminating Noop comes back.
    let mut wire = Vec::new();
    for i in 0..4u32 {
        let key = format!("qk{i}");
        wire.extend_from_slice(
            &bin_req(Opcode::SetQ, i, key.as_bytes(), b"qv").encode(),
        );
    }
    wire.extend_from_slice(&bin_req(Opcode::Noop, 99, b"", b"").encode());
    s.write_all(&wire).unwrap();
    let mut rb = Vec::new();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.opcode, r.opaque), (Opcode::Noop, 99), "only the Noop answers");

    // GETQ (no key echo) and GETKQ (key echo) mix: misses are silent.
    let mut wire = Vec::new();
    wire.extend_from_slice(&bin_req(Opcode::GetQ, 10, b"qk0", b"").encode());
    wire.extend_from_slice(&bin_req(Opcode::GetQ, 11, b"ghost", b"").encode());
    wire.extend_from_slice(&bin_req(Opcode::GetKQ, 12, b"qk1", b"").encode());
    wire.extend_from_slice(&bin_req(Opcode::GetKQ, 13, b"ghost", b"").encode());
    wire.extend_from_slice(&bin_req(Opcode::Noop, 100, b"", b"").encode());
    s.write_all(&wire).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.opaque, r.status), (10, Status::Ok));
    assert_eq!(r.value, b"qv");
    assert!(r.key.is_empty(), "GETQ hits do not echo the key");
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.opaque, r.status), (12, Status::Ok));
    assert_eq!(r.key, b"qk1", "GETKQ hits echo the key");
    let r = read_frame(&mut s, &mut rb);
    assert_eq!(r.opaque, 100, "misses were silent; Noop terminates");

    // DeleteQ: silent success, loud miss.
    let mut wire = Vec::new();
    wire.extend_from_slice(&bin_req(Opcode::DeleteQ, 20, b"qk0", b"").encode());
    wire.extend_from_slice(&bin_req(Opcode::DeleteQ, 21, b"ghost", b"").encode());
    wire.extend_from_slice(&bin_req(Opcode::Noop, 101, b"", b"").encode());
    s.write_all(&wire).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.opaque, r.status), (21, Status::KeyNotFound));
    let r = read_frame(&mut s, &mut rb);
    assert_eq!(r.opaque, 101);
}

#[test]
fn binary_unknown_opcode_answers_without_closing() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);

    // Magic 0x80, opcode 0xEE, empty body: a well-framed unknown command.
    let mut frame = vec![0u8; 24];
    frame[0] = 0x80;
    frame[1] = 0xEE;
    s.write_all(&frame).unwrap();
    // The error frame echoes the raw unknown opcode, so only the raw
    // header reader can parse it.
    assert_eq!(read_raw_status(&mut s), Status::UnknownCommand as u16);

    // Connection still works, on both protocols.
    let mut rb = Vec::new();
    s.write_all(&bin_req(Opcode::Set, 7, b"still", b"here").encode()).unwrap();
    assert_eq!(read_frame(&mut s, &mut rb).status, Status::Ok);
    roundtrip(&mut s, b"get still\r\n", b"VALUE still 0 4\r\nhere\r\nEND\r\n");
    assert!(srv.net_stats().frame_errors >= 1);
}

#[test]
fn binary_torn_frames_one_byte_at_a_time() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    let reqs = [
        bin_req(Opcode::Set, 1, b"torn", b"value-bytes"),
        bin_req(Opcode::Get, 2, b"torn", b""),
    ];
    let mut rb = Vec::new();
    for req in &reqs {
        for &b in req.encode().iter() {
            s.write_all(&[b]).unwrap();
        }
        let r = read_frame(&mut s, &mut rb);
        assert_eq!((r.status, r.opaque), (Status::Ok, req.opaque));
    }
}

#[test]
fn binary_oversized_body_closes_with_error_frame() {
    let srv = server(Branch::It(Stage::OnCommit));
    let mut s = connect(&srv);
    // Header advertising a body over the cap: answered with an error
    // frame, then closed — the body is not buffered or awaited.
    let mut frame = vec![0u8; 24];
    frame[0] = 0x80;
    frame[1] = Opcode::Set as u8;
    frame[8..12].copy_from_slice(&tmstd::htonl(64 << 20).to_ne_bytes());
    s.write_all(&frame).unwrap();
    assert_eq!(read_raw_status(&mut s), Status::ValueTooLarge as u16);
    expect_closed(&mut s);
    assert!(srv.net_stats().frame_errors >= 1);
}

/// Binary STAT (0x10): a full stat dump — one packet per statistic with
/// the stat name as the key and the decimal counter as the value —
/// closed by the canonical empty-key/empty-value terminator. With a
/// durability log attached, the `dur_*` block must ride along, and the
/// counters themselves must reflect the traffic that preceded the dump.
#[test]
fn binary_stat_over_the_wire() {
    let dir = std::env::temp_dir().join(format!(
        "mcache-binstat-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 6,
        hash_power_max: 8,
        item_lock_power: 4,
        maintenance: false,
        dur_path: Some(dir.clone()),
        ..Default::default()
    });
    let srv = Server::start(
        handle,
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..NetConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let mut s = connect(&srv);
    let mut rb = Vec::new();

    s.write_all(&bin_req(Opcode::Set, 1, b"sk", b"sv").encode()).unwrap();
    assert_eq!(read_frame(&mut s, &mut rb).status, Status::Ok);
    s.write_all(&bin_req(Opcode::Get, 2, b"sk", b"").encode()).unwrap();
    assert_eq!(read_frame(&mut s, &mut rb).status, Status::Ok);

    s.write_all(&bin_req(Opcode::Stat, 3, b"", b"").encode()).unwrap();
    let mut stats = std::collections::HashMap::new();
    loop {
        let r = read_frame(&mut s, &mut rb);
        assert_eq!((r.status, r.opcode, r.opaque), (Status::Ok, Opcode::Stat, 3));
        if r.key.is_empty() {
            assert!(r.value.is_empty(), "terminator carries no value");
            break;
        }
        let name = String::from_utf8(r.key).expect("stat names are ASCII");
        let val: u64 = String::from_utf8(r.value)
            .expect("stat values are ASCII")
            .parse()
            .expect("stat values are decimal");
        assert!(stats.insert(name, val).is_none(), "no duplicate stat keys");
    }
    assert!(stats["cmd_set"] >= 1, "the SET above must be counted");
    assert!(stats["cmd_get"] >= 1 && stats["get_hits"] >= 1);
    assert!(
        stats.contains_key("dur_appends") && stats["dur_appends"] >= 1,
        "durability counters must ride the binary STAT surface"
    );
    for k in ["dur_fsyncs", "dur_bytes", "dur_compactions", "adapt_epochs", "hot_hits"] {
        assert!(stats.contains_key(k), "missing stat {k}");
    }

    // An unknown stat subgroup answers a single KeyNotFound, connection
    // intact.
    s.write_all(&bin_req(Opcode::Stat, 4, b"slabs", b"").encode()).unwrap();
    let r = read_frame(&mut s, &mut rb);
    assert_eq!((r.status, r.opaque), (Status::KeyNotFound, 4));
    s.write_all(&bin_req(Opcode::Noop, 5, b"", b"").encode()).unwrap();
    assert_eq!(read_frame(&mut s, &mut rb).opaque, 5, "connection survives");

    drop(srv);
    let _ = std::fs::remove_dir_all(&dir);
}
