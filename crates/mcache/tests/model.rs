//! Model-based testing: random operation sequences against a plain
//! `HashMap` reference model, per branch. Single-threaded, so the cache
//! must agree with the model exactly — any divergence is a correctness
//! bug in the slab/assoc/LRU/store machinery.

use std::collections::HashMap;

use proptest::prelude::*;

use mcache::{ArithStatus, Branch, McCache, McConfig, SlabConfig, Stage, StoreStatus};

#[derive(Clone, Debug)]
enum Cmd {
    Set(u8, Vec<u8>),
    Add(u8, Vec<u8>),
    Replace(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
    Incr(u8, u16),
    SetNumeric(u8, u32),
    Append(u8, Vec<u8>),
    CasFresh(u8, Vec<u8>),
    CasStale(u8, Vec<u8>),
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    let key = 0u8..24;
    let val = proptest::collection::vec(any::<u8>(), 0..48);
    prop_oneof![
        (key.clone(), val.clone()).prop_map(|(k, v)| Cmd::Set(k, v)),
        (key.clone(), val.clone()).prop_map(|(k, v)| Cmd::Add(k, v)),
        (key.clone(), val.clone()).prop_map(|(k, v)| Cmd::Replace(k, v)),
        key.clone().prop_map(Cmd::Get),
        key.clone().prop_map(Cmd::Delete),
        (key.clone(), any::<u16>()).prop_map(|(k, d)| Cmd::Incr(k, d)),
        (key.clone(), any::<u32>()).prop_map(|(k, v)| Cmd::SetNumeric(k, v)),
        (key.clone(), proptest::collection::vec(any::<u8>(), 1..16))
            .prop_map(|(k, v)| Cmd::Append(k, v)),
        (key.clone(), val.clone()).prop_map(|(k, v)| Cmd::CasFresh(k, v)),
        (key, val).prop_map(|(k, v)| Cmd::CasStale(k, v)),
    ]
}

fn key_name(k: u8) -> Vec<u8> {
    format!("model-key-{k:03}").into_bytes()
}

fn check_branch(branch: Branch, cmds: &[Cmd]) -> Result<(), TestCaseError> {
    let cache = McCache::start(McConfig {
        branch,
        workers: 1,
        slab: SlabConfig {
            mem_limit: 4 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 6,
        hash_power_max: 9,
        item_lock_power: 4,
        maintenance: false, // single-threaded determinism
        ..Default::default()
    });
    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
    for cmd in cmds {
        match cmd {
            Cmd::Set(k, v) => {
                let st = cache.set(0, &key_name(*k), v, 0, 0);
                prop_assert_eq!(st, StoreStatus::Stored, "{} set", branch);
                model.insert(*k, v.clone());
            }
            Cmd::Add(k, v) => {
                let st = cache.add(0, &key_name(*k), v, 0, 0);
                if model.contains_key(k) {
                    prop_assert_eq!(st, StoreStatus::NotStored, "{} add-present", branch);
                } else {
                    prop_assert_eq!(st, StoreStatus::Stored, "{} add-absent", branch);
                    model.insert(*k, v.clone());
                }
            }
            Cmd::Replace(k, v) => {
                let st = cache.replace(0, &key_name(*k), v, 0, 0);
                if model.contains_key(k) {
                    prop_assert_eq!(st, StoreStatus::Stored, "{} replace-present", branch);
                    model.insert(*k, v.clone());
                } else {
                    prop_assert_eq!(st, StoreStatus::NotStored, "{} replace-absent", branch);
                }
            }
            Cmd::Get(k) => {
                let got = cache.get(0, &key_name(*k)).map(|g| g.data);
                prop_assert_eq!(got.as_ref(), model.get(k), "{} get key {}", branch, k);
            }
            Cmd::Delete(k) => {
                let deleted = cache.delete(0, &key_name(*k));
                prop_assert_eq!(deleted, model.remove(k).is_some(), "{} delete", branch);
            }
            Cmd::SetNumeric(k, v) => {
                let text = v.to_string().into_bytes();
                cache.set(0, &key_name(*k), &text, 0, 0);
                model.insert(*k, text);
            }
            Cmd::Incr(k, d) => {
                let st = cache.arith(0, &key_name(*k), *d as u64, true);
                match model.get_mut(k) {
                    None => prop_assert_eq!(st, ArithStatus::NotFound, "{}", branch),
                    Some(stored) => {
                        // memcached's safe_strtoull: whole value numeric
                        // modulo surrounding whitespace.
                        let parse = |buf: &[u8]| {
                            let (v, used) = tmstd::parse_u64(buf)?;
                            buf[used..]
                                .iter()
                                .all(|&b| b == 0 || tmstd::isspace(b))
                                .then_some(v)
                        };
                        match (stored.len() <= 40).then(|| parse(stored)).flatten() {
                            Some(old) => {
                                let new = old.wrapping_add(*d as u64);
                                prop_assert_eq!(st, ArithStatus::Ok(new), "{}", branch);
                                *stored = new.to_string().into_bytes();
                            }
                            None => {
                                prop_assert_eq!(st, ArithStatus::NonNumeric, "{}", branch)
                            }
                        }
                    }
                }
            }
            Cmd::Append(k, v) => {
                let st = cache.append(0, &key_name(*k), v);
                match model.get_mut(k) {
                    Some(stored) => {
                        prop_assert_eq!(st, StoreStatus::Stored, "{} append", branch);
                        stored.extend_from_slice(v);
                    }
                    None => prop_assert_eq!(st, StoreStatus::NotStored, "{} append", branch),
                }
            }
            Cmd::CasFresh(k, v) => {
                // CAS with the current id must succeed iff present.
                match cache.get(0, &key_name(*k)) {
                    Some(cur) => {
                        let st = cache.cas(0, &key_name(*k), v, 0, 0, cur.cas);
                        prop_assert_eq!(st, StoreStatus::Stored, "{} cas-fresh", branch);
                        model.insert(*k, v.clone());
                    }
                    None => {
                        let st = cache.cas(0, &key_name(*k), v, 0, 0, 1);
                        prop_assert_eq!(st, StoreStatus::NotFound, "{} cas-missing", branch);
                    }
                }
            }
            Cmd::CasStale(k, v) => {
                if model.contains_key(k) {
                    // A CAS id from the future is always stale.
                    let st = cache.cas(0, &key_name(*k), v, 0, 0, u64::MAX);
                    prop_assert_eq!(st, StoreStatus::Exists, "{} cas-stale", branch);
                }
            }
        }
    }
    // Final sweep: every model entry is retrievable, nothing extra lives.
    for (k, v) in &model {
        let got = cache.get(0, &key_name(*k)).map(|g| g.data);
        prop_assert_eq!(got.as_ref(), Some(v), "{} final sweep key {}", branch, k);
    }
    prop_assert_eq!(
        cache.stats().global.curr_items,
        model.len() as u64,
        "{} phantom items",
        branch
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn baseline_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::Baseline, &cmds)?;
    }

    #[test]
    fn ip_plain_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::Ip(Stage::Plain), &cmds)?;
    }

    #[test]
    fn it_plain_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::It(Stage::Plain), &cmds)?;
    }

    #[test]
    fn ip_max_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::Ip(Stage::Max), &cmds)?;
    }

    #[test]
    fn it_lib_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::It(Stage::Lib), &cmds)?;
    }

    #[test]
    fn ip_oncommit_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::Ip(Stage::OnCommit), &cmds)?;
    }

    #[test]
    fn it_nolock_matches_model(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        check_branch(Branch::ItNoLock, &cmds)?;
    }
}

mod binary_wire {
    use mcache::proto::binary::{Opcode, Request};
    use proptest::prelude::*;

    fn opcode_strategy() -> impl Strategy<Value = Opcode> {
        prop_oneof![
            Just(Opcode::Get),
            Just(Opcode::Set),
            Just(Opcode::Add),
            Just(Opcode::Replace),
            Just(Opcode::Delete),
            Just(Opcode::Increment),
            Just(Opcode::Decrement),
            Just(Opcode::Noop),
            Just(Opcode::Version),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// decode(encode(req)) == req for arbitrary well-formed requests.
        #[test]
        fn wire_roundtrip(
            opcode in opcode_strategy(),
            opaque in any::<u32>(),
            cas in any::<u64>(),
            key in proptest::collection::vec(any::<u8>(), 0..64),
            value in proptest::collection::vec(any::<u8>(), 0..128),
            extra in any::<u64>(),
        ) {
            let req = Request { opcode, opaque, cas, key, value, extra };
            let wire = req.encode();
            let back = Request::decode(&wire).expect("self-encoded frame must decode");
            prop_assert_eq!(back.opcode, req.opcode);
            prop_assert_eq!(back.opaque, req.opaque);
            prop_assert_eq!(back.cas, req.cas);
            prop_assert_eq!(back.key, req.key);
            prop_assert_eq!(back.value, req.value);
            // extras only travel on opcodes that carry them
            match req.opcode {
                Opcode::Set | Opcode::Add | Opcode::Replace
                | Opcode::Increment | Opcode::Decrement => {
                    prop_assert_eq!(back.extra, req.extra)
                }
                _ => prop_assert_eq!(back.extra, 0),
            }
        }

        /// Truncated frames never decode (no panics, no partial reads).
        #[test]
        fn truncated_frames_rejected(
            key in proptest::collection::vec(any::<u8>(), 1..32),
            cut in any::<prop::sample::Index>(),
        ) {
            let req = Request {
                opcode: Opcode::Set,
                opaque: 7,
                cas: 0,
                key,
                value: b"vvv".to_vec(),
                extra: 1,
            };
            let wire = req.encode();
            let cut_at = cut.index(wire.len().saturating_sub(1));
            prop_assert!(Request::decode(&wire[..cut_at]).is_none());
        }
    }
}
