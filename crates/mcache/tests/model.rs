//! Model-based testing: random operation sequences against a plain
//! `HashMap` reference model, per branch. Single-threaded, so the cache
//! must agree with the model exactly — any divergence is a correctness
//! bug in the slab/assoc/LRU/store machinery.

use std::collections::HashMap;

use testkit::prop::{gen, CaseResult};
use testkit::rng::{Rng, SmallRng};
use testkit::{no_shrink, prop_assert, prop_assert_eq, proptest};

use mcache::{ArithStatus, Branch, McCache, McConfig, SlabConfig, Stage, StoreStatus};

#[derive(Clone, Debug)]
enum Cmd {
    Set(u8, Vec<u8>),
    Add(u8, Vec<u8>),
    Replace(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
    Incr(u8, u16),
    SetNumeric(u8, u32),
    Append(u8, Vec<u8>),
    CasFresh(u8, Vec<u8>),
    CasStale(u8, Vec<u8>),
}

no_shrink!(Cmd);

fn cmd_gen() -> impl Fn(&mut SmallRng) -> Cmd + Clone {
    |rng: &mut SmallRng| {
        let k = rng.gen_range(0u8..24);
        match rng.gen_range(0u32..10) {
            0 => Cmd::Set(k, gen::bytes(0..48)(rng)),
            1 => Cmd::Add(k, gen::bytes(0..48)(rng)),
            2 => Cmd::Replace(k, gen::bytes(0..48)(rng)),
            3 => Cmd::Get(k),
            4 => Cmd::Delete(k),
            5 => Cmd::Incr(k, rng.next_u64() as u16),
            6 => Cmd::SetNumeric(k, rng.next_u64() as u32),
            7 => Cmd::Append(k, gen::bytes(1..16)(rng)),
            8 => Cmd::CasFresh(k, gen::bytes(0..48)(rng)),
            _ => Cmd::CasStale(k, gen::bytes(0..48)(rng)),
        }
    }
}

fn key_name(k: u8) -> Vec<u8> {
    format!("model-key-{k:03}").into_bytes()
}

fn check_branch(branch: Branch, cmds: &[Cmd]) -> CaseResult {
    let cache = McCache::start(McConfig {
        branch,
        workers: 1,
        slab: SlabConfig {
            mem_limit: 4 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 6,
        hash_power_max: 9,
        item_lock_power: 4,
        maintenance: false, // single-threaded determinism
        ..Default::default()
    });
    let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
    for cmd in cmds {
        match cmd {
            Cmd::Set(k, v) => {
                let st = cache.set(0, &key_name(*k), v, 0, 0);
                prop_assert_eq!(st, StoreStatus::Stored, "{} set", branch);
                model.insert(*k, v.clone());
            }
            Cmd::Add(k, v) => {
                let st = cache.add(0, &key_name(*k), v, 0, 0);
                if model.contains_key(k) {
                    prop_assert_eq!(st, StoreStatus::NotStored, "{} add-present", branch);
                } else {
                    prop_assert_eq!(st, StoreStatus::Stored, "{} add-absent", branch);
                    model.insert(*k, v.clone());
                }
            }
            Cmd::Replace(k, v) => {
                let st = cache.replace(0, &key_name(*k), v, 0, 0);
                if model.contains_key(k) {
                    prop_assert_eq!(st, StoreStatus::Stored, "{} replace-present", branch);
                    model.insert(*k, v.clone());
                } else {
                    prop_assert_eq!(st, StoreStatus::NotStored, "{} replace-absent", branch);
                }
            }
            Cmd::Get(k) => {
                let got = cache.get(0, &key_name(*k)).map(|g| g.data);
                prop_assert_eq!(got.as_ref(), model.get(k), "{} get key {}", branch, k);
            }
            Cmd::Delete(k) => {
                let deleted = cache.delete(0, &key_name(*k));
                prop_assert_eq!(deleted, model.remove(k).is_some(), "{} delete", branch);
            }
            Cmd::SetNumeric(k, v) => {
                let text = v.to_string().into_bytes();
                cache.set(0, &key_name(*k), &text, 0, 0);
                model.insert(*k, text);
            }
            Cmd::Incr(k, d) => {
                let st = cache.arith(0, &key_name(*k), *d as u64, true);
                match model.get_mut(k) {
                    None => prop_assert_eq!(st, ArithStatus::NotFound, "{}", branch),
                    Some(stored) => {
                        // memcached's safe_strtoull: whole value numeric
                        // modulo surrounding whitespace.
                        let parse = |buf: &[u8]| {
                            let (v, used) = tmstd::parse_u64(buf)?;
                            buf[used..]
                                .iter()
                                .all(|&b| b == 0 || tmstd::isspace(b))
                                .then_some(v)
                        };
                        match (stored.len() <= 40).then(|| parse(stored)).flatten() {
                            Some(old) => {
                                let new = old.wrapping_add(*d as u64);
                                prop_assert_eq!(st, ArithStatus::Ok(new), "{}", branch);
                                *stored = new.to_string().into_bytes();
                            }
                            None => {
                                prop_assert_eq!(st, ArithStatus::NonNumeric, "{}", branch)
                            }
                        }
                    }
                }
            }
            Cmd::Append(k, v) => {
                let st = cache.append(0, &key_name(*k), v);
                match model.get_mut(k) {
                    Some(stored) => {
                        prop_assert_eq!(st, StoreStatus::Stored, "{} append", branch);
                        stored.extend_from_slice(v);
                    }
                    None => prop_assert_eq!(st, StoreStatus::NotStored, "{} append", branch),
                }
            }
            Cmd::CasFresh(k, v) => {
                // CAS with the current id must succeed iff present.
                match cache.get(0, &key_name(*k)) {
                    Some(cur) => {
                        let st = cache.cas(0, &key_name(*k), v, 0, 0, cur.cas);
                        prop_assert_eq!(st, StoreStatus::Stored, "{} cas-fresh", branch);
                        model.insert(*k, v.clone());
                    }
                    None => {
                        let st = cache.cas(0, &key_name(*k), v, 0, 0, 1);
                        prop_assert_eq!(st, StoreStatus::NotFound, "{} cas-missing", branch);
                    }
                }
            }
            Cmd::CasStale(k, v) => {
                if model.contains_key(k) {
                    // A CAS id from the future is always stale.
                    let st = cache.cas(0, &key_name(*k), v, 0, 0, u64::MAX);
                    prop_assert_eq!(st, StoreStatus::Exists, "{} cas-stale", branch);
                }
            }
        }
    }
    // Final sweep: every model entry is retrievable, nothing extra lives.
    for (k, v) in &model {
        let got = cache.get(0, &key_name(*k)).map(|g| g.data);
        prop_assert_eq!(got.as_ref(), Some(v), "{} final sweep key {}", branch, k);
    }
    prop_assert_eq!(
        cache.stats().global.curr_items,
        model.len() as u64,
        "{} phantom items",
        branch
    );
    Ok(())
}

proptest! {
    #![cases(24)]

    #[test]
    fn baseline_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::Baseline, &cmds)?;
    }

    #[test]
    fn ip_plain_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::Ip(Stage::Plain), &cmds)?;
    }

    #[test]
    fn it_plain_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::It(Stage::Plain), &cmds)?;
    }

    #[test]
    fn ip_max_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::Ip(Stage::Max), &cmds)?;
    }

    #[test]
    fn it_lib_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::It(Stage::Lib), &cmds)?;
    }

    #[test]
    fn ip_oncommit_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::Ip(Stage::OnCommit), &cmds)?;
    }

    #[test]
    fn it_nolock_matches_model(cmds in gen::vec(cmd_gen(), 1..60)) {
        check_branch(Branch::ItNoLock, &cmds)?;
    }
}

mod binary_wire {
    use mcache::proto::binary::{Opcode, Request};
    use testkit::prop::gen;
    use testkit::{prop_assert, prop_assert_eq, proptest};

    // `Opcode` is foreign to this crate, so it cannot implement testkit's
    // `Shrink`; generate an index and map it at use time instead.
    const OPCODES: [Opcode; 9] = [
        Opcode::Get,
        Opcode::Set,
        Opcode::Add,
        Opcode::Replace,
        Opcode::Delete,
        Opcode::Increment,
        Opcode::Decrement,
        Opcode::Noop,
        Opcode::Version,
    ];

    proptest! {
        #![cases(128)]

        /// decode(encode(req)) == req for arbitrary well-formed requests.
        #[test]
        fn wire_roundtrip(
            op_idx in gen::range(0usize..9),
            opaque in gen::any_u32(),
            cas in gen::any_u64(),
            key in gen::bytes(0..64),
            value in gen::bytes(0..128),
            extra in gen::any_u64(),
        ) {
            let opcode = OPCODES[op_idx];
            let req = Request { opcode, opaque, cas, key, value, extra };
            let wire = req.encode();
            let back = Request::decode(&wire).expect("self-encoded frame must decode");
            prop_assert_eq!(back.opcode, req.opcode);
            prop_assert_eq!(back.opaque, req.opaque);
            prop_assert_eq!(back.cas, req.cas);
            prop_assert_eq!(back.key, req.key);
            prop_assert_eq!(back.value, req.value);
            // extras only travel on opcodes that carry them
            match req.opcode {
                Opcode::Set | Opcode::Add | Opcode::Replace
                | Opcode::Increment | Opcode::Decrement => {
                    prop_assert_eq!(back.extra, req.extra)
                }
                _ => prop_assert_eq!(back.extra, 0),
            }
        }

        /// Truncated frames never decode (no panics, no partial reads).
        #[test]
        fn truncated_frames_rejected(
            key in gen::bytes(1..32),
            cut in gen::index(),
        ) {
            let req = Request {
                opcode: Opcode::Set,
                opaque: 7,
                cas: 0,
                key,
                value: b"vvv".to_vec(),
                extra: 1,
            };
            let wire = req.encode();
            let cut_at = cut.index(wire.len().saturating_sub(1));
            prop_assert!(Request::decode(&wire[..cut_at]).is_none());
        }
    }
}
