//! Focused tests for the paper's Figure 1: the two treatments of item
//! locks, and the eviction path's `tm_trylock` + save-for-later behavior.

use mcache::ctx::Ctx;
use mcache::hashes::jenkins_hash;
use mcache::{Branch, ItemMode, McCache, McConfig, SlabConfig, Stage, StoreStatus};

fn tiny(branch: Branch) -> mcache::McHandle {
    McCache::start(McConfig {
        branch,
        workers: 2,
        slab: SlabConfig {
            // One page only: eviction from the very first overflow.
            mem_limit: 32 << 10,
            page_size: 32 << 10,
            chunk_min: 96,
            growth_factor: 3.0,
        },
        hash_power: 6,
        hash_power_max: 7,
        item_lock_power: 4,
        maintenance: false,
        ..Default::default()
    })
}

/// Count how many of the original keys survive.
fn survivors(c: &mcache::McCache, keys: &[String]) -> usize {
    keys.iter().filter(|k| c.get(0, k.as_bytes()).is_some()).count()
}

#[test]
fn eviction_skips_locked_victims_ip() {
    // Figure 1a: while an item's lock is held (here: by an imagined
    // concurrent worker), the evictor's trylock fails and it moves on to
    // the next-oldest victim instead of blocking.
    let handle = tiny(Branch::Ip(Stage::OnCommit));
    let c = handle.cache().clone();
    // Fill the single page.
    let mut keys = Vec::new();
    let mut i = 0;
    loop {
        let key = format!("fill-{i}");
        match c.set(0, key.as_bytes(), &[0u8; 1500], 0, 0) {
            StoreStatus::Stored => keys.push(key),
            other => panic!("unexpected {other:?}"),
        }
        i += 1;
        if c.stats().global.evictions > 0 {
            break; // first eviction observed: the pool is saturated
        }
        assert!(i < 1000, "pool never saturated");
    }
    // The oldest survivor is the next eviction victim. Hold its stripe
    // lock the way a concurrent worker would.
    let oldest = keys
        .iter()
        .find(|k| c.get(0, k.as_bytes()).is_some())
        .expect("someone survived")
        .clone();
    let stripe = {
        // Derive the stripe exactly as the cache does.
        let hv = jenkins_hash(oldest.as_bytes(), 0);
        (hv & 0xF) as usize // item_lock_power = 4
    };
    // Simulate the concurrent holder by setting the transactional boolean.
    let core = &handle.cache().clone();
    let _ = core;
    // Reach the boolean through the public-ish surface: the policy says
    // IP uses transactional booleans, which the cache exposes for tests
    // via the lock-report only — so instead hold it with the documented
    // API: an in-flight get from another worker cannot be frozen, so this
    // test asserts the *behavioral* property instead: eviction succeeds
    // even when some victims are busy, by running concurrent gets that
    // keep random stripes locked while a writer floods.
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let c2 = c.clone();
        let keys2 = keys.clone();
        let stop = &stop;
        s.spawn(move || {
            // Reader: constantly holds item stripes (via IP lock
            // mini-transactions inside get).
            let mut j = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let k = &keys2[j % keys2.len()];
                c2.get(1, k.as_bytes());
                j += 1;
            }
        });
        // Writer floods: every set needs an eviction now.
        for i in 1000..1200 {
            let key = format!("flood-{i}");
            assert_eq!(
                c.set(0, key.as_bytes(), &[0u8; 1500], 0, 0),
                StoreStatus::Stored,
                "eviction must make progress despite busy victims"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert!(c.stats().global.evictions >= 200);
    let _ = (stripe, survivors(&c, &keys));
}

#[test]
fn eviction_makes_progress_it() {
    // Figure 1b: no item locks at all; eviction conflicts are settled by
    // the STM. Same flood, transactional branch.
    let handle = tiny(Branch::It(Stage::OnCommit));
    let c = handle.cache().clone();
    for i in 0..300 {
        let key = format!("it-{i}");
        assert_eq!(
            c.set(0, key.as_bytes(), &[0u8; 1500], 0, 0),
            StoreStatus::Stored
        );
    }
    assert!(c.stats().global.evictions > 0);
    // Most recent keys are resident; ancient ones evicted.
    assert!(c.get(0, b"it-299").is_some());
    assert!(c.get(0, b"it-0").is_none(), "LRU order violated");
}

#[test]
fn item_mode_matrix_is_what_the_branch_says() {
    assert_eq!(Branch::Baseline.policy().item_mode, ItemMode::Lock);
    assert_eq!(Branch::Ip(Stage::Plain).policy().item_mode, ItemMode::Privatize);
    assert_eq!(
        Branch::It(Stage::Plain).policy().item_mode,
        ItemMode::Transactional
    );
    assert_eq!(Branch::IpNoLock.policy().item_mode, ItemMode::Privatize);
}

#[test]
fn direct_ctx_is_default_for_lock_branches() {
    // A lock-branch cache performs zero transactions ever, even under a
    // mixed workload with evictions and maintenance signals.
    let handle = tiny(Branch::Baseline);
    let c = handle.cache().clone();
    for i in 0..300 {
        let key = format!("lk-{i}");
        c.set(0, key.as_bytes(), &[0u8; 1500], 0, 0);
        if i % 3 == 0 {
            c.get(0, key.as_bytes());
        }
    }
    assert!(c.stats().global.evictions > 0);
    assert_eq!(c.tm_stats().begins, 0, "lock branches must never transact");
    // Direct ctx sanity.
    let mut ctx = Ctx::Direct;
    assert!(!ctx.in_transaction());
    assert_eq!(ctx.unsafe_op(|| 1 + 1).unwrap(), 2);
}
