//! Maintenance-thread behavior: hash-table expansion and slab rebalancing
//! under live traffic, in both condition-synchronization styles (§3.2) and
//! the transactional branches.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mcache::{Branch, McCache, McConfig, McHandle, SlabConfig, Stage};

fn small(branch: Branch, hash_power: u32, hash_power_max: u32, mem: usize) -> McHandle {
    McCache::start(McConfig {
        branch,
        workers: 4,
        slab: SlabConfig {
            mem_limit: mem,
            page_size: 32 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power,
        hash_power_max,
        item_lock_power: 5,
        ..Default::default()
    })
}

fn wait_until(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    pred()
}

/// Expansion completes while workers keep hammering the table, and no key
/// is lost — for each condition-synchronization style.
fn expansion_under_load(branch: Branch) {
    let handle = small(branch, 5, 9, 8 << 20);
    let c = handle.cache().clone();
    // Fill well past the load factor from several threads.
    std::thread::scope(|s| {
        for w in 0..4usize {
            let c = c.clone();
            s.spawn(move || {
                for i in 0..150 {
                    let key = format!("load-{w}-{i}");
                    assert_eq!(
                        c.set(w, key.as_bytes(), b"payload-bytes", 0, 0),
                        mcache::StoreStatus::Stored
                    );
                }
            });
        }
    });
    // The maintenance thread must finish every pending migration.
    assert!(
        wait_until(Duration::from_secs(5), || c.stats().global.expansions >= 1),
        "{branch}: expansion never completed: {:?}",
        c.stats().global
    );
    // Nothing lost.
    for w in 0..4usize {
        for i in 0..150 {
            let key = format!("load-{w}-{i}");
            assert!(
                c.get(0, key.as_bytes()).is_some(),
                "{branch}: lost {key} across expansion"
            );
        }
    }
}

#[test]
fn expansion_under_load_baseline_condvars() {
    expansion_under_load(Branch::Baseline);
}

#[test]
fn expansion_under_load_semaphores() {
    expansion_under_load(Branch::Semaphore);
}

#[test]
fn expansion_under_load_transactional() {
    expansion_under_load(Branch::It(Stage::OnCommit));
}

#[test]
fn expansion_under_load_nolock() {
    expansion_under_load(Branch::IpNoLock);
}

/// The slab rebalancer moves a free page from a rich class to a needy one
/// when eviction pressure raises the signal.
fn rebalance_under_pressure(branch: Branch) {
    let handle = small(branch, 8, 9, 512 << 10);
    let c = handle.cache().clone();
    // Phase 1: fill with small values (small class takes the whole pool),
    // then delete them all (the class is now rich in free pages).
    for i in 0..800 {
        let key = format!("small-{i}");
        c.set(0, key.as_bytes(), &[1u8; 64], 0, 0);
    }
    for i in 0..800 {
        let key = format!("small-{i}");
        c.delete(0, key.as_bytes());
    }
    // Phase 2: demand a big class; the pool is exhausted so eviction and
    // the rebalance signal kick in.
    for i in 0..200 {
        let key = format!("big-{i}");
        let st = c.set(0, key.as_bytes(), &[2u8; 4000], 0, 0);
        let _ = st; // some may be OutOfMemory until the rebalancer helps
        std::thread::yield_now();
    }
    let moved = wait_until(Duration::from_secs(5), || {
        c.stats().global.rebalances >= 1 || {
            // Keep the pressure on while waiting.
            let st = c.set(0, b"big-extra", &[2u8; 4000], 0, 0);
            let _ = st;
            false
        }
    });
    assert!(
        moved,
        "{branch}: rebalancer never moved a page: {:?}",
        c.stats().global
    );
    // After rebalancing, big stores succeed.
    assert!(
        wait_until(Duration::from_secs(2), || c
            .set(0, b"big-final", &[3u8; 4000], 0, 0)
            == mcache::StoreStatus::Stored),
        "{branch}: big store still failing after rebalance"
    );
}

#[test]
fn rebalance_under_pressure_baseline() {
    rebalance_under_pressure(Branch::Baseline);
}

#[test]
fn rebalance_under_pressure_transactional() {
    rebalance_under_pressure(Branch::It(Stage::OnCommit));
}

#[test]
fn maintenance_threads_shut_down_cleanly() {
    // Handle drop must join both maintenance threads promptly even when
    // nothing signaled them.
    let started = Instant::now();
    for branch in [Branch::Baseline, Branch::Semaphore, Branch::ItNoLock] {
        let handle = small(branch, 6, 8, 1 << 20);
        handle.set(0, b"k", b"v", 0, 0);
        drop(handle);
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took too long (maintenance threads stuck)"
    );
}

/// A panic inside either maintenance loop must not leave the cache without
/// its maintenance thread: the supervisor counts the panic and re-enters
/// the loop, and a hash expansion driven afterwards still completes.
#[test]
fn maintenance_threads_respawn_after_panic() {
    let handle = small(Branch::Semaphore, 5, 9, 8 << 20);
    let c = handle.cache().clone();
    assert_eq!(c.maintenance_panics(), 0);
    // Trip both loops; they wake on their poll timeouts (20/25 ms) even
    // without a signal, hit the trap, and get respawned.
    c.trip_assoc_panic();
    c.trip_slab_panic();
    assert!(
        wait_until(Duration::from_secs(5), || c.maintenance_panics() >= 2),
        "supervisor caught {} panics, expected 2",
        c.maintenance_panics()
    );
    // The respawned assoc thread still drives a real expansion to
    // completion under load.
    std::thread::scope(|s| {
        for w in 0..4usize {
            let c = c.clone();
            s.spawn(move || {
                for i in 0..150 {
                    let key = format!("respawn-{w}-{i}");
                    assert_eq!(
                        c.set(w, key.as_bytes(), b"payload-bytes", 0, 0),
                        mcache::StoreStatus::Stored
                    );
                }
            });
        }
    });
    assert!(
        wait_until(Duration::from_secs(5), || c.stats().global.expansions >= 1),
        "expansion never completed after respawn: {:?}",
        c.stats().global
    );
    assert!(
        c.get(0, b"respawn-0-0").is_some(),
        "data lost across the panicked maintenance wakeups"
    );
    assert_eq!(c.stats().maintenance_panics, 2);
}

#[test]
fn concurrent_expansion_and_deletes() {
    // Deleting while migrating must neither lose unrelated keys nor leave
    // phantoms.
    let handle = small(Branch::Ip(Stage::OnCommit), 5, 9, 8 << 20);
    let c = handle.cache().clone();
    let keep: Vec<String> = (0..200).map(|i| format!("keep-{i}")).collect();
    let churn: Vec<String> = (0..200).map(|i| format!("churn-{i}")).collect();
    for k in keep.iter().chain(churn.iter()) {
        c.set(0, k.as_bytes(), b"v", 0, 0);
    }
    std::thread::scope(|s| {
        let c1 = c.clone();
        let churn2 = churn.clone();
        s.spawn(move || {
            for k in &churn2 {
                c1.delete(1, k.as_bytes());
            }
        });
        let c2 = c.clone();
        s.spawn(move || {
            for i in 0..300 {
                // More inserts to drive expansion during the deletes.
                let key = format!("drive-{i}");
                c2.set(2, key.as_bytes(), b"v", 0, 0);
            }
        });
    });
    std::thread::sleep(Duration::from_millis(200));
    for k in &keep {
        assert!(c.get(0, k.as_bytes()).is_some(), "lost {k}");
    }
    for k in &churn {
        assert!(c.get(0, k.as_bytes()).is_none(), "phantom {k}");
    }
}
