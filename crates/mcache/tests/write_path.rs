//! Zero-allocation guard for the magazine write fast lane.
//!
//! ISSUE 5's acceptance criterion: once a worker's slab magazine is warm,
//! a steady-state overwrite SET must perform **no heap allocation at
//! all** — not in the cache layer (magazine pop, item init, hash relink),
//! not in tmstd (the snprintf clones render into stack buffers), and not
//! in the STM (log arenas are reused across transactions). A counting
//! global allocator proves it the hard way.

use mcache::{Branch, McCache, McConfig, SlabConfig, Stage, StoreStatus};
use testkit::alloc::thread_allocs;

#[global_allocator]
static ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn config() -> McConfig {
    McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        slab: SlabConfig {
            mem_limit: 4 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 8,
        hash_power_max: 8, // no expansion mid-measurement
        item_lock_power: 6,
        magazine: 32,
        lru_bump_every: 0,
        ..Default::default()
    }
}

#[test]
fn warm_magazine_sets_never_allocate() {
    let c = McCache::start(config());

    // Warm everything the hot path touches: the worker magazine (one
    // refill), the reusable STM log arenas, and the stats shards. An
    // overwrite SET recycles its own chunk, so steady state never goes
    // back to the shared freelist.
    let mut value = [7u8; 64];
    for i in 0..300u32 {
        value[0] = i as u8;
        assert_eq!(c.set(0, b"hot-key", &value, 0, 0), StoreStatus::Stored);
    }

    let before = thread_allocs();
    for i in 0..100u32 {
        value[0] = i as u8;
        let st = c.set(0, b"hot-key", &value, 0, 0);
        debug_assert_eq!(st, StoreStatus::Stored);
    }
    let after = thread_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state SET on a warm magazine must be allocation-free"
    );

    // The values really landed.
    let v = c.get(0, b"hot-key").unwrap();
    assert_eq!(v.data[0], 99);
    assert!(v.data[1..].iter().all(|&b| b == 7));
}

#[test]
fn plain_transactional_sets_do_allocate_without_magazines() {
    // Control arm: with the magazine off, the same workload goes through
    // the 3-transaction freelist path, which is not allocation-free.
    // This keeps the zero-alloc test honest — if the counter were broken,
    // both tests would pass vacuously.
    let mut cfg = config();
    cfg.magazine = 0;
    let c = McCache::start(cfg);
    let mut value = [7u8; 64];
    for i in 0..300u32 {
        value[0] = i as u8;
        assert_eq!(c.set(0, b"hot-key", &value, 0, 0), StoreStatus::Stored);
    }
    let before = thread_allocs();
    for i in 0..100u32 {
        value[0] = i as u8;
        c.set(0, b"hot-key", &value, 0, 0);
    }
    // GETs allocate their return Vec either way; make sure the counter
    // itself moves on this thread.
    let _ = c.get(0, b"hot-key");
    assert!(thread_allocs() > before, "counting allocator must be live");
}
