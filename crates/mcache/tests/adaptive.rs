//! Adaptive-runtime integration tests (DESIGN.md §15): the controller's
//! epoch tick is driven synchronously via `adapt_tick`, so every test is
//! deterministic — no timer thread, no sleeps. Covers the four feedback
//! arms end to end through the real cache paths: algorithm/CM switching
//! on phase shifts, LRU-bump cadence stretching, magazine autosizing,
//! and hot-key privatization (including every invalidation edge the
//! publication protocol has to fence).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mcache::{ArithStatus, Branch, McCache, McConfig, SlabConfig, Stage, StoreStatus};
use tm::Algorithm;

fn start(hot_slots: usize, magazine: usize, lru_bump_every: u64) -> mcache::McHandle {
    McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 7,
        hash_power_max: 10,
        item_lock_power: 4,
        maintenance: false,
        lru_bump_every,
        magazine,
        hot_slots,
        // GETs ride the pure-read fast lane (§5), so the controller can
        // actually see a read-dominated phase as read-only commits.
        refcount_elision: true,
        ..Default::default()
    })
}

/// Read-mostly phase → NOrec; write-storm phase → eager. The controller
/// must see both transitions from real cache traffic, and the read
/// phase must also stretch the LRU-bump cadence (×8) while the write
/// phase restores it.
#[test]
fn controller_tracks_phase_shifts() {
    let cache = start(0, 0, 16);
    assert_eq!(cache.tm_config().0, Algorithm::Eager);
    cache.adapt_tick(); // absorb startup transactions as the baseline

    // Phase 1: read-mostly. A handful of sets, then a flood of gets.
    for k in 0..8u32 {
        let key = format!("phase-{k}");
        assert_eq!(
            cache.set(0, key.as_bytes(), b"v", 0, 0),
            StoreStatus::Stored
        );
    }
    for i in 0..4000u32 {
        let key = format!("phase-{}", i % 8);
        assert!(cache.get(0, key.as_bytes()).is_some());
    }
    cache.adapt_tick();
    assert_eq!(
        cache.tm_config().0,
        Algorithm::Norec,
        "read-dominated phase must switch to NOrec"
    );
    let s = cache.stats();
    assert!(s.adapt_switches >= 1, "switch must be counted");
    assert_eq!(s.lru_bump_every, 16 * 8, "read phase stretches the cadence");
    assert!(s.adapt_ro_tunes >= 1);

    // Phase 2: write storm.
    for i in 0..2000u32 {
        let key = format!("phase-{}", i % 8);
        assert_eq!(
            cache.set(0, key.as_bytes(), b"w", 0, 0),
            StoreStatus::Stored
        );
    }
    cache.adapt_tick();
    assert_eq!(
        cache.tm_config().0,
        Algorithm::Norec,
        "an uncontended write storm commits through the seqlock without \
         aborts, so the controller must not pay a quiesce to leave NOrec \
         (tm::adapt::WRITE_ABORT_MIN; the abort-pressure exit is covered \
         by the policy unit tests, where aborts can be synthesized)"
    );
    assert_eq!(
        cache.stats().lru_bump_every,
        16,
        "write phase restores the configured cadence"
    );
    cache.shutdown();
}

/// An epoch without enough commits must never trigger a switch, no
/// matter how skewed its ratios look.
#[test]
fn idle_epochs_never_switch() {
    let cache = start(0, 0, 0);
    cache.adapt_tick();
    let before = cache.tm_config();
    for _ in 0..8 {
        // Far below MIN_EPOCH_COMMITS worth of traffic per tick.
        cache.set(0, b"idle", b"v", 0, 0);
        cache.get(0, b"idle");
        cache.adapt_tick();
    }
    assert_eq!(cache.tm_config(), before);
    assert_eq!(cache.stats().adapt_switches, 0);
    cache.shutdown();
}

/// NoLock branches have no serial lock to quiesce on: the controller
/// must leave the algorithm alone (switch_config refuses) rather than
/// tear down serializability.
#[test]
fn nolock_branch_refuses_switches() {
    let cache = McCache::start(McConfig {
        branch: Branch::ItNoLock,
        workers: 1,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 7,
        hash_power_max: 10,
        item_lock_power: 4,
        maintenance: false,
        ..Default::default()
    });
    cache.adapt_tick();
    cache.set(0, b"k", b"v", 0, 0);
    for _ in 0..4000 {
        cache.get(0, b"k");
    }
    cache.adapt_tick();
    assert_eq!(cache.tm_config().0, Algorithm::Eager, "no serial lock, no switch");
    assert_eq!(cache.stats().adapt_switches, 0);
    cache.shutdown();
}

/// Overwrite-heavy traffic recycles freed chunks through the magazine
/// without ever refilling it again: churn collapses and the controller
/// must shrink an oversized magazine toward the floor.
#[test]
fn magazine_shrinks_when_churn_collapses() {
    let cache = start(0, 512, 0);
    assert_eq!(cache.stats().magazine_cap, 512);
    cache.adapt_tick();
    for round in 0..3 {
        for i in 0..2000u32 {
            let key = format!("mag-{}", i % 4);
            assert_eq!(
                cache.set(0, key.as_bytes(), b"xxxxxxxx", 0, 0),
                StoreStatus::Stored,
                "round {round}"
            );
        }
        cache.adapt_tick();
    }
    let s = cache.stats();
    assert!(
        s.magazine_cap < 512,
        "cap must shrink from 512, got {}",
        s.magazine_cap
    );
    assert!(s.adapt_mag_resizes >= 1);
    cache.shutdown();
}

/// The hot-key fast path must be invisible: read-your-writes across
/// set, CAS-bearing re-set, delete, re-add, incr (Unknown fence), touch,
/// and flush_all (generation bump). Hits must actually come from the
/// privatized set (hot_hits advances).
#[test]
fn hot_path_read_your_writes() {
    let cache = start(4, 0, 0);
    assert_eq!(cache.set(0, b"hot-a", b"alpha", 7, 0), StoreStatus::Stored);
    cache.hot_install_keys(&[b"hot-a", b"hot-n"]);
    assert_eq!(cache.stats().hot_armed, 2);

    // Populate via the write path, then read back — every read must see
    // the latest committed value, whether served privatized or not.
    assert_eq!(cache.set(0, b"hot-a", b"beta", 7, 0), StoreStatus::Stored);
    for _ in 0..200 {
        let g = cache.get(0, b"hot-a").expect("present");
        assert_eq!(g.data, b"beta");
        assert_eq!(g.flags, 7);
    }
    let s = cache.stats();
    assert!(s.hot_hits > 0, "reads must be served from the hot set");
    assert!(s.hot_installs > 0);

    // Overwrite: the very next read must see the new value.
    assert_eq!(cache.set(0, b"hot-a", b"gamma", 9, 0), StoreStatus::Stored);
    for _ in 0..100 {
        let g = cache.get(0, b"hot-a").expect("present");
        assert_eq!(g.data, b"gamma");
        assert_eq!(g.flags, 9);
    }

    // Delete: negative caching must not resurrect the old value.
    assert!(cache.delete(0, b"hot-a"));
    for _ in 0..100 {
        assert!(cache.get(0, b"hot-a").is_none(), "deleted key must stay gone");
    }
    assert_eq!(cache.set(0, b"hot-a", b"delta", 0, 0), StoreStatus::Stored);
    for _ in 0..100 {
        assert_eq!(cache.get(0, b"hot-a").expect("re-added").data, b"delta");
    }

    // Arithmetic publishes an Unknown fence, not a value: reads fall
    // through to the real path and must see every increment.
    assert_eq!(cache.set(0, b"hot-n", b"41", 0, 0), StoreStatus::Stored);
    assert_eq!(cache.arith(0, b"hot-n", 1, true), ArithStatus::Ok(42));
    for _ in 0..50 {
        assert_eq!(cache.get(0, b"hot-n").expect("numeric").data, b"42");
    }
    assert_eq!(cache.arith(0, b"hot-n", 8, true), ArithStatus::Ok(50));
    assert_eq!(cache.get(0, b"hot-n").expect("numeric").data, b"50");

    // Touch disturbs the entry (expiry changed out from under it).
    assert!(cache.touch(0, b"hot-n", 0));
    assert_eq!(cache.get(0, b"hot-n").expect("touched").data, b"50");

    // flush_all bumps the generation: every privatized entry is fenced.
    cache.flush_all(0);
    for _ in 0..50 {
        assert!(cache.get(0, b"hot-a").is_none(), "flushed key must be gone");
        assert!(cache.get(0, b"hot-n").is_none(), "flushed key must be gone");
    }
    let s = cache.stats();
    assert!(s.hot_invalidations >= 1, "flush must bump the generation");
    cache.shutdown();
}

/// CAS tokens served from the hot set must be the real ones: a gets/cas
/// round-trip through a privatized read has to succeed, and a stale
/// token has to fail.
#[test]
fn hot_path_serves_real_cas_tokens() {
    let cache = start(2, 0, 0);
    cache.hot_install_keys(&[b"hot-cas"]);
    assert_eq!(cache.set(0, b"hot-cas", b"one", 0, 0), StoreStatus::Stored);
    // Warm the privatized entry, then read the CAS from it.
    for _ in 0..8 {
        cache.get(0, b"hot-cas");
    }
    let g = cache.get(0, b"hot-cas").expect("present");
    assert_eq!(
        cache.cas(0, b"hot-cas", b"two", 0, 0, g.cas),
        StoreStatus::Stored,
        "privatized CAS token must be honored"
    );
    assert_eq!(
        cache.cas(0, b"hot-cas", b"three", 0, 0, g.cas),
        StoreStatus::Exists,
        "stale CAS token must be rejected"
    );
    assert_eq!(cache.get(0, b"hot-cas").expect("present").data, b"two");
    cache.shutdown();
}

/// The controller discovers hot keys from the per-worker sketches alone:
/// skewed traffic must arm the heavy hitter without any manual install.
#[test]
fn controller_arms_sketched_hot_keys() {
    let cache = start(2, 0, 0);
    cache.adapt_tick();
    assert_eq!(cache.set(0, b"heavy", b"H", 0, 0), StoreStatus::Stored);
    assert_eq!(cache.set(0, b"light", b"L", 0, 0), StoreStatus::Stored);
    for i in 0..3000u32 {
        cache.get(0, b"heavy");
        if i % 100 == 0 {
            cache.get(0, b"light");
        }
    }
    cache.adapt_tick();
    let s = cache.stats();
    assert!(s.hot_armed >= 1, "sketch must arm the heavy hitter");
    // The privatized path must now actually serve it.
    let before = s.hot_hits;
    for _ in 0..200 {
        assert_eq!(cache.get(0, b"heavy").expect("present").data, b"H");
    }
    assert!(cache.stats().hot_hits > before);
    cache.shutdown();
}

/// Concurrency smoke: writers and readers hammer tagged keys while the
/// controller ticks (switching algorithms and retuning the hot set
/// underneath them). Readers must never observe a value that was never
/// current for their key.
#[test]
fn hot_path_concurrent_smoke() {
    let cache = start(4, 64, 8);
    let stop = Arc::new(AtomicBool::new(false));
    const KEYS: usize = 3;
    for k in 0..KEYS {
        let key = format!("smoke-{k}");
        assert_eq!(
            cache.set(0, key.as_bytes(), b"gen-0000", 0, 0),
            StoreStatus::Stored
        );
    }
    cache.hot_install_keys(&[b"smoke-0", b"smoke-1", b"smoke-2"]);

    let writer = {
        let cache = Arc::clone(cache.cache());
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut gen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                gen += 1;
                let val = format!("gen-{gen:04}");
                for k in 0..KEYS {
                    let key = format!("smoke-{k}");
                    cache.set(0, key.as_bytes(), val.as_bytes(), 0, 0);
                }
            }
            gen
        })
    };
    let reader = {
        let cache = Arc::clone(cache.cache());
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut reads = 0u64;
            let mut last = vec![0u64; KEYS];
            while !stop.load(Ordering::Relaxed) {
                for (k, floor) in last.iter_mut().enumerate() {
                    let key = format!("smoke-{k}");
                    let g = cache.get(1, key.as_bytes()).expect("never deleted");
                    let text = std::str::from_utf8(&g.data).expect("utf8");
                    let gen: u64 = text.strip_prefix("gen-").expect("shape").parse().expect("num");
                    // Per-key monotonicity from one reader: a privatized
                    // hit may lag the in-flight write by at most the
                    // publication race, but must never go backwards.
                    assert!(
                        gen >= *floor,
                        "key {k} went backwards: saw gen {gen} after {floor}"
                    );
                    *floor = gen;
                    reads += 1;
                }
            }
            reads
        })
    };
    for _ in 0..60 {
        cache.adapt_tick();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, Ordering::SeqCst);
    let gens = writer.join().expect("writer");
    let reads = reader.join().expect("reader");
    assert!(gens > 0 && reads > 0);
    cache.shutdown();
}
