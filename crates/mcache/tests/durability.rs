//! Warm-restart conformance: a cache started on a redo-log directory
//! must replay exactly what the previous incarnation committed — across
//! branch families, with memcached's expiry / `flush_all` / CAS-uniqueness
//! semantics intact.

use std::path::PathBuf;
use std::time::Duration;

use mcache::dur::{DurLog, Record};
use mcache::{Branch, DurFsync, McCache, McConfig, McHandle, SlabConfig, Stage};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mcache-durtest-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn config(branch: Branch, dir: &PathBuf) -> McConfig {
    McConfig {
        branch,
        workers: 2,
        slab: SlabConfig {
            mem_limit: 8 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.25,
        },
        hash_power: 8,
        hash_power_max: 10,
        maintenance: true,
        dur_path: Some(dir.clone()),
        dur_fsync: DurFsync::Always,
        ..Default::default()
    }
}

fn start(branch: Branch, dir: &PathBuf) -> McHandle {
    McCache::start(config(branch, dir))
}

const BRANCHES: [Branch; 3] = [
    Branch::Baseline,
    Branch::Ip(Stage::OnCommit),
    Branch::It(Stage::OnCommit),
];

#[test]
fn warm_restart_replays_all_mutation_kinds() {
    for branch in BRANCHES {
        let dir = tmpdir(&format!("all-{branch}"));
        {
            let c = start(branch, &dir);
            assert_eq!(c.dur_stats().unwrap().recovered_items, 0);
            c.set(0, b"keep", b"v1", 7, 0);
            c.set(0, b"gone", b"x", 0, 0);
            c.set(0, b"num", b"10", 0, 0);
            assert!(c.delete(0, b"gone"));
            assert_eq!(c.arith(0, b"num", 5, true), mcache::ArithStatus::Ok(15));
            c.set(0, b"keep", b"v2", 7, 0); // overwrite: replay keeps last
        } // drop seals the log
        let c = start(branch, &dir);
        let d = c.dur_stats().unwrap();
        assert_eq!(d.torn_records_dropped, 0, "{branch}: sealed log has no torn tail");
        assert_eq!(d.recovered_items, 2, "{branch}: {d:?}");
        let keep = c.get(0, b"keep").expect("keep survives");
        assert_eq!(keep.data, b"v2", "{branch}: last write wins");
        assert_eq!(keep.flags, 7, "{branch}: flags replayed");
        assert_eq!(c.get(0, b"gone"), None, "{branch}: delete replayed");
        assert_eq!(
            c.get(0, b"num").unwrap().data,
            b"15",
            "{branch}: arith post-image replayed"
        );
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn cas_ids_stay_unique_across_restart() {
    let dir = tmpdir("casfloor");
    let old_cas = {
        let c = start(Branch::It(Stage::OnCommit), &dir);
        for i in 0..50u32 {
            c.set(0, format!("k{i}").as_bytes(), b"v", 0, 0);
        }
        c.get(0, b"k49").unwrap().cas
    };
    let c = start(Branch::It(Stage::OnCommit), &dir);
    // A replayed item's id must already clear the floor...
    assert!(
        c.get(0, b"k49").unwrap().cas > old_cas,
        "replayed items re-link above the recovered floor"
    );
    // ...and so must the first brand-new store.
    c.set(0, b"fresh", b"v", 0, 0);
    assert!(
        c.get(0, b"fresh").unwrap().cas > old_cas,
        "post-restart CAS ids are strictly above every pre-crash id"
    );
    drop(c);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn expired_at_replay_entries_are_skipped() {
    // Craft the log directly: one live entry and one whose absolute
    // expiry is already in the past — no sleeping in the test.
    let dir = tmpdir("expiry");
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs();
    {
        let log = DurLog::open(&dir, DurFsync::Always, 4 << 20, 0).unwrap();
        log.append(
            1,
            &Record::Set {
                cas: 1,
                flags: 0,
                abs_exp: now.saturating_sub(60),
                stored_unix: now.saturating_sub(120),
                key: b"stale".to_vec(),
                value: b"dead".to_vec(),
            },
        );
        log.append(
            2,
            &Record::Set {
                cas: 2,
                flags: 0,
                abs_exp: now + 3600,
                stored_unix: now,
                key: b"live".to_vec(),
                value: b"ok".to_vec(),
            },
        );
        log.seal();
    }
    let c = start(Branch::It(Stage::OnCommit), &dir);
    assert_eq!(c.dur_stats().unwrap().recovered_items, 1);
    assert_eq!(c.get(0, b"stale"), None, "expired entry must not be replayed");
    assert_eq!(c.get(0, b"live").unwrap().data, b"ok");
    drop(c);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn touch_extends_expiry_across_restart() {
    let dir = tmpdir("touch");
    {
        let c = start(Branch::It(Stage::OnCommit), &dir);
        c.set(0, b"k", b"v", 0, 1); // expires almost immediately
        assert!(c.touch(0, b"k", 0)); // ...rescued: never expires
    }
    let c = start(Branch::It(Stage::OnCommit), &dir);
    assert_eq!(
        c.get(0, b"k").map(|g| g.data),
        Some(b"v".to_vec()),
        "replay must honor the touched expiry, not the original"
    );
    drop(c);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flush_all_is_not_resurrected_by_replay() {
    for branch in [Branch::Baseline, Branch::It(Stage::OnCommit)] {
        let dir = tmpdir(&format!("flush-{branch}"));
        {
            let c = start(branch, &dir);
            c.set(0, b"pre", b"x", 0, 0);
            c.flush_all(0);
            // Cross the second boundary so the post-flush store is live by
            // memcached's own `last > watermark` rule (a same-second store
            // dies in the live cache too — replay must agree).
            std::thread::sleep(Duration::from_millis(1100));
            c.set(0, b"post", b"y", 0, 0);
            assert_eq!(c.get(0, b"pre"), None, "{branch}: flushed in live cache");
        }
        let c = start(branch, &dir);
        assert_eq!(c.get(0, b"pre"), None, "{branch}: flush_all replayed");
        assert_eq!(
            c.get(0, b"post").map(|g| g.data),
            Some(b"y".to_vec()),
            "{branch}: post-flush store survives"
        );
        assert_eq!(c.dur_stats().unwrap().recovered_items, 1, "{branch}");
        drop(c);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn double_restart_is_idempotent() {
    let dir = tmpdir("idem");
    {
        let c = start(Branch::It(Stage::OnCommit), &dir);
        for i in 0..20u32 {
            c.set(0, format!("k{i}").as_bytes(), format!("v{i}").as_bytes(), 0, 0);
        }
    }
    for round in 0..3 {
        let c = start(Branch::It(Stage::OnCommit), &dir);
        assert_eq!(c.dur_stats().unwrap().recovered_items, 20, "round {round}");
        for i in 0..20u32 {
            assert_eq!(
                c.get(0, format!("k{i}").as_bytes()).unwrap().data,
                format!("v{i}").as_bytes(),
                "round {round}"
            );
        }
        drop(c);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_stores_replay_in_order() {
    let dir = tmpdir("batch");
    {
        let c = start(Branch::It(Stage::OnCommit), &dir);
        let ops: Vec<mcache::StoreOp<'_>> = (0..8)
            .map(|i| mcache::StoreOp {
                mode: mcache::StoreMode::Set,
                key: b"same",
                value: if i == 7 { b"final" } else { b"mid" },
                flags: 0,
                exptime: 0,
            })
            .collect();
        let st = c.store_batch(0, &ops);
        assert!(st.iter().all(|s| *s == mcache::StoreStatus::Stored));
    }
    let c = start(Branch::It(Stage::OnCommit), &dir);
    assert_eq!(
        c.get(0, b"same").unwrap().data,
        b"final",
        "equal-stamp batch records must replay in append order"
    );
    drop(c);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn log_off_cache_has_no_dur_surface() {
    let c = McCache::start(McConfig {
        workers: 1,
        ..Default::default()
    });
    assert!(!c.dur_enabled());
    assert!(c.dur_stats().is_none());
    c.set(0, b"k", b"v", 0, 0);
    assert_eq!(c.get(0, b"k").unwrap().data, b"v");
}
