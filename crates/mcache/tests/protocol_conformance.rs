//! ASCII-protocol conformance: table-driven request/response checks
//! modeled on memcached's documented protocol behavior, run on two
//! branches (lock-based and fully transactional) to pin the protocol
//! layer independent of the synchronization strategy.

use mcache::proto::execute_ascii;
use mcache::{Branch, McCache, McConfig, McHandle, SlabConfig, Stage};

fn cache(branch: Branch) -> McHandle {
    McCache::start(McConfig {
        branch,
        workers: 1,
        slab: SlabConfig {
            mem_limit: 2 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 6,
        hash_power_max: 8,
        item_lock_power: 4,
        maintenance: false,
        ..Default::default()
    })
}

/// (request, expected exact response) pairs executed in order.
fn conformance_script() -> Vec<(&'static [u8], &'static [u8])> {
    vec![
        // storage basics
        (b"set k1 0 0 3\r\nabc\r\n", b"STORED\r\n"),
        (b"get k1\r\n", b"VALUE k1 0 3\r\nabc\r\nEND\r\n"),
        (b"set k1 7 0 3\r\nxyz\r\n", b"STORED\r\n"),
        (b"get k1\r\n", b"VALUE k1 7 3\r\nxyz\r\nEND\r\n"),
        // add / replace predicates
        (b"add k1 0 0 1\r\nZ\r\n", b"NOT_STORED\r\n"),
        (b"add k2 0 0 2\r\nhi\r\n", b"STORED\r\n"),
        (b"replace k3 0 0 1\r\nQ\r\n", b"NOT_STORED\r\n"),
        (b"replace k2 0 0 3\r\nbye\r\n", b"STORED\r\n"),
        (b"get k2\r\n", b"VALUE k2 0 3\r\nbye\r\nEND\r\n"),
        // empty value
        (b"set empty 0 0 0\r\n\r\n", b"STORED\r\n"),
        (b"get empty\r\n", b"VALUE empty 0 0\r\n\r\nEND\r\n"),
        // delete
        (b"delete k2\r\n", b"DELETED\r\n"),
        (b"delete k2\r\n", b"NOT_FOUND\r\n"),
        (b"get k2\r\n", b"END\r\n"),
        // arithmetic
        (b"set n 0 0 1\r\n5\r\n", b"STORED\r\n"),
        (b"incr n 10\r\n", b"15\r\n"),
        (b"decr n 20\r\n", b"0\r\n"),
        (b"incr n 0\r\n", b"0\r\n"),
        (b"incr missing 1\r\n", b"NOT_FOUND\r\n"),
        (b"set w 0 0 5\r\nwords\r\n", b"STORED\r\n"),
        (
            b"incr w 1\r\n",
            b"CLIENT_ERROR cannot increment or decrement non-numeric value\r\n",
        ),
        // append / prepend
        (b"append k1 0 0 3\r\n+++\r\n", b"STORED\r\n"),
        (b"get k1\r\n", b"VALUE k1 7 6\r\nxyz+++\r\nEND\r\n"),
        (b"prepend k1 0 0 3\r\n---\r\n", b"STORED\r\n"),
        (b"get k1\r\n", b"VALUE k1 7 9\r\n---xyz+++\r\nEND\r\n"),
        (b"append ghost 0 0 1\r\nx\r\n", b"NOT_STORED\r\n"),
        // touch
        (b"touch k1 1000\r\n", b"TOUCHED\r\n"),
        (b"touch ghost 1000\r\n", b"NOT_FOUND\r\n"),
        // malformed requests
        (b"set k 0 0\r\n", b"CLIENT_ERROR bad command line format\r\n"),
        (b"set k a b c\r\n", b"CLIENT_ERROR bad command line format\r\n"),
        (b"set k 0 0 4\r\nab\r\n", b"CLIENT_ERROR bad data chunk\r\n"),
        (b"incr n\r\n", b"CLIENT_ERROR bad command line format\r\n"),
        (b"delete\r\n", b"CLIENT_ERROR bad command line format\r\n"),
        (b"frobnicate k\r\n", b"ERROR\r\n"),
        (b"\r\n", b"ERROR\r\n"),
        // flush
        (b"flush_all\r\n", b"OK\r\n"),
    ]
}

fn run_script(branch: Branch) {
    let c = cache(branch);
    for (i, (req, expected)) in conformance_script().into_iter().enumerate() {
        let got = execute_ascii(&c, 0, req);
        assert_eq!(
            got,
            expected,
            "{branch} step {i}: {:?} -> got {:?}, want {:?}",
            String::from_utf8_lossy(req),
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(expected),
        );
    }
}

#[test]
fn ascii_conformance_baseline() {
    run_script(Branch::Baseline);
}

#[test]
fn ascii_conformance_it_oncommit() {
    run_script(Branch::It(Stage::OnCommit));
}

#[test]
fn ascii_conformance_ip_lib() {
    run_script(Branch::Ip(Stage::Lib));
}

#[test]
fn multi_get_preserves_request_order() {
    let c = cache(Branch::Baseline);
    execute_ascii(&c, 0, b"set b 0 0 1\r\nB\r\n");
    execute_ascii(&c, 0, b"set a 0 0 1\r\nA\r\n");
    let r = execute_ascii(&c, 0, b"get a b a\r\n");
    let text = String::from_utf8(r).unwrap();
    let pos_a = text.find("VALUE a").unwrap();
    let pos_b = text.find("VALUE b").unwrap();
    assert!(pos_a < pos_b, "{text}");
    assert_eq!(text.matches("VALUE a").count(), 2, "{text}");
}

#[test]
fn values_with_binary_content_roundtrip() {
    let c = cache(Branch::It(Stage::OnCommit));
    // Value containing CRLF and NUL bytes: length-delimited, must survive.
    let payload = b"\x00\r\nbinary\r\n\x00";
    let mut req = format!("set bin 0 0 {}\r\n", payload.len()).into_bytes();
    req.extend_from_slice(payload);
    req.extend_from_slice(b"\r\n");
    assert_eq!(execute_ascii(&c, 0, &req), b"STORED\r\n");
    let resp = execute_ascii(&c, 0, b"get bin\r\n");
    let mut expected = format!("VALUE bin 0 {}\r\n", payload.len()).into_bytes();
    expected.extend_from_slice(payload);
    expected.extend_from_slice(b"\r\nEND\r\n");
    assert_eq!(resp, expected);
}

#[test]
fn max_key_length_is_enforced_by_cache_api() {
    let c = cache(Branch::Baseline);
    let key = vec![b'k'; 250];
    assert_eq!(
        c.set(0, &key, b"v", 0, 0),
        mcache::StoreStatus::Stored,
        "250-byte keys are legal"
    );
    assert!(c.get(0, &key).is_some());
    let too_long = vec![b'k'; 251];
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.set(0, &too_long, b"v", 0, 0)
    }));
    assert!(r.is_err(), "251-byte keys must be rejected");
}

#[test]
fn gets_cas_changes_on_every_store() {
    let c = cache(Branch::Ip(Stage::OnCommit));
    let mut last_cas = 0u64;
    for i in 0..5 {
        execute_ascii(&c, 0, format!("set k 0 0 1\r\n{i}\r\n").as_bytes());
        let v = c.get(0, b"k").unwrap();
        assert!(v.cas > last_cas, "CAS must be monotone: {} then {}", last_cas, v.cas);
        last_cas = v.cas;
    }
}

#[test]
fn stats_reflect_protocol_traffic() {
    let c = cache(Branch::Baseline);
    execute_ascii(&c, 0, b"set s1 0 0 1\r\nA\r\n");
    execute_ascii(&c, 0, b"get s1\r\n");
    execute_ascii(&c, 0, b"get nope\r\n");
    let stats = String::from_utf8(execute_ascii(&c, 0, b"stats\r\n")).unwrap();
    assert!(stats.contains("STAT cmd_get 2"), "{stats}");
    assert!(stats.contains("STAT get_hits 1"), "{stats}");
    assert!(stats.contains("STAT get_misses 1"), "{stats}");
    assert!(stats.contains("STAT cmd_set 1"), "{stats}");
    assert!(stats.contains("STAT curr_items 1"), "{stats}");
}
