//! Event-driven front-end conformance: the UDP frame protocol
//! (multi-datagram reassembly, out-of-order request ids, malformed
//! headers), the Unix-domain transport, the idle-connection reaper, and
//! byte-for-byte equivalence between the epoll and poll backends —
//! including 64 connections trickling frames one byte at a time.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::time::Duration;

use mcache::net::udp::{decode_header, encode_header, UDP_HEADER, UDP_PAYLOAD_MAX};
use mcache::net::{EventLoop, NetConfig, Server};
use mcache::{Branch, McCache, McConfig, SlabConfig, Stage};

fn server_with(net: NetConfig) -> Server {
    let workers = net.workers;
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers,
        slab: SlabConfig {
            mem_limit: 16 << 20,
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        hash_power: 8,
        hash_power_max: 10,
        item_lock_power: 5,
        maintenance: false,
        ..Default::default()
    });
    Server::start(handle, net).expect("bind ephemeral server")
}

fn udp_server(event_loop: EventLoop) -> Server {
    server_with(NetConfig {
        addr: "127.0.0.1:0".to_string(),
        udp_addr: Some("127.0.0.1:0".to_string()),
        workers: 2,
        event_loop,
        ..NetConfig::default()
    })
}

fn udp_socket(srv: &Server) -> UdpSocket {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind client udp");
    sock.connect(srv.udp_addr().expect("server has udp")).expect("connect udp");
    sock.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    sock
}

fn udp_send(sock: &UdpSocket, rid: u16, payload: &[u8]) {
    let mut wire = Vec::with_capacity(UDP_HEADER + payload.len());
    wire.extend_from_slice(&encode_header(rid, 0, 1));
    wire.extend_from_slice(payload);
    sock.send(&wire).expect("send datagram");
}

/// Receives datagrams until `want` distinct request ids have fully
/// reassembled, tolerating any arrival order within and across ids.
fn udp_collect(sock: &UdpSocket, want: usize) -> HashMap<u16, Vec<u8>> {
    let mut partial: HashMap<u16, (usize, Vec<Option<Vec<u8>>>)> = HashMap::new();
    let mut done: HashMap<u16, Vec<u8>> = HashMap::new();
    let mut buf = vec![0u8; 64 << 10];
    while done.len() < want {
        let n = sock.recv(&mut buf).expect("recv datagram");
        let (rid, seq, total) = decode_header(&buf[..n]).expect("response header");
        assert!(total >= 1, "response total must be positive");
        assert!(seq < total, "response seq must be within total");
        let (count, slots) = partial
            .entry(rid)
            .or_insert_with(|| (0, vec![None; total as usize]));
        assert_eq!(slots.len(), total as usize, "total must be stable per rid");
        assert!(slots[seq as usize].is_none(), "no duplicate seq per rid");
        slots[seq as usize] = Some(buf[UDP_HEADER..n].to_vec());
        *count += 1;
        if *count == slots.len() {
            let (_, slots) = partial.remove(&rid).unwrap();
            let mut full = Vec::new();
            for s in slots {
                full.extend_from_slice(&s.unwrap());
            }
            done.insert(rid, full);
        }
    }
    assert!(partial.is_empty(), "no half-reassembled responses left over");
    done
}

#[test]
fn udp_header_encode_decode_roundtrip() {
    for (rid, seq, total) in [(0, 0, 1), (1, 0, 1), (513, 2, 7), (u16::MAX, 41, 42)] {
        let h = encode_header(rid, seq, total);
        assert_eq!(h.len(), UDP_HEADER);
        // Big-endian on the wire, reserved bytes zero — the memcached
        // layout, byte for byte.
        assert_eq!(h[0], (rid >> 8) as u8);
        assert_eq!(h[1], (rid & 0xff) as u8);
        assert_eq!(h[6], 0);
        assert_eq!(h[7], 0);
        assert_eq!(decode_header(&h), Some((rid, seq, total)));
    }
    assert_eq!(decode_header(&[0u8; 7]), None, "short datagram has no header");
}

#[test]
fn udp_single_datagram_roundtrip() {
    let srv = udp_server(EventLoop::default());
    let sock = udp_socket(&srv);

    udp_send(&sock, 7, b"set alpha 0 0 5\r\nhello\r\n");
    let resp = udp_collect(&sock, 1);
    assert_eq!(resp[&7], b"STORED\r\n");

    udp_send(&sock, 8, b"get alpha\r\n");
    let resp = udp_collect(&sock, 1);
    assert_eq!(resp[&8], b"VALUE alpha 0 5\r\nhello\r\nEND\r\n");
}

#[test]
fn udp_large_value_reassembles_from_multiple_datagrams() {
    let srv = udp_server(EventLoop::default());
    let sock = udp_socket(&srv);

    // A value big enough that VALUE line + data + END spans >= 4
    // sequenced datagrams.
    let value: Vec<u8> = (0..4500u32).map(|i| (i % 251) as u8).collect();
    let mut set = format!("set big 0 0 {}\r\n", value.len()).into_bytes();
    set.extend_from_slice(&value);
    set.extend_from_slice(b"\r\n");
    udp_send(&sock, 1, &set);
    assert_eq!(udp_collect(&sock, 1)[&1], b"STORED\r\n");

    udp_send(&sock, 2, b"get big\r\n");
    let resp = &udp_collect(&sock, 1)[&2];
    let expected_len = resp.len();
    assert!(
        expected_len > 3 * UDP_PAYLOAD_MAX,
        "response must have spanned >= 4 datagrams, got {expected_len} bytes"
    );
    let mut expect = format!("VALUE big 0 {}\r\n", value.len()).into_bytes();
    expect.extend_from_slice(&value);
    expect.extend_from_slice(b"\r\nEND\r\n");
    assert_eq!(resp, &expect, "reassembled response must be byte-exact");
}

#[test]
fn udp_out_of_order_request_ids_answer_independently() {
    let srv = udp_server(EventLoop::default());
    let sock = udp_socket(&srv);

    udp_send(&sock, 3, b"set k1 0 0 3\r\none\r\n");
    udp_send(&sock, 3000, b"set k2 0 0 3\r\ntwo\r\n");
    assert_eq!(udp_collect(&sock, 2).len(), 2);

    // Fire a burst of gets under deliberately shuffled request ids; the
    // responses may arrive in any order (two workers race for the
    // socket) and must each carry their own rid's answer.
    let rids: [u16; 5] = [900, 4, 77, 65535, 30];
    for (i, &rid) in rids.iter().enumerate() {
        let key = if i % 2 == 0 { "k1" } else { "k2" };
        udp_send(&sock, rid, format!("get {key}\r\n").as_bytes());
    }
    let resp = udp_collect(&sock, rids.len());
    for (i, &rid) in rids.iter().enumerate() {
        let expect: &[u8] = if i % 2 == 0 {
            b"VALUE k1 0 3\r\none\r\nEND\r\n"
        } else {
            b"VALUE k2 0 3\r\ntwo\r\nEND\r\n"
        };
        assert_eq!(resp[&rid], expect, "rid {rid} must get its own response");
    }
}

#[test]
fn udp_malformed_frames_counted_not_answered() {
    let srv = udp_server(EventLoop::default());
    let sock = udp_socket(&srv);
    sock.set_read_timeout(Some(Duration::from_millis(300))).unwrap();

    // Short datagram (no full header), a multi-datagram request
    // (seq=1/total=2 — illegal for requests), and a truncated ASCII
    // frame (no CRLF so it can never complete without a stream).
    sock.send(&[0x01, 0x02, 0x03]).expect("runt send");
    let mut multi = encode_header(5, 1, 2).to_vec();
    multi.extend_from_slice(b"get k1\r\n");
    sock.send(&multi).expect("multi-datagram request send");
    udp_send(&sock, 6, b"get k1");

    let mut buf = [0u8; 2048];
    let err = sock.recv(&mut buf).expect_err("malformed frames answer nothing");
    assert!(
        matches!(err.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
        "unexpected recv error: {err:?}"
    );
    // All three were counted; a healthy request still works after.
    let ns = srv.net_stats();
    assert!(ns.frame_errors >= 3, "frame_errors={} must count all 3", ns.frame_errors);
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    udp_send(&sock, 9, b"version\r\n");
    assert!(udp_collect(&sock, 1)[&9].starts_with(b"VERSION"));
}

// ---------------------------------------------------------------------
// Stream transports
// ---------------------------------------------------------------------

fn read_until_version(s: &mut impl Read) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if buf.ends_with(b"\r\n") {
            let last_line_start = buf[..buf.len() - 2]
                .windows(2)
                .rposition(|w| w == b"\r\n")
                .map_or(0, |i| i + 2);
            if buf[last_line_start..].starts_with(b"VERSION") {
                return buf;
            }
        }
        let n = s.read(&mut chunk).expect("read response stream");
        assert!(n > 0, "connection closed before the version sync");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// A deterministic ASCII script touching every command family, ending
/// with `version` as the sync point.
fn wire_script() -> Vec<u8> {
    let mut script = Vec::new();
    for i in 0..40 {
        let value = format!("payload-{i:04}-{}", "x".repeat(i * 7 % 90));
        script.extend_from_slice(
            format!("set key{} {} 0 {}\r\n", i % 13, i % 3, value.len()).as_bytes(),
        );
        script.extend_from_slice(value.as_bytes());
        script.extend_from_slice(b"\r\n");
        script.extend_from_slice(format!("get key{} key{}\r\n", i % 13, (i + 5) % 13).as_bytes());
        if i % 7 == 0 {
            script.extend_from_slice(format!("delete key{}\r\n", (i + 1) % 13).as_bytes());
        }
        if i % 11 == 0 {
            script.extend_from_slice(b"set ctr 0 0 2\r\n10\r\nincr ctr 5\r\n");
        }
    }
    script.extend_from_slice(b"version\r\n");
    script
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_identical_bytes_to_tcp() {
    let dir = std::env::temp_dir().join(format!("mcache-unix-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("netpath.sock");
    let script = wire_script();

    // Two fresh servers, one per transport, so both scripts run against
    // identical (empty) state and the byte streams are comparable.
    let tcp_bytes = {
        let srv = server_with(NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..NetConfig::default()
        });
        let mut tcp = TcpStream::connect(srv.local_addr()).expect("tcp connect");
        tcp.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        tcp.write_all(&script).expect("tcp script");
        read_until_version(&mut tcp)
    };
    let mut srv = server_with(NetConfig {
        addr: "127.0.0.1:0".to_string(),
        unix_path: Some(path.clone()),
        workers: 2,
        ..NetConfig::default()
    });
    let mut unix = std::os::unix::net::UnixStream::connect(&path).expect("unix connect");
    unix.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    unix.write_all(&script).expect("unix script");
    let unix_bytes = read_until_version(&mut unix);

    assert_eq!(
        tcp_bytes, unix_bytes,
        "the protocol must be transport-agnostic byte for byte"
    );
    srv.shutdown();
    assert!(!path.exists(), "shutdown must remove the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poll_and_epoll_serve_identical_bytes() {
    let script = wire_script();
    let mut outputs = Vec::new();
    for event_loop in [EventLoop::Epoll, EventLoop::Poll] {
        let srv = server_with(NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            event_loop,
            ..NetConfig::default()
        });
        let mut s = TcpStream::connect(srv.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(&script).expect("script");
        outputs.push(read_until_version(&mut s));
    }
    assert_eq!(
        outputs[0], outputs[1],
        "epoll and poll backends must be byte-identical"
    );
}

/// A script safe to run concurrently from many connections: values are
/// a pure function of the key (racing sets write identical bytes), no
/// deletes or arithmetic, fixed flags — so once every key exists, every
/// connection reads the same response stream no matter the interleaving.
fn concurrent_script() -> Vec<u8> {
    let mut script = Vec::new();
    for i in 0..40 {
        let j = i % 13;
        let value = format!("stable-{j:02}-{}", "y".repeat(j * 7));
        script.extend_from_slice(format!("set ckey{j} 0 0 {}\r\n", value.len()).as_bytes());
        script.extend_from_slice(value.as_bytes());
        script.extend_from_slice(b"\r\n");
        script.extend_from_slice(format!("get ckey{j} ckey{}\r\n", (i + 5) % 13).as_bytes());
    }
    script.extend_from_slice(b"version\r\n");
    script
}

/// 64 concurrent connections each trickling the full script one byte
/// per write — frames fragment at every possible boundary, and under
/// epoll every byte arrives as its own edge. Each connection must still
/// read exactly the reference response stream.
#[test]
fn sixty_four_connections_one_byte_at_a_time() {
    let srv = server_with(NetConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..NetConfig::default()
    });
    let script = concurrent_script();

    // Reference bytes from a well-behaved connection. The first pass
    // populates every key; the second pass's responses (all-hits) are
    // the steady state every concurrent connection must reproduce.
    let reference = {
        let mut s = TcpStream::connect(srv.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s.write_all(&script).expect("first pass");
        read_until_version(&mut s);
        s.write_all(&script).expect("second pass");
        read_until_version(&mut s)
    };
    std::thread::scope(|scope| {
        for _ in 0..64 {
            let script = &script;
            let reference = &reference;
            let addr = srv.local_addr();
            scope.spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_nodelay(true).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
                let (mut sent, mut got) = (0usize, Vec::new());
                let mut chunk = [0u8; 4096];
                // Interleave one-byte writes with opportunistic reads so
                // responses drain while the request trickles in.
                s.set_nonblocking(true).unwrap();
                while sent < script.len() {
                    s.write_all(&script[sent..sent + 1]).expect("one-byte write");
                    sent += 1;
                    match s.read(&mut chunk) {
                        Ok(n) => {
                            assert!(n > 0, "server closed mid-script");
                            got.extend_from_slice(&chunk[..n]);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("read failed: {e}"),
                    }
                }
                s.set_nonblocking(false).unwrap();
                while !(got.ends_with(b"\r\n") && {
                    let start = got[..got.len() - 2]
                        .windows(2)
                        .rposition(|w| w == b"\r\n")
                        .map_or(0, |i| i + 2);
                    got[start..].starts_with(b"VERSION")
                }) {
                    let n = s.read(&mut chunk).expect("drain responses");
                    assert!(n > 0, "server closed before version sync");
                    got.extend_from_slice(&chunk[..n]);
                }
                assert_eq!(
                    &got, reference,
                    "byte-trickled connection must read the reference stream"
                );
            });
        }
    });
    let ns = srv.net_stats();
    assert_eq!(ns.frame_errors, 0, "no trickled frame may desync");
}

#[test]
fn idle_reaper_closes_stale_connections_on_both_backends() {
    for event_loop in [EventLoop::Epoll, EventLoop::Poll] {
        let srv = server_with(NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            event_loop,
            idle_timeout_ms: 50,
            ..NetConfig::default()
        });
        let mut s = TcpStream::connect(srv.local_addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // A partial frame parks the connection mid-request; only the
        // reaper can ever close it.
        s.write_all(b"get never-finis").expect("partial frame");
        std::thread::sleep(Duration::from_millis(400));
        let mut buf = [0u8; 64];
        let n = s.read(&mut buf).expect("reaped connection reads EOF");
        assert_eq!(n, 0, "server must have closed the idle connection");
        let ns = srv.net_stats();
        assert!(
            ns.conn_timeouts >= 1,
            "conn_timeouts={} must count the reap ({event_loop})",
            ns.conn_timeouts
        );
        assert_eq!(ns.curr_connections, 0, "slot must be released ({event_loop})");
    }
}

#[test]
fn reaper_spares_active_connections() {
    let srv = server_with(NetConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        idle_timeout_ms: 120,
        ..NetConfig::default()
    });
    let mut s = TcpStream::connect(srv.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Keep touching the connection at half the timeout; it must survive
    // several full timeout windows.
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(60));
        s.write_all(b"version\r\n").expect("keepalive");
        let mut buf = [0u8; 256];
        let n = s.read(&mut buf).expect("keepalive answer");
        assert!(n > 0, "active connection must never be reaped");
        assert!(buf.starts_with(b"VERSION"));
    }
    assert_eq!(srv.net_stats().conn_timeouts, 0, "no false-positive reaps");
}
