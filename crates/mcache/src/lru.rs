//! Per-class LRU lists (`items.c`): doubly-linked lists threaded through
//! the items' header words, used for eviction and for the `item_update`
//! re-positioning that memcached rate-limits to once per 60 seconds.

use tm::{Abort, TCell, Word};
use tmstd::ByteAccess;

use crate::ctx::Ctx;
use crate::item::{decode_opt, encode_opt, ItemHandle};
use crate::slabs::SlabArena;

/// One slab class's LRU list. Head = most recent, tail = eviction victim.
#[derive(Debug, Default)]
pub struct LruList {
    head: TCell<u64>,
    tail: TCell<u64>,
    count: TCell<u64>,
}

impl LruList {
    /// Creates an empty list.
    pub fn new() -> Self {
        LruList::default()
    }

    /// Number of linked items.
    pub fn len<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<u64, Abort> {
        ctx.get_word(self.count.word())
    }

    /// Whether the list is empty.
    pub fn is_empty<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<bool, Abort> {
        Ok(self.len(ctx)? == 0)
    }

    /// The current eviction candidate (oldest item).
    pub fn tail<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<Option<ItemHandle>, Abort> {
        Ok(decode_opt(ctx.get_word(self.tail.word())?))
    }

    /// The most recently used item.
    pub fn head<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<Option<ItemHandle>, Abort> {
        Ok(decode_opt(ctx.get_word(self.head.word())?))
    }

    /// Links `h` at the head (`item_link_q`).
    pub fn link_head<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        arena: &'e SlabArena,
        h: ItemHandle,
    ) -> Result<(), Abort> {
        let it = arena.resolve(h);
        let old_head = decode_opt(ctx.get_word(self.head.word())?);
        it.set_lru_prev(ctx, None)?;
        it.set_lru_next(ctx, old_head)?;
        match old_head {
            Some(oh) => arena.resolve(oh).set_lru_prev(ctx, Some(h))?,
            None => ctx.put_word(self.tail.word(), h.to_word())?,
        }
        ctx.put_word(self.head.word(), h.to_word())?;
        let n = ctx.get_word(self.count.word())?;
        ctx.put_word(self.count.word(), n + 1)?;
        Ok(())
    }

    /// Unlinks `h` from wherever it is (`item_unlink_q`).
    pub fn unlink<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        arena: &'e SlabArena,
        h: ItemHandle,
    ) -> Result<(), Abort> {
        let it = arena.resolve(h);
        let prev = it.lru_prev(ctx)?;
        let next = it.lru_next(ctx)?;
        match prev {
            Some(p) => arena.resolve(p).set_lru_next(ctx, next)?,
            None => ctx.put_word(self.head.word(), encode_opt(next))?,
        }
        match next {
            Some(n) => arena.resolve(n).set_lru_prev(ctx, prev)?,
            None => ctx.put_word(self.tail.word(), encode_opt(prev))?,
        }
        it.set_lru_prev(ctx, None)?;
        it.set_lru_next(ctx, None)?;
        let n = ctx.get_word(self.count.word())?;
        ctx.put_word(self.count.word(), n.saturating_sub(1))?;
        Ok(())
    }

    /// Moves `h` to the head (`do_item_update`'s unlink+link pair).
    pub fn bump<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        arena: &'e SlabArena,
        h: ItemHandle,
    ) -> Result<(), Abort> {
        self.unlink(ctx, arena, h)?;
        self.link_head(ctx, arena, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Branch;
    use crate::slabs::SlabConfig;

    fn setup() -> (SlabArena, LruList) {
        (
            SlabArena::new(SlabConfig {
                mem_limit: 64 << 10,
                page_size: 16 << 10,
                chunk_min: 96,
                growth_factor: 2.0,
            }),
            LruList::new(),
        )
    }

    fn alloc(arena: &SlabArena) -> ItemHandle {
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        arena.alloc_from(&mut ctx, &p, 0).unwrap().unwrap()
    }

    #[test]
    fn link_order_is_mru_first() {
        let (arena, lru) = setup();
        let mut ctx = Ctx::Direct;
        let a = alloc(&arena);
        let b = alloc(&arena);
        let c = alloc(&arena);
        lru.link_head(&mut ctx, &arena, a).unwrap();
        lru.link_head(&mut ctx, &arena, b).unwrap();
        lru.link_head(&mut ctx, &arena, c).unwrap();
        assert_eq!(lru.head(&mut ctx).unwrap(), Some(c));
        assert_eq!(lru.tail(&mut ctx).unwrap(), Some(a));
        assert_eq!(lru.len(&mut ctx).unwrap(), 3);
    }

    #[test]
    fn unlink_middle_and_ends() {
        let (arena, lru) = setup();
        let mut ctx = Ctx::Direct;
        let a = alloc(&arena);
        let b = alloc(&arena);
        let c = alloc(&arena);
        for h in [a, b, c] {
            lru.link_head(&mut ctx, &arena, h).unwrap();
        }
        // order: c b a
        lru.unlink(&mut ctx, &arena, b).unwrap();
        assert_eq!(lru.head(&mut ctx).unwrap(), Some(c));
        assert_eq!(lru.tail(&mut ctx).unwrap(), Some(a));
        lru.unlink(&mut ctx, &arena, c).unwrap();
        assert_eq!(lru.head(&mut ctx).unwrap(), Some(a));
        assert_eq!(lru.tail(&mut ctx).unwrap(), Some(a));
        lru.unlink(&mut ctx, &arena, a).unwrap();
        assert!(lru.is_empty(&mut ctx).unwrap());
        assert_eq!(lru.head(&mut ctx).unwrap(), None);
        assert_eq!(lru.tail(&mut ctx).unwrap(), None);
    }

    #[test]
    fn bump_moves_to_head() {
        let (arena, lru) = setup();
        let mut ctx = Ctx::Direct;
        let a = alloc(&arena);
        let b = alloc(&arena);
        lru.link_head(&mut ctx, &arena, a).unwrap();
        lru.link_head(&mut ctx, &arena, b).unwrap();
        // order: b a ; bump a → a b
        lru.bump(&mut ctx, &arena, a).unwrap();
        assert_eq!(lru.head(&mut ctx).unwrap(), Some(a));
        assert_eq!(lru.tail(&mut ctx).unwrap(), Some(b));
        assert_eq!(lru.len(&mut ctx).unwrap(), 2);
    }

    #[test]
    fn walk_is_consistent_both_ways() {
        let (arena, lru) = setup();
        let mut ctx = Ctx::Direct;
        let items: Vec<_> = (0..10).map(|_| alloc(&arena)).collect();
        for &h in &items {
            lru.link_head(&mut ctx, &arena, h).unwrap();
        }
        // Forward walk from head.
        let mut fwd = Vec::new();
        let mut cur = lru.head(&mut ctx).unwrap();
        while let Some(h) = cur {
            fwd.push(h);
            cur = arena.resolve(h).lru_next(&mut ctx).unwrap();
        }
        // Backward walk from tail.
        let mut bwd = Vec::new();
        let mut cur = lru.tail(&mut ctx).unwrap();
        while let Some(h) = cur {
            bwd.push(h);
            cur = arena.resolve(h).lru_prev(&mut ctx).unwrap();
        }
        bwd.reverse();
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.len(), 10);
    }
}
