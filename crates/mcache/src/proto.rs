//! Protocol front-ends: the memcached ASCII protocol and the binary
//! protocol memslap exercises with `--binary`.
//!
//! Parsing happens on private connection buffers — memcached does not
//! parse inside critical sections — but it runs through the *same*
//! `tmstd` string routines (`strncmp`, `isspace`, `strtol`, `strchr`) in
//! their uninstrumented clones, keeping the single-source property
//! end-to-end.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tm::TBytes;
use tmstd::DirectAccess;

use crate::cache::{ArithStatus, McCache, StoreMode, StoreOp, StoreStatus};

/// The response a worker sends when a request handler panics: memcached's
/// catch-all `SERVER_ERROR`, so one poisoned request costs one connection
/// one error line instead of the whole process.
pub const SERVER_ERROR_PANIC: &[u8] = b"SERVER_ERROR internal error for this request\r\n";

/// Executes one complete ASCII request (command line and, for storage
/// commands, the data block) against `cache` as worker `w`, returning the
/// wire response.
///
/// Supported: `get`/`gets` (multi-key), `set`, `add`, `replace`,
/// `append`, `prepend`, `cas`, `delete`, `incr`, `decr`, `touch`,
/// `flush_all`, `stats`, `version`.
///
/// A panic unwinding out of the handler (a cache invariant tripped, an
/// injected fault, ...) is caught here, counted in
/// [`McCache::request_panics`], and answered with
/// [`SERVER_ERROR_PANIC`] — the worker thread survives to serve the next
/// request.
pub fn execute_ascii(cache: &McCache, w: usize, request: &[u8]) -> Vec<u8> {
    match catch_unwind(AssertUnwindSafe(|| execute_ascii_inner(cache, w, request))) {
        Ok(resp) => resp,
        Err(_panic) => {
            cache.note_request_panic();
            SERVER_ERROR_PANIC.to_vec()
        }
    }
}

/// The `stats` surface both protocols expose: one `(name, counter)` pair
/// per statistic, in a stable order. The ASCII handler renders them as
/// `STAT name value` lines; the binary handler ([`binary::Opcode::Stat`])
/// as one key/value response packet each. The `dur_*` block appears only
/// when the durability log is attached, matching the ASCII behavior.
pub fn stat_pairs(cache: &McCache) -> Vec<(&'static str, u64)> {
    let s = cache.stats();
    let tm = cache.tm_stats();
    let mut pairs = vec![
        ("cmd_get", s.threads.get_cmds),
        ("get_hits", s.threads.get_hits),
        ("get_misses", s.threads.get_misses),
        ("cmd_set", s.threads.set_cmds),
        ("curr_items", s.global.curr_items),
        ("total_items", s.global.total_items),
        ("evictions", s.global.evictions),
        ("hash_expansions", s.global.expansions),
        ("slab_reassigns", s.global.rebalances),
        ("request_panics", s.request_panics),
        ("maintenance_panics", s.maintenance_panics),
        // Write-path overdrive gauges: the STM's mutation fast lane
        // and the per-worker slab magazines.
        ("silent_store_elisions", tm.silent_store_elisions),
        ("clock_tick_elisions", tm.clock_tick_elisions),
        ("clock_cas_retries", tm.clock_cas_retries),
        // Contention-path gauges: sharded commit clock, striped
        // orec table, and NOrec's seqlock-bump elision.
        ("clock_shard_syncs", tm.clock_shard_syncs),
        ("orec_stripe_conflicts", tm.orec_stripe_conflicts),
        ("seqlock_bump_elisions", tm.seqlock_bump_elisions),
        ("magazine_refills", s.global.magazine_refills),
        ("magazine_flushes", s.global.magazine_flushes),
        // Adaptive-runtime gauges (DESIGN §15): controller epochs,
        // the live knob positions, and the hot-key set.
        ("adapt_epochs", s.adapt_epochs),
        ("adapt_switches", s.adapt_switches),
        ("adapt_mag_resizes", s.adapt_mag_resizes),
        ("adapt_ro_tunes", s.adapt_ro_tunes),
        ("magazine_cap", s.magazine_cap),
        ("lru_bump_every", s.lru_bump_every),
        ("hot_armed", s.hot_armed),
        ("hot_hits", s.hot_hits),
        ("hot_installs", s.hot_installs),
        ("hot_invalidations", s.hot_invalidations),
    ];
    if let Some(d) = cache.dur_stats() {
        pairs.extend([
            ("dur_appends", d.appends),
            ("dur_fsyncs", d.fsyncs),
            ("dur_bytes", d.bytes),
            ("log_write_errors", d.log_write_errors),
            ("recovered_items", d.recovered_items),
            ("torn_records_dropped", d.torn_records_dropped),
            ("dur_compactions", d.compactions),
        ]);
    }
    pairs
}

/// `true` when `key` is a protocol-legal key: nonempty and at most
/// [`KEY_MAX`](crate::cache::KEY_MAX) bytes. The cache layer *asserts*
/// these bounds, so the protocol layer must reject violations first —
/// otherwise an oversized key on the wire costs a caught panic and a
/// `SERVER_ERROR` instead of the `CLIENT_ERROR` memcached answers.
fn valid_key(key: &[u8]) -> bool {
    !key.is_empty() && key.len() <= crate::cache::KEY_MAX
}

const BAD_LINE: &[u8] = b"CLIENT_ERROR bad command line format\r\n";

fn execute_ascii_inner(cache: &McCache, w: usize, request: &[u8]) -> Vec<u8> {
    if cache.take_request_panic_trap() {
        panic!("test trap: request panic");
    }
    let buf = TBytes::from_slice(request);
    let mut a = DirectAccess;
    let line_end = match tmstd::strchr(&mut a, &buf, 0, b'\r').expect("direct") {
        Some(i) => i,
        None => return b"ERROR\r\n".to_vec(),
    };
    let line = &request[..line_end];
    let mut parts = Tokens::new(line);
    let Some(cmd) = parts.next() else {
        return b"ERROR\r\n".to_vec();
    };
    match cmd {
        b"get" | b"gets" => {
            let with_cas = cmd == b"gets";
            // One request line, one batch: on transactional branches the
            // whole multiget runs as a single read-only fast-lane
            // transaction (see `McCache::get_multi`).
            let keys: Vec<&[u8]> = parts.collect();
            if keys.is_empty() || keys.iter().any(|k| !valid_key(k)) {
                return if keys.is_empty() {
                    b"ERROR\r\n".to_vec()
                } else {
                    BAD_LINE.to_vec()
                };
            }
            let vals = cache.get_multi(w, &keys);
            let mut out = Vec::new();
            for (key, v) in keys.iter().zip(vals) {
                if let Some(v) = v {
                    out.extend_from_slice(b"VALUE ");
                    out.extend_from_slice(key);
                    if with_cas {
                        out.extend_from_slice(
                            format!(" {} {} {}\r\n", v.flags, v.data.len(), v.cas).as_bytes(),
                        );
                    } else {
                        out.extend_from_slice(
                            format!(" {} {}\r\n", v.flags, v.data.len()).as_bytes(),
                        );
                    }
                    out.extend_from_slice(&v.data);
                    out.extend_from_slice(b"\r\n");
                }
            }
            out.extend_from_slice(b"END\r\n");
            out
        }
        b"set" | b"add" | b"replace" | b"append" | b"prepend" | b"cas" => {
            let Some(key) = parts.next() else {
                return BAD_LINE.to_vec();
            };
            let (Some(flags), Some(exptime), Some(nbytes)) =
                (parts.next_u64(), parts.next_u64(), parts.next_u64())
            else {
                return BAD_LINE.to_vec();
            };
            let cas_id = if cmd == b"cas" {
                match parts.next_u64() {
                    Some(c) => c,
                    None => return BAD_LINE.to_vec(),
                }
            } else {
                0
            };
            let noreply = matches!(parts.next(), Some(b"noreply"));
            if !valid_key(key) {
                return BAD_LINE.to_vec();
            }
            // Bound nbytes by the request itself before any usize
            // arithmetic: a header declaring a length near u64::MAX must
            // not overflow the data-block offsets.
            if nbytes > request.len() as u64 {
                return b"CLIENT_ERROR bad data chunk\r\n".to_vec();
            }
            let data_start = line_end + 2;
            let data_end = data_start + nbytes as usize;
            if request.len() < data_end + 2 || &request[data_end..data_end + 2] != b"\r\n" {
                return b"CLIENT_ERROR bad data chunk\r\n".to_vec();
            }
            let data = &request[data_start..data_end];
            let st = match cmd {
                b"set" => cache.set(w, key, data, flags as u32, exptime as u32),
                b"add" => cache.add(w, key, data, flags as u32, exptime as u32),
                b"replace" => cache.replace(w, key, data, flags as u32, exptime as u32),
                b"append" => cache.append(w, key, data),
                b"prepend" => cache.prepend(w, key, data),
                b"cas" => cache.cas(w, key, data, flags as u32, exptime as u32, cas_id),
                _ => unreachable!(),
            };
            if noreply {
                Vec::new()
            } else {
                store_reply(st).to_vec()
            }
        }
        b"delete" => {
            let Some(key) = parts.next() else {
                return BAD_LINE.to_vec();
            };
            let noreply = matches!(parts.next(), Some(b"noreply"));
            if !valid_key(key) {
                return BAD_LINE.to_vec();
            }
            let deleted = cache.delete(w, key);
            if noreply {
                Vec::new()
            } else if deleted {
                b"DELETED\r\n".to_vec()
            } else {
                b"NOT_FOUND\r\n".to_vec()
            }
        }
        b"incr" | b"decr" => {
            let (Some(key), Some(delta)) = (parts.next(), parts.next_u64()) else {
                return BAD_LINE.to_vec();
            };
            let noreply = matches!(parts.next(), Some(b"noreply"));
            if !valid_key(key) {
                return BAD_LINE.to_vec();
            }
            let st = cache.arith(w, key, delta, cmd == b"incr");
            if noreply {
                return Vec::new();
            }
            match st {
                ArithStatus::Ok(v) => format!("{v}\r\n").into_bytes(),
                ArithStatus::NotFound => b"NOT_FOUND\r\n".to_vec(),
                ArithStatus::NonNumeric => {
                    b"CLIENT_ERROR cannot increment or decrement non-numeric value\r\n".to_vec()
                }
            }
        }
        b"touch" => {
            let (Some(key), Some(exp)) = (parts.next(), parts.next_u64()) else {
                return BAD_LINE.to_vec();
            };
            let noreply = matches!(parts.next(), Some(b"noreply"));
            if !valid_key(key) {
                return BAD_LINE.to_vec();
            }
            let touched = cache.touch(w, key, exp as u32);
            if noreply {
                Vec::new()
            } else if touched {
                b"TOUCHED\r\n".to_vec()
            } else {
                b"NOT_FOUND\r\n".to_vec()
            }
        }
        b"flush_all" => {
            let noreply = matches!(parts.next(), Some(b"noreply"));
            cache.flush_all(w);
            if noreply {
                Vec::new()
            } else {
                b"OK\r\n".to_vec()
            }
        }
        b"stats" => {
            let mut out = String::new();
            for (k, v) in stat_pairs(cache) {
                out.push_str(&format!("STAT {k} {v}\r\n"));
            }
            out.push_str("END\r\n");
            out.into_bytes()
        }
        b"version" => format!("VERSION 1.4.15-tm ({})\r\n", cache.branch()).into_bytes(),
        _ => b"ERROR\r\n".to_vec(),
    }
}

/// Executes a buffer holding MULTIPLE complete ASCII requests — a
/// pipelined connection read — and returns the concatenated responses in
/// order.
///
/// Runs of consecutive simple storage commands (`set`/`add`/`replace`/
/// `cas`) execute as ONE batched store transaction via
/// [`McCache::store_batch`] — the write-path twin of the multiget batch —
/// so a bulk load pays one begin/commit fence for the whole run. Every
/// other command (including `append`/`prepend`, which are get+CAS retry
/// loops) dispatches one-by-one through [`execute_ascii`], keeping its
/// per-request panic guard. A panic inside a batched run is caught here
/// and answered with one [`SERVER_ERROR_PANIC`] per batched command.
pub fn execute_ascii_pipeline(cache: &McCache, w: usize, buffer: &[u8]) -> Vec<u8> {
    let mut cmds: Vec<&[u8]> = Vec::new();
    let mut rest = buffer;
    while !rest.is_empty() {
        let Some(len) = ascii_request_len(rest) else {
            // Unsplittable tail: the single-request path answers ERROR /
            // CLIENT_ERROR exactly as a desynchronized connection would.
            cmds.push(rest);
            break;
        };
        cmds.push(&rest[..len]);
        rest = &rest[len..];
    }
    execute_ascii_run(cache, w, &cmds)
}

/// Executes a run of pre-split COMPLETE ASCII requests — the batching
/// core shared by [`execute_ascii_pipeline`] (whole-buffer splitting),
/// [`execute_ascii_pipeline_consumed`] (incremental framing), and the
/// TCP connection dispatcher, which feeds it exactly the frames sitting
/// in a connection's read buffer.
///
/// Runs of consecutive simple storage commands execute as ONE batched
/// store transaction via [`McCache::store_batch`]; `noreply` ops inside
/// a batch keep their quiet semantics (the store happens, the reply is
/// suppressed).
pub fn execute_ascii_run(cache: &McCache, w: usize, cmds: &[&[u8]]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < cmds.len() {
        let Some((op, noreply)) = parse_store_op(cmds[i]) else {
            out.extend_from_slice(&execute_ascii(cache, w, cmds[i]));
            i += 1;
            continue;
        };
        let mut ops = vec![op];
        let mut quiet = vec![noreply];
        let mut j = i + 1;
        while j < cmds.len() {
            let Some((op, noreply)) = parse_store_op(cmds[j]) else { break };
            ops.push(op);
            quiet.push(noreply);
            j += 1;
        }
        let statuses = catch_unwind(AssertUnwindSafe(|| {
            if cache.take_request_panic_trap() {
                panic!("test trap: request panic");
            }
            cache.store_batch(w, &ops)
        }));
        match statuses {
            Ok(sts) => {
                for (st, &q) in sts.into_iter().zip(&quiet) {
                    if !q {
                        out.extend_from_slice(store_reply(st));
                    }
                }
            }
            Err(_panic) => {
                cache.note_request_panic();
                for &q in &quiet {
                    if !q {
                        out.extend_from_slice(SERVER_ERROR_PANIC);
                    }
                }
            }
        }
        i = j;
    }
    out
}

/// Result of scanning a connection read buffer for one complete frame
/// (see [`scan_frame`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameScan {
    /// No complete frame yet: keep the bytes and read more.
    Incomplete,
    /// One complete ASCII request occupies the first `len` bytes.
    Ascii {
        /// Frame length: command line plus any data block, CRLFs included.
        len: usize,
    },
    /// One complete binary request occupies the first `len` bytes.
    Binary {
        /// Frame length: the 24-byte header plus body.
        len: usize,
    },
    /// The buffer head is not a servable frame. `response` goes to the
    /// client, `consumed` bytes leave the buffer now, the next `swallow`
    /// bytes (which may not have arrived yet) are discarded as they
    /// stream in, and `close` marks the connection beyond resync.
    Error {
        /// Bytes to drop from the front of the buffer immediately.
        consumed: usize,
        /// Further bytes to discard as they arrive — an oversized data
        /// block still in flight, kept off the heap entirely.
        swallow: usize,
        /// Whether to drop the connection once the response flushes.
        close: bool,
        /// Error line (ASCII) or error frame (binary) to send.
        response: Vec<u8>,
    },
}

/// Longest accepted ASCII command line, CRLF excluded (memcached's
/// fixed command-line read buffer). A longer line without a CRLF can
/// never resynchronize, so the connection closes.
pub const ASCII_LINE_MAX: usize = 2048;

/// Largest accepted ASCII data block: memcached's default 1 MiB item
/// cap. A bigger store answers `SERVER_ERROR object too large for
/// cache` and the in-flight data block is swallowed byte-for-byte,
/// keeping the connection synchronized without buffering the payload.
pub const ASCII_VALUE_MAX: usize = 1 << 20;

/// Largest accepted binary request body. Past this the header cannot
/// be trusted (there is no CRLF to hunt for), so the connection closes.
pub const BINARY_BODY_MAX: usize = 2 << 20;

/// Largest oversized ASCII data block the server will swallow to keep a
/// connection synchronized. A declared length past this (memcached's
/// `-I` ceiling is 1 GiB) is treated as a lying or hostile header, not
/// a real payload: swallowing it would pin the connection for an
/// unbounded stream — and a length near `u64::MAX` does not even fit
/// `usize` arithmetic — so the connection closes instead, mirroring the
/// [`BINARY_BODY_MAX`] path.
pub const ASCII_SWALLOW_MAX: u64 = 1 << 30;

/// Scans the head of a connection read buffer for one complete frame,
/// auto-detecting the protocol per frame: a leading
/// [`binary::REQ_MAGIC`] byte means binary, anything else ASCII.
///
/// This is the incremental-parsing entry point the server's connection
/// state machine drives. It never copies and never executes; it only
/// reports exact byte counts, so a request split across socket reads —
/// a `set` whose data block straddles two reads, a binary header cut
/// mid-word — is simply [`FrameScan::Incomplete`] until the rest
/// arrives.
pub fn scan_frame(buf: &[u8]) -> FrameScan {
    let Some(&first) = buf.first() else {
        return FrameScan::Incomplete;
    };
    if first == binary::REQ_MAGIC {
        if buf.len() < 24 {
            return FrameScan::Incomplete;
        }
        let body_len = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
        if body_len > BINARY_BODY_MAX {
            let opaque = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
            return FrameScan::Error {
                consumed: buf.len(),
                swallow: 0,
                close: true,
                response: binary::error_frame(buf[1], opaque, binary::Status::ValueTooLarge),
            };
        }
        return if buf.len() < 24 + body_len {
            FrameScan::Incomplete
        } else {
            FrameScan::Binary { len: 24 + body_len }
        };
    }
    let line_end = match buf.windows(2).position(|w| w == b"\r\n") {
        Some(i) => i,
        None => {
            return if buf.len() > ASCII_LINE_MAX {
                FrameScan::Error {
                    consumed: buf.len(),
                    swallow: 0,
                    close: true,
                    response: BAD_LINE.to_vec(),
                }
            } else {
                FrameScan::Incomplete
            };
        }
    };
    let mut parts = Tokens::new(&buf[..line_end]);
    let is_store = matches!(
        parts.next(),
        Some(b"set" | b"add" | b"replace" | b"append" | b"prepend" | b"cas")
    );
    if !is_store {
        return FrameScan::Ascii { len: line_end + 2 };
    }
    // Storage header: key flags exptime nbytes [cas] [noreply]. If it
    // doesn't parse, the line alone is the frame — the single-request
    // path answers CLIENT_ERROR, exactly as a desynchronized memcached
    // connection would.
    let nbytes = (|| {
        parts.next()?; // key
        parts.next_u64()?; // flags
        parts.next_u64()?; // exptime
        parts.next_u64() // nbytes
    })();
    let Some(nbytes) = nbytes else {
        return FrameScan::Ascii { len: line_end + 2 };
    };
    if nbytes > ASCII_VALUE_MAX as u64 {
        if nbytes > ASCII_SWALLOW_MAX {
            return FrameScan::Error {
                consumed: line_end + 2,
                swallow: 0,
                close: true,
                response: b"SERVER_ERROR object too large for cache\r\n".to_vec(),
            };
        }
        return FrameScan::Error {
            consumed: line_end + 2,
            swallow: nbytes as usize + 2,
            close: false,
            response: b"SERVER_ERROR object too large for cache\r\n".to_vec(),
        };
    }
    let total = line_end + 2 + nbytes as usize + 2;
    if buf.len() < total {
        // A data block straddling two socket reads: not a frame yet.
        // (A bad trailing CRLF still frames as `total` bytes — the
        // executor answers `CLIENT_ERROR bad data chunk`.)
        FrameScan::Incomplete
    } else {
        FrameScan::Ascii { len: total }
    }
}

/// Outcome of [`execute_ascii_pipeline_consumed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineOutcome {
    /// Concatenated wire responses for every executed request.
    pub responses: Vec<u8>,
    /// Bytes consumed from the front of the buffer. Anything after is a
    /// partial frame the caller must keep for the next socket read.
    pub consumed: usize,
    /// Further bytes to discard as they arrive (see [`FrameScan::Error`]).
    pub swallow: usize,
    /// Whether the connection should close after flushing `responses`.
    pub close: bool,
}

/// Incremental twin of [`execute_ascii_pipeline`]: executes every
/// COMPLETE ASCII request at the front of `buffer` — with the same
/// consecutive-store batching — and reports exactly how many bytes were
/// consumed. A trailing partial frame (a `set` whose data block
/// straddles two socket reads) is left unconsumed for the next read to
/// complete; a malformed head reports its error response plus
/// swallow/close state. Stops without consuming at the first binary
/// frame — protocol interleaving is the connection dispatcher's job.
pub fn execute_ascii_pipeline_consumed(
    cache: &McCache,
    w: usize,
    buffer: &[u8],
) -> PipelineOutcome {
    let mut cmds: Vec<&[u8]> = Vec::new();
    let mut consumed = 0;
    let mut swallow = 0;
    let mut close = false;
    let mut tail_error: Option<Vec<u8>> = None;
    loop {
        match scan_frame(&buffer[consumed..]) {
            FrameScan::Ascii { len } => {
                cmds.push(&buffer[consumed..consumed + len]);
                consumed += len;
            }
            FrameScan::Incomplete | FrameScan::Binary { .. } => break,
            FrameScan::Error {
                consumed: c,
                swallow: s,
                close: cl,
                response,
            } => {
                consumed += c;
                swallow = s;
                close = cl;
                tail_error = Some(response);
                break;
            }
        }
    }
    let mut responses = execute_ascii_run(cache, w, &cmds);
    if let Some(e) = tail_error {
        responses.extend_from_slice(&e);
    }
    PipelineOutcome {
        responses,
        consumed,
        swallow,
        close,
    }
}

/// Length of the first complete request in `buf`: the command line plus,
/// for storage commands, the data block. `None` when the buffer cannot be
/// split cleanly (malformed or truncated).
fn ascii_request_len(buf: &[u8]) -> Option<usize> {
    let line_end = buf.windows(2).position(|w| w == b"\r\n")?;
    let mut parts = Tokens::new(&buf[..line_end]);
    let cmd = parts.next()?;
    let is_store = matches!(
        cmd,
        b"set" | b"add" | b"replace" | b"append" | b"prepend" | b"cas"
    );
    if !is_store {
        return Some(line_end + 2);
    }
    let _key = parts.next()?;
    let _flags = parts.next_u64()?;
    let _exptime = parts.next_u64()?;
    let nbytes = parts.next_u64()?;
    if nbytes > buf.len() as u64 {
        return None; // cannot be complete; also keeps usize math exact
    }
    let total = line_end + 2 + nbytes as usize + 2;
    (buf.len() >= total && &buf[total - 2..total] == b"\r\n").then_some(total)
}

/// Parses one complete request as a batchable storage op: `set`/`add`/
/// `replace`/`cas` with a well-formed command line and data block. The
/// second element is the `noreply` flag — a quiet op still joins the
/// batch, its reply is simply suppressed.
fn parse_store_op(req: &[u8]) -> Option<(StoreOp<'_>, bool)> {
    let line_end = req.windows(2).position(|w| w == b"\r\n")?;
    let mut parts = Tokens::new(&req[..line_end]);
    let cmd = parts.next()?;
    if !matches!(cmd, b"set" | b"add" | b"replace" | b"cas") {
        return None;
    }
    let key = parts.next()?;
    let flags = parts.next_u64()?;
    let exptime = parts.next_u64()?;
    let nbytes = parts.next_u64()?;
    if nbytes > req.len() as u64 {
        return None; // the data block cannot be present; keep usize math exact
    }
    let nbytes = nbytes as usize;
    let mode = match cmd {
        b"set" => StoreMode::Set,
        b"add" => StoreMode::Add,
        b"replace" => StoreMode::Replace,
        _ => StoreMode::Cas(parts.next_u64()?),
    };
    let noreply = matches!(parts.next(), Some(b"noreply"));
    if key.is_empty() || key.len() > crate::cache::KEY_MAX {
        return None;
    }
    let data_start = line_end + 2;
    let data_end = data_start + nbytes;
    if req.len() != data_end + 2 || &req[data_end..] != b"\r\n" {
        return None;
    }
    Some((
        StoreOp {
            mode,
            key,
            value: &req[data_start..data_end],
            flags: flags as u32,
            exptime: exptime as u32,
        },
        noreply,
    ))
}

fn store_reply(st: StoreStatus) -> &'static [u8] {
    match st {
        StoreStatus::Stored => b"STORED\r\n",
        StoreStatus::NotStored => b"NOT_STORED\r\n",
        StoreStatus::Exists => b"EXISTS\r\n",
        StoreStatus::NotFound => b"NOT_FOUND\r\n",
        StoreStatus::TooLarge => b"SERVER_ERROR object too large for cache\r\n",
        StoreStatus::OutOfMemory => b"SERVER_ERROR out of memory storing object\r\n",
    }
}

/// Whitespace tokenizer using the ctype helper from `tmstd` (the C
/// tokenizer's `isspace` walk).
struct Tokens<'a> {
    rest: &'a [u8],
}

impl<'a> Tokens<'a> {
    fn new(line: &'a [u8]) -> Self {
        Tokens { rest: line }
    }

    fn next_u64(&mut self) -> Option<u64> {
        let tok = self.next()?;
        tmstd::parse_u64(tok).and_then(|(v, used)| (used == tok.len()).then_some(v))
    }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];
    fn next(&mut self) -> Option<&'a [u8]> {
        let mut i = 0;
        while i < self.rest.len() && tmstd::isspace(self.rest[i]) {
            i += 1;
        }
        if i == self.rest.len() {
            self.rest = &[];
            return None;
        }
        let start = i;
        while i < self.rest.len() && !tmstd::isspace(self.rest[i]) {
            i += 1;
        }
        let tok = &self.rest[start..i];
        self.rest = &self.rest[i..];
        Some(tok)
    }
}

/// The binary protocol (memslap `--binary`).
pub mod binary {
    use super::*;

    /// Binary request magic.
    pub const REQ_MAGIC: u8 = 0x80;
    /// Binary response magic.
    pub const RES_MAGIC: u8 = 0x81;

    /// Binary opcodes (the subset memslap and our examples use).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(u8)]
    #[allow(missing_docs)]
    pub enum Opcode {
        Get = 0x00,
        Set = 0x01,
        Add = 0x02,
        Replace = 0x03,
        Delete = 0x04,
        Increment = 0x05,
        Decrement = 0x06,
        /// Quiet GET: misses send no response, no key echo on hits.
        /// Pipelined runs batch exactly like [`Opcode::GetKQ`].
        GetQ = 0x09,
        Noop = 0x0a,
        Version = 0x0b,
        /// GET returning the key in the response body.
        GetK = 0x0c,
        /// Quiet GETK: misses send no response, so a client can pipeline
        /// `GETKQ k1 .. GETKQ kn, Noop` as one multiget
        /// (see [`execute_pipeline`]).
        GetKQ = 0x0d,
        /// STAT: answered by a *series* of response packets, one per
        /// statistic (key = stat name, value = decimal counter), closed
        /// by a packet with an empty key and empty value. Dispatched in
        /// [`execute_pipeline`] via [`stat_responses`] — the only opcode
        /// whose single request fans out to multiple responses.
        Stat = 0x10,
        /// Quiet SET: successes send no response, so a client can pipeline
        /// `SETQ k1 .. SETQ kn, Noop` as one bulk load — the write-path
        /// twin of the GETKQ multiget; [`execute_pipeline`] runs the whole
        /// run as one batched store transaction.
        SetQ = 0x11,
        /// Quiet DELETE: successes send no response.
        DeleteQ = 0x14,
    }

    /// Binary status codes.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(u16)]
    #[allow(missing_docs)]
    pub enum Status {
        Ok = 0x0000,
        KeyNotFound = 0x0001,
        KeyExists = 0x0002,
        ValueTooLarge = 0x0003,
        /// 0x0004: a known opcode with a malformed frame layout.
        InvalidArguments = 0x0004,
        NotStored = 0x0005,
        NonNumeric = 0x0006,
        OutOfMemory = 0x0082,
        UnknownCommand = 0x0081,
        /// 0x0084: the handler panicked and was recovered by the
        /// per-request guard.
        InternalError = 0x0084,
    }

    impl Opcode {
        /// Decodes a wire opcode byte.
        pub fn from_u8(b: u8) -> Option<Opcode> {
            Some(match b {
                0x00 => Opcode::Get,
                0x01 => Opcode::Set,
                0x02 => Opcode::Add,
                0x03 => Opcode::Replace,
                0x04 => Opcode::Delete,
                0x05 => Opcode::Increment,
                0x06 => Opcode::Decrement,
                0x09 => Opcode::GetQ,
                0x0a => Opcode::Noop,
                0x0b => Opcode::Version,
                0x0c => Opcode::GetK,
                0x0d => Opcode::GetKQ,
                0x10 => Opcode::Stat,
                0x11 => Opcode::SetQ,
                0x14 => Opcode::DeleteQ,
                _ => return None,
            })
        }
    }

    impl Status {
        /// Decodes a wire status code.
        pub fn from_u16(v: u16) -> Option<Status> {
            Some(match v {
                0x0000 => Status::Ok,
                0x0001 => Status::KeyNotFound,
                0x0002 => Status::KeyExists,
                0x0003 => Status::ValueTooLarge,
                0x0004 => Status::InvalidArguments,
                0x0005 => Status::NotStored,
                0x0006 => Status::NonNumeric,
                0x0081 => Status::UnknownCommand,
                0x0082 => Status::OutOfMemory,
                0x0084 => Status::InternalError,
                _ => return None,
            })
        }
    }

    /// A decoded binary request.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Request {
        /// Command.
        pub opcode: Opcode,
        /// Opaque echoed back in the response.
        pub opaque: u32,
        /// CAS precondition (0 = none).
        pub cas: u64,
        /// Key bytes.
        pub key: Vec<u8>,
        /// Value bytes (stores).
        pub value: Vec<u8>,
        /// Client flags (stores) or delta (arithmetic).
        pub extra: u64,
    }

    /// A binary response.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Response {
        /// Outcome.
        pub status: Status,
        /// The request opcode this answers (drives wire framing: get-class
        /// hits carry a 4-byte flags extras block).
        pub opcode: Opcode,
        /// Echoed opaque.
        pub opaque: u32,
        /// Stored item's CAS (stores/gets).
        pub cas: u64,
        /// Item client flags (get-class hits; 0 otherwise).
        pub flags: u32,
        /// Key echo (GETK/GETKQ hits; empty otherwise).
        pub key: Vec<u8>,
        /// Value (gets, arithmetic results, version).
        pub value: Vec<u8>,
    }

    impl Request {
        /// Encodes to the 24-byte-header wire format. `htons`-family
        /// conversions come from `tmstd`, as in the paper's §3.4 inventory.
        pub fn encode(&self) -> Vec<u8> {
            let keylen = self.key.len() as u16;
            let extlen: u8 = match self.opcode {
                Opcode::Set | Opcode::SetQ | Opcode::Add | Opcode::Replace => 8,
                Opcode::Increment | Opcode::Decrement => 8,
                _ => 0,
            };
            let body_len = self.key.len() + self.value.len() + extlen as usize;
            let mut out = Vec::with_capacity(24 + body_len);
            out.push(REQ_MAGIC);
            out.push(self.opcode as u8);
            out.extend_from_slice(&tmstd::htons(keylen).to_ne_bytes());
            out.push(extlen);
            out.push(0); // data type
            out.extend_from_slice(&tmstd::htons(0).to_ne_bytes()); // vbucket
            out.extend_from_slice(&tmstd::htonl(body_len as u32).to_ne_bytes());
            out.extend_from_slice(&tmstd::htonl(self.opaque).to_ne_bytes());
            out.extend_from_slice(&self.cas.to_be_bytes());
            if extlen == 8 {
                out.extend_from_slice(&self.extra.to_be_bytes());
            }
            out.extend_from_slice(&self.key);
            out.extend_from_slice(&self.value);
            out
        }

        /// Decodes from the wire format.
        pub fn decode(buf: &[u8]) -> Option<Request> {
            if buf.len() < 24 || buf[0] != REQ_MAGIC {
                return None;
            }
            let opcode = Opcode::from_u8(buf[1])?;
            let keylen = u16::from_be_bytes([buf[2], buf[3]]) as usize;
            let extlen = buf[4] as usize;
            let body_len = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
            let opaque = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
            let cas = u64::from_be_bytes(buf[16..24].try_into().ok()?);
            if buf.len() < 24 + body_len || body_len < keylen + extlen {
                return None;
            }
            let extra = if extlen == 8 {
                u64::from_be_bytes(buf[24..32].try_into().ok()?)
            } else {
                0
            };
            let key = buf[24 + extlen..24 + extlen + keylen].to_vec();
            let value = buf[24 + extlen + keylen..24 + body_len].to_vec();
            Some(Request {
                opcode,
                opaque,
                cas,
                key,
                value,
                extra,
            })
        }
    }

    impl Response {
        /// Encodes to the wire format (magic [`RES_MAGIC`]). Get-class
        /// hits carry the item's client flags as the canonical 4-byte
        /// extras block; everything else has no extras.
        pub fn encode(&self) -> Vec<u8> {
            let is_get = matches!(
                self.opcode,
                Opcode::Get | Opcode::GetQ | Opcode::GetK | Opcode::GetKQ
            );
            let extlen: u8 = if is_get && self.status == Status::Ok { 4 } else { 0 };
            let body_len = extlen as usize + self.key.len() + self.value.len();
            let mut out = Vec::with_capacity(24 + body_len);
            out.push(RES_MAGIC);
            out.push(self.opcode as u8);
            out.extend_from_slice(&tmstd::htons(self.key.len() as u16).to_ne_bytes());
            out.push(extlen);
            out.push(0); // data type
            out.extend_from_slice(&tmstd::htons(self.status as u16).to_ne_bytes());
            out.extend_from_slice(&tmstd::htonl(body_len as u32).to_ne_bytes());
            out.extend_from_slice(&tmstd::htonl(self.opaque).to_ne_bytes());
            out.extend_from_slice(&self.cas.to_be_bytes());
            if extlen == 4 {
                out.extend_from_slice(&self.flags.to_be_bytes());
            }
            out.extend_from_slice(&self.key);
            out.extend_from_slice(&self.value);
            out
        }

        /// Decodes one response frame from the front of `buf`, returning
        /// it plus the frame length. `None` if the frame is incomplete,
        /// not a response, or carries an opcode/status this module does
        /// not know.
        pub fn decode(buf: &[u8]) -> Option<(Response, usize)> {
            if buf.len() < 24 || buf[0] != RES_MAGIC {
                return None;
            }
            let opcode = Opcode::from_u8(buf[1])?;
            let keylen = u16::from_be_bytes([buf[2], buf[3]]) as usize;
            let extlen = buf[4] as usize;
            let status = Status::from_u16(u16::from_be_bytes([buf[6], buf[7]]))?;
            let body_len = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
            let opaque = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
            let cas = u64::from_be_bytes(buf[16..24].try_into().ok()?);
            if buf.len() < 24 + body_len || body_len < keylen + extlen {
                return None;
            }
            let flags = if extlen >= 4 {
                u32::from_be_bytes(buf[24..28].try_into().ok()?)
            } else {
                0
            };
            let key = buf[24 + extlen..24 + extlen + keylen].to_vec();
            let value = buf[24 + extlen + keylen..24 + body_len].to_vec();
            Some((
                Response {
                    status,
                    opcode,
                    opaque,
                    cas,
                    flags,
                    key,
                    value,
                },
                24 + body_len,
            ))
        }
    }

    /// Builds a raw error response frame for a request that could not
    /// even be decoded: the raw opcode byte and opaque echo back so a
    /// pipelining client can correlate, with a short human-readable
    /// message body as real memcached sends.
    pub fn error_frame(raw_opcode: u8, opaque: u32, status: Status) -> Vec<u8> {
        let msg: &[u8] = match status {
            Status::UnknownCommand => b"Unknown command",
            Status::InvalidArguments => b"Invalid arguments",
            Status::ValueTooLarge => b"Too large",
            _ => b"Error",
        };
        let mut out = Vec::with_capacity(24 + msg.len());
        out.push(RES_MAGIC);
        out.push(raw_opcode);
        out.extend_from_slice(&tmstd::htons(0).to_ne_bytes());
        out.push(0);
        out.push(0); // data type
        out.extend_from_slice(&tmstd::htons(status as u16).to_ne_bytes());
        out.extend_from_slice(&tmstd::htonl(msg.len() as u32).to_ne_bytes());
        out.extend_from_slice(&tmstd::htonl(opaque).to_ne_bytes());
        out.extend_from_slice(&0u64.to_be_bytes());
        out.extend_from_slice(msg);
        out
    }

    /// Decodes one COMPLETE binary frame (as delimited by
    /// [`super::scan_frame`]) into a [`Request`], or produces the error
    /// response frame a real server answers without dropping the
    /// connection: [`Status::UnknownCommand`] for an unrecognized
    /// opcode, [`Status::InvalidArguments`] for a known opcode whose
    /// header lengths don't add up.
    pub fn parse_frame(frame: &[u8]) -> Result<Request, Vec<u8>> {
        debug_assert!(frame.len() >= 24 && frame[0] == REQ_MAGIC);
        let opaque = u32::from_be_bytes([frame[12], frame[13], frame[14], frame[15]]);
        if Opcode::from_u8(frame[1]).is_none() {
            return Err(error_frame(frame[1], opaque, Status::UnknownCommand));
        }
        Request::decode(frame).ok_or_else(|| error_frame(frame[1], opaque, Status::InvalidArguments))
    }

    /// Dispatches one binary request.
    ///
    /// Like [`super::execute_ascii`], a panicking handler is caught,
    /// counted, and turned into a [`Status::InternalError`] response.
    pub fn execute(cache: &McCache, w: usize, req: &Request) -> Response {
        match catch_unwind(AssertUnwindSafe(|| execute_inner(cache, w, req))) {
            Ok(resp) => resp,
            Err(_panic) => {
                cache.note_request_panic();
                Response {
                    status: Status::InternalError,
                    opcode: req.opcode,
                    opaque: req.opaque,
                    cas: 0,
                    flags: 0,
                    key: Vec::new(),
                    value: Vec::new(),
                }
            }
        }
    }

    /// Answers one [`Opcode::Stat`] request with the full multi-packet
    /// dump: one [`Status::Ok`] response per statistic from
    /// [`super::stat_pairs`] (key = stat name, value = the counter in
    /// decimal ASCII), then the canonical terminator — an empty-key,
    /// empty-value packet. A non-empty request key selects a stat
    /// subgroup, which this server does not implement: it answers a
    /// single [`Status::KeyNotFound`], as real memcached does for an
    /// unknown stat group.
    pub fn stat_responses(cache: &McCache, req: &Request) -> Vec<Response> {
        let mk = |key: Vec<u8>, value: Vec<u8>| Response {
            status: Status::Ok,
            opcode: req.opcode,
            opaque: req.opaque,
            cas: 0,
            flags: 0,
            key,
            value,
        };
        if !req.key.is_empty() {
            let mut r = mk(Vec::new(), Vec::new());
            r.status = Status::KeyNotFound;
            return vec![r];
        }
        let mut out: Vec<Response> = super::stat_pairs(cache)
            .into_iter()
            .map(|(k, v)| mk(k.as_bytes().to_vec(), v.to_string().into_bytes()))
            .collect();
        out.push(mk(Vec::new(), Vec::new()));
        out
    }

    /// Dispatches a pipelined batch of binary requests.
    ///
    /// Runs of consecutive quiet gets ([`Opcode::GetKQ`]/[`Opcode::GetQ`])
    /// — the binary protocol's multiget idiom — execute as ONE read-only
    /// fast-lane transaction via [`McCache::get_multi`], and, per the quiet
    /// semantics, misses produce no response at all. Runs of consecutive
    /// quiet sets ([`Opcode::SetQ`]) — the bulk-load idiom — execute as
    /// ONE batched store transaction via [`McCache::store_batch`], and
    /// successes produce no response. Quiet deletes ([`Opcode::DeleteQ`])
    /// suppress their success responses. Every other opcode (including
    /// the terminating `Noop`) dispatches one-by-one through [`execute`].
    /// A panic inside a batch is caught here and answered with one
    /// [`Status::InternalError`] per batched request.
    pub fn execute_pipeline(cache: &McCache, w: usize, reqs: &[Request]) -> Vec<Response> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < reqs.len() {
            if reqs[i].opcode == Opcode::SetQ {
                let mut j = i + 1;
                // CAS-carrying SETQs keep their per-op dispatch (store_batch
                // handles them, but the run stays simple without).
                while j < reqs.len() && reqs[j].opcode == Opcode::SetQ {
                    j += 1;
                }
                let batch = &reqs[i..j];
                let statuses = catch_unwind(AssertUnwindSafe(|| {
                    if cache.take_request_panic_trap() {
                        panic!("test trap: request panic");
                    }
                    let ops: Vec<StoreOp<'_>> = batch
                        .iter()
                        .map(|r| StoreOp {
                            mode: if r.cas != 0 { StoreMode::Cas(r.cas) } else { StoreMode::Set },
                            key: &r.key,
                            value: &r.value,
                            flags: r.extra as u32,
                            exptime: 0,
                        })
                        .collect();
                    cache.store_batch(w, &ops)
                }));
                match statuses {
                    Ok(statuses) => {
                        for (r, st) in batch.iter().zip(statuses) {
                            // Quiet set: success sends nothing.
                            let status = match st {
                                StoreStatus::Stored => continue,
                                StoreStatus::NotStored => Status::NotStored,
                                StoreStatus::Exists => Status::KeyExists,
                                StoreStatus::NotFound => Status::KeyNotFound,
                                StoreStatus::TooLarge => Status::ValueTooLarge,
                                StoreStatus::OutOfMemory => Status::OutOfMemory,
                            };
                            out.push(Response {
                                status,
                                opcode: r.opcode,
                                opaque: r.opaque,
                                cas: 0,
                                flags: 0,
                                key: Vec::new(),
                                value: Vec::new(),
                            });
                        }
                    }
                    Err(_panic) => {
                        cache.note_request_panic();
                        for r in batch {
                            out.push(Response {
                                status: Status::InternalError,
                                opcode: r.opcode,
                                opaque: r.opaque,
                                cas: 0,
                                flags: 0,
                                key: Vec::new(),
                                value: Vec::new(),
                            });
                        }
                    }
                }
                i = j;
                continue;
            }
            if reqs[i].opcode == Opcode::DeleteQ {
                let r = execute(cache, w, &reqs[i]);
                if r.status != Status::Ok {
                    out.push(r);
                }
                i += 1;
                continue;
            }
            if reqs[i].opcode == Opcode::Stat {
                // One request, many responses: the stat dump plus its
                // empty-key terminator, under the same panic guard.
                let rs = catch_unwind(AssertUnwindSafe(|| {
                    if cache.take_request_panic_trap() {
                        panic!("test trap: request panic");
                    }
                    stat_responses(cache, &reqs[i])
                }));
                match rs {
                    Ok(rs) => out.extend(rs),
                    Err(_panic) => {
                        cache.note_request_panic();
                        out.push(Response {
                            status: Status::InternalError,
                            opcode: reqs[i].opcode,
                            opaque: reqs[i].opaque,
                            cas: 0,
                            flags: 0,
                            key: Vec::new(),
                            value: Vec::new(),
                        });
                    }
                }
                i += 1;
                continue;
            }
            if !matches!(reqs[i].opcode, Opcode::GetKQ | Opcode::GetQ) {
                out.push(execute(cache, w, &reqs[i]));
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < reqs.len() && matches!(reqs[j].opcode, Opcode::GetKQ | Opcode::GetQ) {
                j += 1;
            }
            let batch = &reqs[i..j];
            let vals = catch_unwind(AssertUnwindSafe(|| {
                if cache.take_request_panic_trap() {
                    panic!("test trap: request panic");
                }
                let keys: Vec<&[u8]> = batch.iter().map(|r| r.key.as_slice()).collect();
                cache.get_multi(w, &keys)
            }));
            match vals {
                Ok(vals) => {
                    for (r, v) in batch.iter().zip(vals) {
                        // Quiet get: a miss sends nothing. Only GETKQ
                        // echoes the key.
                        if let Some(v) = v {
                            out.push(Response {
                                status: Status::Ok,
                                opcode: r.opcode,
                                opaque: r.opaque,
                                cas: v.cas,
                                flags: v.flags,
                                key: if r.opcode == Opcode::GetKQ {
                                    r.key.clone()
                                } else {
                                    Vec::new()
                                },
                                value: v.data,
                            });
                        }
                    }
                }
                Err(_panic) => {
                    cache.note_request_panic();
                    for r in batch {
                        out.push(Response {
                            status: Status::InternalError,
                            opcode: r.opcode,
                            opaque: r.opaque,
                            cas: 0,
                            flags: 0,
                            key: Vec::new(),
                            value: Vec::new(),
                        });
                    }
                }
            }
            i = j;
        }
        out
    }

    fn execute_inner(cache: &McCache, w: usize, req: &Request) -> Response {
        if cache.take_request_panic_trap() {
            panic!("test trap: request panic");
        }
        let mut resp = Response {
            status: Status::Ok,
            opcode: req.opcode,
            opaque: req.opaque,
            cas: 0,
            flags: 0,
            key: Vec::new(),
            value: Vec::new(),
        };
        match req.opcode {
            Opcode::Get | Opcode::GetQ | Opcode::GetK | Opcode::GetKQ => {
                match cache.get(w, &req.key) {
                    Some(v) => {
                        resp.cas = v.cas;
                        resp.flags = v.flags;
                        resp.value = v.data;
                        if matches!(req.opcode, Opcode::GetK | Opcode::GetKQ) {
                            resp.key = req.key.clone();
                        }
                    }
                    None => resp.status = Status::KeyNotFound,
                }
            }
            Opcode::Set | Opcode::SetQ | Opcode::Add | Opcode::Replace => {
                let st = if req.cas != 0 {
                    cache.cas(w, &req.key, &req.value, req.extra as u32, 0, req.cas)
                } else {
                    match req.opcode {
                        Opcode::Set | Opcode::SetQ => {
                            cache.set(w, &req.key, &req.value, req.extra as u32, 0)
                        }
                        Opcode::Add => cache.add(w, &req.key, &req.value, req.extra as u32, 0),
                        _ => cache.replace(w, &req.key, &req.value, req.extra as u32, 0),
                    }
                };
                resp.status = match st {
                    StoreStatus::Stored => Status::Ok,
                    StoreStatus::NotStored => Status::NotStored,
                    StoreStatus::Exists => Status::KeyExists,
                    StoreStatus::NotFound => Status::KeyNotFound,
                    StoreStatus::TooLarge => Status::ValueTooLarge,
                    StoreStatus::OutOfMemory => Status::OutOfMemory,
                };
            }
            Opcode::Delete | Opcode::DeleteQ => {
                if !cache.delete(w, &req.key) {
                    resp.status = Status::KeyNotFound;
                }
            }
            Opcode::Increment | Opcode::Decrement => {
                match cache.arith(w, &req.key, req.extra, req.opcode == Opcode::Increment) {
                    ArithStatus::Ok(v) => resp.value = v.to_be_bytes().to_vec(),
                    ArithStatus::NotFound => resp.status = Status::KeyNotFound,
                    ArithStatus::NonNumeric => resp.status = Status::NonNumeric,
                }
            }
            Opcode::Noop => {}
            Opcode::Stat => {
                // The server routes every frame through execute_pipeline,
                // which intercepts STAT and fans out via stat_responses.
                // A lone dispatch answers only the terminator packet.
            }
            Opcode::Version => {
                resp.value = format!("1.4.15-tm ({})", cache.branch()).into_bytes();
            }
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{McCache, McConfig};
    use crate::policy::{Branch, Stage};

    fn cache() -> crate::cache::McHandle {
        McCache::start(McConfig {
            branch: Branch::Ip(Stage::OnCommit),
            workers: 1,
            hash_power: 8,
            hash_power_max: 10,
            slab: crate::SlabConfig {
                mem_limit: 2 << 20,
                page_size: 64 << 10,
                chunk_min: 96,
                growth_factor: 1.5,
            },
            ..Default::default()
        })
    }

    #[test]
    fn ascii_set_get_roundtrip() {
        let c = cache();
        let r = execute_ascii(&c, 0, b"set mykey 42 0 5\r\nhello\r\n");
        assert_eq!(r, b"STORED\r\n");
        let r = execute_ascii(&c, 0, b"get mykey\r\n");
        assert_eq!(r, b"VALUE mykey 42 5\r\nhello\r\nEND\r\n");
        let r = execute_ascii(&c, 0, b"get missing\r\n");
        assert_eq!(r, b"END\r\n");
    }

    #[test]
    fn ascii_gets_reports_cas_and_cas_store() {
        let c = cache();
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        let r = execute_ascii(&c, 0, b"gets k\r\n");
        let text = String::from_utf8(r).unwrap();
        assert!(text.starts_with("VALUE k 0 1 "), "{text}");
        let cas: u64 = text
            .lines()
            .next()
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let r = execute_ascii(&c, 0, format!("cas k 0 0 1 {cas}\r\nB\r\n").into_bytes().as_slice());
        assert_eq!(r, b"STORED\r\n");
        let r = execute_ascii(&c, 0, format!("cas k 0 0 1 {cas}\r\nC\r\n").into_bytes().as_slice());
        assert_eq!(r, b"EXISTS\r\n");
    }

    #[test]
    fn ascii_multi_get() {
        let c = cache();
        execute_ascii(&c, 0, b"set a 0 0 1\r\nA\r\n");
        execute_ascii(&c, 0, b"set b 0 0 1\r\nB\r\n");
        let r = execute_ascii(&c, 0, b"get a b missing\r\n");
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("VALUE a 0 1\r\nA"), "{text}");
        assert!(text.contains("VALUE b 0 1\r\nB"), "{text}");
        assert!(text.ends_with("END\r\n"));
    }

    #[test]
    fn ascii_arith_delete_touch() {
        let c = cache();
        execute_ascii(&c, 0, b"set n 0 0 2\r\n41\r\n");
        assert_eq!(execute_ascii(&c, 0, b"incr n 1\r\n"), b"42\r\n");
        assert_eq!(execute_ascii(&c, 0, b"decr n 2\r\n"), b"40\r\n");
        assert_eq!(execute_ascii(&c, 0, b"incr missing 1\r\n"), b"NOT_FOUND\r\n");
        assert_eq!(execute_ascii(&c, 0, b"touch n 100\r\n"), b"TOUCHED\r\n");
        assert_eq!(execute_ascii(&c, 0, b"delete n\r\n"), b"DELETED\r\n");
        assert_eq!(execute_ascii(&c, 0, b"delete n\r\n"), b"NOT_FOUND\r\n");
    }

    #[test]
    fn ascii_request_panic_becomes_server_error() {
        let c = cache();
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        c.trip_request_panic();
        let r = execute_ascii(&c, 0, b"get k\r\n");
        assert_eq!(r, SERVER_ERROR_PANIC);
        assert_eq!(c.request_panics(), 1);
        // The worker survives: the very next request succeeds.
        let r = execute_ascii(&c, 0, b"get k\r\n");
        assert_eq!(r, b"VALUE k 0 1\r\nA\r\nEND\r\n");
        let stats = String::from_utf8(execute_ascii(&c, 0, b"stats\r\n")).unwrap();
        assert!(stats.contains("STAT request_panics 1"), "{stats}");
    }

    #[test]
    fn binary_request_panic_becomes_internal_error() {
        let c = cache();
        let get = binary::Request {
            opcode: binary::Opcode::Get,
            opaque: 0xDEAD_BEEF,
            cas: 0,
            key: b"k".to_vec(),
            value: Vec::new(),
            extra: 0,
        };
        c.trip_request_panic();
        let resp = binary::execute(&c, 0, &get);
        assert_eq!(resp.status, binary::Status::InternalError);
        assert_eq!(resp.opaque, 0xDEAD_BEEF, "opaque still echoed");
        assert_eq!(c.request_panics(), 1);
        // Recovered: a normal miss afterwards.
        let resp = binary::execute(&c, 0, &get);
        assert_eq!(resp.status, binary::Status::KeyNotFound);
    }

    #[test]
    fn ascii_errors() {
        let c = cache();
        assert_eq!(execute_ascii(&c, 0, b"bogus\r\n"), b"ERROR\r\n");
        assert_eq!(execute_ascii(&c, 0, b"no crlf"), b"ERROR\r\n");
        assert!(execute_ascii(&c, 0, b"set k x y z\r\n").starts_with(b"CLIENT_ERROR"));
        assert!(execute_ascii(&c, 0, b"set k 0 0 10\r\nshort\r\n").starts_with(b"CLIENT_ERROR"));
    }

    #[test]
    fn ascii_stats_and_version() {
        let c = cache();
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        execute_ascii(&c, 0, b"get k\r\n");
        let stats = String::from_utf8(execute_ascii(&c, 0, b"stats\r\n")).unwrap();
        assert!(stats.contains("STAT cmd_get 1"), "{stats}");
        assert!(stats.contains("STAT curr_items 1"), "{stats}");
        let v = String::from_utf8(execute_ascii(&c, 0, b"version\r\n")).unwrap();
        assert!(v.contains("1.4.15-tm"), "{v}");
        assert!(v.contains("IP-onCommit"), "{v}");
    }

    #[test]
    fn binary_roundtrip() {
        let c = cache();
        let set = binary::Request {
            opcode: binary::Opcode::Set,
            opaque: 99,
            cas: 0,
            key: b"bkey".to_vec(),
            value: b"bval".to_vec(),
            extra: 3,
        };
        // Wire encode/decode roundtrip.
        let decoded = binary::Request::decode(&set.encode()).unwrap();
        assert_eq!(decoded, set);
        let resp = binary::execute(&c, 0, &decoded);
        assert_eq!(resp.status, binary::Status::Ok);
        assert_eq!(resp.opaque, 99);
        let get = binary::Request {
            opcode: binary::Opcode::Get,
            opaque: 7,
            cas: 0,
            key: b"bkey".to_vec(),
            value: vec![],
            extra: 0,
        };
        let resp = binary::execute(&c, 0, &get);
        assert_eq!(resp.status, binary::Status::Ok);
        assert_eq!(resp.value, b"bval");
        let del = binary::Request {
            opcode: binary::Opcode::Delete,
            opaque: 1,
            cas: 0,
            key: b"bkey".to_vec(),
            value: vec![],
            extra: 0,
        };
        assert_eq!(binary::execute(&c, 0, &del).status, binary::Status::Ok);
        assert_eq!(
            binary::execute(&c, 0, &del).status,
            binary::Status::KeyNotFound
        );
    }

    #[test]
    fn binary_arith() {
        let c = cache();
        execute_ascii(&c, 0, b"set n 0 0 1\r\n5\r\n");
        let incr = binary::Request {
            opcode: binary::Opcode::Increment,
            opaque: 0,
            cas: 0,
            key: b"n".to_vec(),
            value: vec![],
            extra: 10,
        };
        let resp = binary::execute(&c, 0, &incr);
        assert_eq!(resp.status, binary::Status::Ok);
        assert_eq!(u64::from_be_bytes(resp.value.try_into().unwrap()), 15);
    }

    #[test]
    fn binary_getk_echoes_key() {
        let c = cache();
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        let getk = binary::Request {
            opcode: binary::Opcode::GetK,
            opaque: 3,
            cas: 0,
            key: b"k".to_vec(),
            value: vec![],
            extra: 0,
        };
        let decoded = binary::Request::decode(&getk.encode()).unwrap();
        assert_eq!(decoded, getk);
        let resp = binary::execute(&c, 0, &decoded);
        assert_eq!(resp.status, binary::Status::Ok);
        assert_eq!(resp.key, b"k");
        assert_eq!(resp.value, b"A");
    }

    #[test]
    fn binary_quiet_multiget_pipeline() {
        let c = cache();
        execute_ascii(&c, 0, b"set a 0 0 1\r\nA\r\n");
        execute_ascii(&c, 0, b"set b 0 0 1\r\nB\r\n");
        let q = |key: &[u8], opaque| binary::Request {
            opcode: binary::Opcode::GetKQ,
            opaque,
            cas: 0,
            key: key.to_vec(),
            value: vec![],
            extra: 0,
        };
        let noop = binary::Request {
            opcode: binary::Opcode::Noop,
            opaque: 99,
            cas: 0,
            key: vec![],
            value: vec![],
            extra: 0,
        };
        let reqs = [q(b"a", 1), q(b"missing", 2), q(b"b", 3), noop];
        let resps = binary::execute_pipeline(&c, 0, &reqs);
        // The miss is silent; only two hits plus the Noop answer.
        assert_eq!(resps.len(), 3);
        assert_eq!((resps[0].opaque, resps[0].key.as_slice()), (1, &b"a"[..]));
        assert_eq!(resps[0].value, b"A");
        assert_eq!((resps[1].opaque, resps[1].key.as_slice()), (3, &b"b"[..]));
        assert_eq!(resps[1].value, b"B");
        assert_eq!(resps[2].opaque, 99);
        // Three gets went through, batched or not.
        let s = c.stats();
        assert_eq!(s.threads.get_cmds, 3);
        assert_eq!(s.threads.get_hits, 2);
        assert_eq!(s.threads.get_misses, 1);
        assert_eq!(s.global.cmd_total, s.threads.total_cmds(), "shards folded in");
    }

    #[test]
    fn binary_pipeline_panic_answers_whole_batch() {
        let c = cache();
        let q = |key: &[u8], opaque| binary::Request {
            opcode: binary::Opcode::GetKQ,
            opaque,
            cas: 0,
            key: key.to_vec(),
            value: vec![],
            extra: 0,
        };
        c.trip_request_panic();
        let resps = binary::execute_pipeline(&c, 0, &[q(b"a", 1), q(b"b", 2)]);
        assert_eq!(resps.len(), 2);
        assert!(resps.iter().all(|r| r.status == binary::Status::InternalError));
        assert_eq!(c.request_panics(), 1);
    }

    #[test]
    fn binary_decode_rejects_garbage() {
        assert!(binary::Request::decode(b"short").is_none());
        assert!(binary::Request::decode(&[0x81; 30]).is_none(), "wrong magic");
    }

    fn magazine_cache() -> crate::cache::McHandle {
        McCache::start(McConfig {
            branch: Branch::It(Stage::OnCommit),
            workers: 1,
            hash_power: 8,
            hash_power_max: 10,
            magazine: 16,
            slab: crate::SlabConfig {
                mem_limit: 2 << 20,
                page_size: 64 << 10,
                chunk_min: 96,
                growth_factor: 1.5,
            },
            ..Default::default()
        })
    }

    #[test]
    fn ascii_pipeline_batches_storage_commands() {
        for c in [cache(), magazine_cache()] {
            let buf = b"set a 1 0 2\r\nAA\r\n\
                        set b 2 0 2\r\nBB\r\n\
                        add a 0 0 1\r\nX\r\n\
                        get a b\r\n\
                        set c 0 0 1\r\nC\r\n\
                        delete c\r\n";
            let out = execute_ascii_pipeline(&c, 0, buf);
            let text = String::from_utf8(out).unwrap();
            assert_eq!(
                text,
                "STORED\r\nSTORED\r\nNOT_STORED\r\n\
                 VALUE a 1 2\r\nAA\r\nVALUE b 2 2\r\nBB\r\nEND\r\n\
                 STORED\r\nDELETED\r\n",
                "responses stay in request order"
            );
            // The three consecutive storage commands went through one batch:
            // still counted per-op.
            assert_eq!(c.stats().threads.set_cmds, 4);
        }
    }

    #[test]
    fn ascii_pipeline_rejects_malformed_tail() {
        let c = cache();
        let out = execute_ascii_pipeline(&c, 0, b"set k 0 0 1\r\nA\r\nbogus cmd\r\n");
        assert_eq!(out, b"STORED\r\nERROR\r\n");
        // A storage command with a short data block can't be framed; the
        // unsplittable tail falls through to the single-request path.
        let out = execute_ascii_pipeline(&c, 0, b"get k\r\nset x 0 0 10\r\nshort\r\n");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("VALUE k 0 1\r\nA\r\nEND\r\n"), "{text}");
        assert!(text.contains("CLIENT_ERROR"), "{text}");
    }

    #[test]
    fn binary_setq_pipeline_is_quiet_on_success() {
        for c in [cache(), magazine_cache()] {
            let setq = |key: &[u8], value: &[u8], cas: u64, opaque| binary::Request {
                opcode: binary::Opcode::SetQ,
                opaque,
                cas,
                key: key.to_vec(),
                value: value.to_vec(),
                extra: 9,
            };
            // Wire roundtrip for the new opcode.
            let decoded = binary::Request::decode(&setq(b"k", b"v", 0, 5).encode()).unwrap();
            assert_eq!(decoded.opcode, binary::Opcode::SetQ);
            assert_eq!(decoded.extra, 9);

            let noop = binary::Request {
                opcode: binary::Opcode::Noop,
                opaque: 77,
                cas: 0,
                key: vec![],
                value: vec![],
                extra: 0,
            };
            let reqs = [
                setq(b"qa", b"va", 0, 1),
                setq(b"qb", b"vb", 0, 2),
                setq(b"qa", b"clash", 999_999, 3), // CAS mismatch: must answer
                noop,
            ];
            let resps = binary::execute_pipeline(&c, 0, &reqs);
            assert_eq!(resps.len(), 2, "two quiet successes: {resps:?}");
            assert_eq!(resps[0].status, binary::Status::KeyExists);
            assert_eq!(resps[0].opaque, 3);
            assert_eq!(resps[1].opaque, 77);
            // Both stores really landed, with the SetQ extras as flags.
            let out = execute_ascii(&c, 0, b"get qa qb\r\n");
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains("VALUE qa 9 2\r\nva"), "{text}");
            assert!(text.contains("VALUE qb 9 2\r\nvb"), "{text}");
            assert_eq!(c.stats().threads.set_cmds, 3, "quiet ops still counted");
        }
    }

    #[test]
    fn binary_deleteq_quiet_on_hit_loud_on_miss() {
        let c = cache();
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        let delq = |key: &[u8], opaque| binary::Request {
            opcode: binary::Opcode::DeleteQ,
            opaque,
            cas: 0,
            key: key.to_vec(),
            value: vec![],
            extra: 0,
        };
        let resps = binary::execute_pipeline(&c, 0, &[delq(b"k", 1), delq(b"missing", 2)]);
        assert_eq!(resps.len(), 1, "hit is silent: {resps:?}");
        assert_eq!(resps[0].status, binary::Status::KeyNotFound);
        assert_eq!(resps[0].opaque, 2);
        assert!(c.get(0, b"k").is_none());
    }

    #[test]
    fn ascii_noreply_suppresses_responses() {
        let c = cache();
        assert_eq!(execute_ascii(&c, 0, b"set k 7 0 1 noreply\r\nA\r\n"), b"");
        assert_eq!(execute_ascii(&c, 0, b"get k\r\n"), b"VALUE k 7 1\r\nA\r\nEND\r\n");
        assert_eq!(execute_ascii(&c, 0, b"set n 0 0 1 noreply\r\n5\r\n"), b"");
        assert_eq!(execute_ascii(&c, 0, b"incr n 1 noreply\r\n"), b"");
        assert_eq!(execute_ascii(&c, 0, b"get n\r\n"), b"VALUE n 0 1\r\n6\r\nEND\r\n");
        assert_eq!(execute_ascii(&c, 0, b"touch n 10 noreply\r\n"), b"");
        assert_eq!(execute_ascii(&c, 0, b"delete n noreply\r\n"), b"");
        assert_eq!(execute_ascii(&c, 0, b"get n\r\n"), b"END\r\n");
        // Quiet ops inside a batched pipeline stay quiet; loud ones answer.
        let out = execute_ascii_pipeline(
            &c,
            0,
            b"set a 0 0 1 noreply\r\nA\r\nset b 0 0 1\r\nB\r\nset c 0 0 1 noreply\r\nC\r\n",
        );
        assert_eq!(out, b"STORED\r\n");
        assert_eq!(execute_ascii(&c, 0, b"get a c\r\n").len(), b"VALUE a 0 1\r\nA\r\nVALUE c 0 1\r\nC\r\nEND\r\n".len());
    }

    #[test]
    fn ascii_oversized_key_is_client_error_not_panic() {
        let c = cache();
        let big = vec![b'x'; crate::cache::KEY_MAX + 1];
        let mut req = b"set ".to_vec();
        req.extend_from_slice(&big);
        req.extend_from_slice(b" 0 0 1\r\nA\r\n");
        assert!(execute_ascii(&c, 0, &req).starts_with(b"CLIENT_ERROR"));
        let mut req = b"get ".to_vec();
        req.extend_from_slice(&big);
        req.extend_from_slice(b"\r\n");
        assert!(execute_ascii(&c, 0, &req).starts_with(b"CLIENT_ERROR"));
        assert!(execute_ascii(&c, 0, b"delete \r\n").starts_with(b"CLIENT_ERROR"));
        assert_eq!(c.request_panics(), 0, "rejected at the protocol layer");
    }

    #[test]
    fn scan_frame_reports_exact_lengths() {
        assert_eq!(scan_frame(b""), FrameScan::Incomplete);
        assert_eq!(scan_frame(b"get k"), FrameScan::Incomplete);
        assert_eq!(scan_frame(b"get k\r\n"), FrameScan::Ascii { len: 7 });
        assert_eq!(scan_frame(b"get k\r\nget j\r\n"), FrameScan::Ascii { len: 7 });
        // A set's frame spans the data block; short data is Incomplete.
        assert_eq!(scan_frame(b"set k 0 0 5\r\nhel"), FrameScan::Incomplete);
        assert_eq!(
            scan_frame(b"set k 0 0 5\r\nhello\r\n"),
            FrameScan::Ascii { len: 20 }
        );
        // Unparseable storage header: the line alone is the frame.
        assert_eq!(scan_frame(b"set k x y z\r\n"), FrameScan::Ascii { len: 13 });
        // Binary framing: header then body.
        let req = binary::Request {
            opcode: binary::Opcode::Set,
            opaque: 1,
            cas: 0,
            key: b"k".to_vec(),
            value: b"v".to_vec(),
            extra: 0,
        }
        .encode();
        assert_eq!(scan_frame(&req[..10]), FrameScan::Incomplete);
        assert_eq!(scan_frame(&req[..24]), FrameScan::Incomplete);
        assert_eq!(scan_frame(&req), FrameScan::Binary { len: req.len() });
    }

    #[test]
    fn scan_frame_oversized_and_unsyncable_inputs() {
        // Oversized ASCII value: error now, swallow the in-flight block.
        let line = format!("set k 0 0 {}\r\n", ASCII_VALUE_MAX + 1);
        match scan_frame(line.as_bytes()) {
            FrameScan::Error {
                consumed,
                swallow,
                close,
                response,
            } => {
                assert_eq!(consumed, line.len());
                assert_eq!(swallow, ASCII_VALUE_MAX + 3);
                assert!(!close, "oversized value keeps the connection");
                assert!(response.starts_with(b"SERVER_ERROR object too large"));
            }
            other => panic!("expected Error, got {other:?}"),
        }
        // A command line that can never terminate closes the connection.
        let junk = vec![b'a'; ASCII_LINE_MAX + 1];
        match scan_frame(&junk) {
            FrameScan::Error { close, .. } => assert!(close),
            other => panic!("expected Error, got {other:?}"),
        }
        // An absurd declared length — up to u64::MAX, which would
        // overflow `swallow + 2` — is unsyncable: no swallow, close.
        for n in [ASCII_SWALLOW_MAX + 1, u64::MAX - 1, u64::MAX] {
            let line = format!("set k 0 0 {n}\r\n");
            match scan_frame(line.as_bytes()) {
                FrameScan::Error {
                    consumed,
                    swallow,
                    close,
                    response,
                } => {
                    assert_eq!(consumed, line.len());
                    assert_eq!(swallow, 0, "nothing swallowable about {n} bytes");
                    assert!(close, "a lying header is beyond resync");
                    assert!(response.starts_with(b"SERVER_ERROR object too large"));
                }
                other => panic!("expected Error for nbytes {n}, got {other:?}"),
            }
        }
        // The same headers through the single-request executor and the
        // batch parser: answered / rejected without offset overflow.
        let c = cache();
        let huge = format!("set k 0 0 {}\r\nx\r\n", u64::MAX);
        assert_eq!(
            execute_ascii(&c, 0, huge.as_bytes()),
            b"CLIENT_ERROR bad data chunk\r\n".to_vec()
        );
        assert!(parse_store_op(huge.as_bytes()).is_none());
        assert!(ascii_request_len(huge.as_bytes()).is_none());
        // A binary header promising a huge body closes too.
        let mut frame = vec![0u8; 24];
        frame[0] = binary::REQ_MAGIC;
        frame[1] = 0x01;
        frame[8..12].copy_from_slice(&(BINARY_BODY_MAX as u32 + 1).to_be_bytes());
        match scan_frame(&frame) {
            FrameScan::Error { close, response, .. } => {
                assert!(close);
                assert_eq!(response[0], binary::RES_MAGIC);
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn ascii_pipeline_consumed_leaves_straddled_set() {
        let c = cache();
        // First socket read ends mid-data-block: nothing consumed.
        let part = b"get missing\r\nset s 0 0 5\r\nhel";
        let out = execute_ascii_pipeline_consumed(&c, 0, part);
        assert_eq!(out.consumed, 13, "only the get consumed");
        assert_eq!(out.responses, b"END\r\n");
        assert_eq!((out.swallow, out.close), (0, false));
        // Second read completes the block: the set executes.
        let full = b"set s 0 0 5\r\nhello\r\nget s\r\n";
        let out = execute_ascii_pipeline_consumed(&c, 0, full);
        assert_eq!(out.consumed, full.len());
        assert_eq!(out.responses, b"STORED\r\nVALUE s 0 5\r\nhello\r\nEND\r\n");
    }

    #[test]
    fn ascii_pipeline_consumed_reports_error_state() {
        let c = cache();
        let buf = format!("set ok 0 0 1\r\nA\r\nset big 0 0 {}\r\n", ASCII_VALUE_MAX + 1);
        let out = execute_ascii_pipeline_consumed(&c, 0, buf.as_bytes());
        assert_eq!(out.consumed, buf.len());
        assert_eq!(out.swallow, ASCII_VALUE_MAX + 3);
        assert!(!out.close);
        let text = String::from_utf8(out.responses).unwrap();
        assert!(text.starts_with("STORED\r\nSERVER_ERROR object too large"), "{text}");
    }

    #[test]
    fn binary_response_wire_roundtrip() {
        let resp = binary::Response {
            status: binary::Status::Ok,
            opcode: binary::Opcode::GetK,
            opaque: 0xABCD,
            cas: 77,
            flags: 42,
            key: b"k".to_vec(),
            value: b"hello".to_vec(),
        };
        let wire = resp.encode();
        let (decoded, used) = binary::Response::decode(&wire).unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(decoded, resp);
        // Non-get responses carry no extras and flags decode as 0.
        let resp = binary::Response {
            status: binary::Status::KeyExists,
            opcode: binary::Opcode::Set,
            opaque: 9,
            cas: 0,
            flags: 0,
            key: Vec::new(),
            value: Vec::new(),
        };
        let wire = resp.encode();
        assert_eq!(wire.len(), 24);
        let (decoded, _) = binary::Response::decode(&wire).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn binary_parse_frame_answers_unknown_and_malformed() {
        // Unknown opcode: UnknownCommand, opaque echoed, connection keeps.
        let mut frame = vec![0u8; 24];
        frame[0] = binary::REQ_MAGIC;
        frame[1] = 0x7f;
        frame[12..16].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        let err = binary::parse_frame(&frame).unwrap_err();
        assert_eq!(err[0], binary::RES_MAGIC);
        assert_eq!(u16::from_be_bytes([err[6], err[7]]), 0x0081);
        assert_eq!(u32::from_be_bytes([err[12], err[13], err[14], err[15]]), 0xDEAD_BEEF);
        // Known opcode, bogus layout (keylen > body): InvalidArguments.
        let mut frame = vec![0u8; 24];
        frame[0] = binary::REQ_MAGIC;
        frame[1] = 0x00; // Get
        frame[2..4].copy_from_slice(&10u16.to_be_bytes());
        let err = binary::parse_frame(&frame).unwrap_err();
        assert_eq!(u16::from_be_bytes([err[6], err[7]]), 0x0004);
    }

    #[test]
    fn binary_getq_is_quiet_and_batches() {
        let c = cache();
        execute_ascii(&c, 0, b"set a 5 0 1\r\nA\r\n");
        let q = |key: &[u8], opaque| binary::Request {
            opcode: binary::Opcode::GetQ,
            opaque,
            cas: 0,
            key: key.to_vec(),
            value: vec![],
            extra: 0,
        };
        let noop = binary::Request {
            opcode: binary::Opcode::Noop,
            opaque: 9,
            cas: 0,
            key: vec![],
            value: vec![],
            extra: 0,
        };
        let resps = binary::execute_pipeline(&c, 0, &[q(b"a", 1), q(b"missing", 2), noop]);
        assert_eq!(resps.len(), 2, "miss is silent: {resps:?}");
        assert_eq!(resps[0].opaque, 1);
        assert_eq!(resps[0].value, b"A");
        assert_eq!(resps[0].flags, 5);
        assert!(resps[0].key.is_empty(), "GETQ does not echo the key");
        assert_eq!(resps[1].opaque, 9);
        assert_eq!(c.stats().threads.get_cmds, 2, "both gets went through");
    }

    #[test]
    fn ascii_stats_reports_write_path_counters() {
        let c = magazine_cache();
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        // A silent store: same key, same bytes.
        execute_ascii(&c, 0, b"set k 0 0 1\r\nA\r\n");
        let stats = String::from_utf8(execute_ascii(&c, 0, b"stats\r\n")).unwrap();
        for key in [
            "silent_store_elisions",
            "clock_tick_elisions",
            "clock_cas_retries",
            "clock_shard_syncs",
            "orec_stripe_conflicts",
            "seqlock_bump_elisions",
            "magazine_refills",
            "magazine_flushes",
        ] {
            assert!(stats.contains(&format!("STAT {key} ")), "missing {key}: {stats}");
        }
        let refills: u64 = stats
            .lines()
            .find_map(|l| l.strip_prefix("STAT magazine_refills "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(refills > 0, "magazine cache must have refilled: {stats}");
    }
}
