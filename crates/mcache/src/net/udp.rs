//! The UDP transport: memcached's connectionless front door for
//! GET-heavy traffic.
//!
//! Every datagram carries memcached's 8-byte UDP frame header:
//!
//! ```text
//! 0      2      4      6      8
//! +------+------+------+------+
//! | rid  | seq  | total| rsvd |   (big-endian u16 each)
//! +------+------+------+------+
//! ```
//!
//! - **Requests** must fit one datagram (`seq == 0 && total == 1`);
//!   multi-datagram requests are dropped and counted as frame errors,
//!   exactly as memcached does.
//! - **Responses** echo the request id and may span several datagrams:
//!   each carries at most [`UDP_PAYLOAD_MAX`] payload bytes, `seq`
//!   counts up from 0, `total` is the datagram count. The client
//!   reassembles by `(rid, seq)` — datagrams may arrive out of order.
//! - There is no connection, so `quit` and close-marking protocol
//!   errors simply end that datagram's run; a response too large for
//!   65535 datagrams is dropped (the client's retry will shrink it or
//!   move to TCP, per the protocol spec's "get over UDP is advisory").
//!
//! One nonblocking socket is shared by every worker (each registers its
//! own clone in its poller and drains until `WouldBlock`), so a
//! datagram burst is served by whichever workers wake first —
//! memcached's UDP mode does the same across its worker threads.

use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::Ordering;

use crate::cache::McCache;

use super::conn::run_frames;
use super::Shared;

/// The 8-byte memcached UDP frame header.
pub const UDP_HEADER: usize = 8;

/// Maximum total datagram size we emit — memcached's canonical 1400
/// bytes, chosen to dodge ethernet-MTU fragmentation.
pub const UDP_DATAGRAM_MAX: usize = 1400;

/// Response payload bytes per datagram.
pub const UDP_PAYLOAD_MAX: usize = UDP_DATAGRAM_MAX - UDP_HEADER;

/// Encodes the frame header.
pub fn encode_header(rid: u16, seq: u16, total: u16) -> [u8; UDP_HEADER] {
    let mut h = [0u8; UDP_HEADER];
    h[..2].copy_from_slice(&rid.to_be_bytes());
    h[2..4].copy_from_slice(&seq.to_be_bytes());
    h[4..6].copy_from_slice(&total.to_be_bytes());
    h
}

/// Decodes a frame header; `None` if the datagram is too short.
pub fn decode_header(datagram: &[u8]) -> Option<(u16, u16, u16)> {
    if datagram.len() < UDP_HEADER {
        return None;
    }
    Some((
        u16::from_be_bytes([datagram[0], datagram[1]]),
        u16::from_be_bytes([datagram[2], datagram[3]]),
        u16::from_be_bytes([datagram[4], datagram[5]]),
    ))
}

/// Largest request datagram we accept. A single datagram cannot
/// exceed 64KB by UDP itself; the buffer matches.
const RECV_BUF: usize = 64 << 10;

/// Drains up to `max_datagrams` requests off the shared socket.
/// Returns `(busy, drained)`: whether any datagram was served and
/// whether the socket was drained to `WouldBlock` (edge-triggered
/// callers must re-pump when `drained` is false).
pub(crate) fn pump_udp(
    sock: &UdpSocket,
    cache: &McCache,
    w: usize,
    shared: &Shared,
    max_datagrams: usize,
) -> (bool, bool) {
    let mut buf = vec![0u8; RECV_BUF];
    let mut busy = false;
    for _ in 0..max_datagrams {
        match sock.recv_from(&mut buf) {
            Ok((n, peer)) => {
                busy = true;
                shared.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                shared.stats.udp_datagrams_rx.fetch_add(1, Ordering::Relaxed);
                serve_datagram(sock, cache, w, shared, &buf[..n], peer);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return (busy, true),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Per-peer ICMP errors (port unreachable from a gone
            // client) surface here; skip the datagram, keep serving.
            Err(_) => return (busy, true),
        }
    }
    (busy, false)
}

/// Parses the frame header, runs the payload through the same coalesced
/// frame dispatcher the stream transports use, and fans the response
/// out as sequenced datagrams.
fn serve_datagram(
    sock: &UdpSocket,
    cache: &McCache,
    w: usize,
    shared: &Shared,
    datagram: &[u8],
    peer: SocketAddr,
) {
    let Some((rid, seq, total)) = decode_header(datagram) else {
        shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    if seq != 0 || total != 1 {
        // Multi-datagram requests are not a thing in the protocol.
        shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let payload = &datagram[UDP_HEADER..];
    if payload.is_empty() {
        return;
    }
    let outcome = run_frames(cache, w, shared, payload);
    if outcome.consumed + outcome.swallow < payload.len() && outcome.out.is_empty() {
        // A truncated tail with nothing served: the datagram carried a
        // partial frame that can never complete (no stream to read).
        shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if outcome.consumed + outcome.swallow < payload.len() {
        // Served what was complete; the partial tail is an error.
        shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
    }
    if outcome.out.is_empty() {
        return; // all-noreply runs answer nothing
    }
    let chunks: Vec<&[u8]> = outcome.out.chunks(UDP_PAYLOAD_MAX).collect();
    if chunks.len() > u16::MAX as usize {
        // Cannot be sequenced in 16 bits; drop, as memcached drops
        // responses that exceed the UDP reply window.
        shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let total_out = chunks.len() as u16;
    let mut wire = Vec::with_capacity(UDP_DATAGRAM_MAX);
    for (i, chunk) in chunks.iter().enumerate() {
        wire.clear();
        wire.extend_from_slice(&encode_header(rid, i as u16, total_out));
        wire.extend_from_slice(chunk);
        // Best-effort: UDP is lossy by contract, so a full socket
        // buffer drops the datagram rather than stalling the worker.
        if sock.send_to(&wire, peer).is_ok() {
            shared
                .stats
                .bytes_written
                .fetch_add(wire.len() as u64, Ordering::Relaxed);
            shared.stats.udp_datagrams_tx.fetch_add(1, Ordering::Relaxed);
        }
    }
}
