//! Readiness notification: a thin std-only wrapper over the raw Linux
//! `epoll` interface.
//!
//! The workspace is hermetic — no `libc` crate — so the three epoll
//! entry points are declared as raw `extern "C"` symbols against the C
//! library `std` already links, the same technique `mcached` uses for
//! `signal(2)`. Everything is `#[cfg(target_os = "linux")]`; on other
//! platforms [`Poller::new`] reports `Unsupported` and the server falls
//! back to the portable polling loop ([`super::EventLoop::Poll`]).
//!
//! Registration protocol (DESIGN §16):
//!
//! - every fd is registered **edge-triggered** (`EPOLLET`), so the
//!   kernel wakes a worker exactly once per readiness transition and
//!   the worker must drain until `WouldBlock` — which the connection
//!   state machine's pump already does;
//! - read interest (`EPOLLIN | EPOLLRDHUP`) is permanent for the life
//!   of the fd;
//! - write interest (`EPOLLOUT`) is armed only while a connection has
//!   pending response bytes and disarmed the moment the buffer drains,
//!   so an idle writable socket never wakes anybody (the arm/disarm
//!   signal is exactly the backpressure state from PR 7).

#[cfg(not(target_os = "linux"))]
use std::io;

/// One readiness event: the registration token plus edge flags.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    /// The `u64` token passed at registration (a connection slot index
    /// or one of the listener/UDP sentinels).
    pub(crate) token: u64,
    /// Readable — includes `EPOLLERR`/`EPOLLHUP`/`EPOLLRDHUP`, which
    /// must drive a read so the pump observes the error or EOF.
    pub(crate) readable: bool,
    /// Writable (`EPOLLOUT`).
    pub(crate) writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::unix::io::RawFd;

    // <sys/epoll.h>, x86_64/aarch64 Linux ABI. The event struct is
    // packed on x86_64 (the kernel ABI predates natural alignment).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// One epoll instance. Each network worker owns exactly one, so its
    /// ready set only ever names connections that worker owns.
    pub(crate) struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLRDHUP | EPOLLET | if writable { EPOLLOUT } else { 0 },
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` edge-triggered with permanent read interest;
        /// `writable` arms `EPOLLOUT` too.
        pub(crate) fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, writable)
        }

        /// Re-registers `fd` — the EPOLLOUT arm/disarm edge.
        pub(crate) fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, writable)
        }

        /// Deregisters `fd`. Closing an fd removes it implicitly; this
        /// exists for the reaper, which deregisters before the stream
        /// drop so a same-batch stale event can never land on a reused
        /// slot.
        pub(crate) fn delete(&self, fd: RawFd) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Waits up to `timeout_ms` (0 = poll, -1 = forever) and appends
        /// the ready set to `out`. EINTR reads as an empty set.
        pub(crate) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    // Error/hangup edges count as readable so the next
                    // read(2) surfaces the condition to the pump.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(target_os = "linux")]
pub(crate) use sys::Poller;

/// Non-Linux stub: construction fails, pushing [`super::worker_loop`]
/// onto the portable polling backend.
#[cfg(not(target_os = "linux"))]
pub(crate) struct Poller;

#[cfg(not(target_os = "linux"))]
impl Poller {
    pub(crate) fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only; use EventLoop::Poll",
        ))
    }

    pub(crate) fn add(&self, _fd: i32, _token: u64, _writable: bool) -> io::Result<()> {
        unreachable!("stub poller cannot be constructed")
    }

    pub(crate) fn modify(&self, _fd: i32, _token: u64, _writable: bool) -> io::Result<()> {
        unreachable!("stub poller cannot be constructed")
    }

    pub(crate) fn delete(&self, _fd: i32) {}

    pub(crate) fn wait(&mut self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
        unreachable!("stub poller cannot be constructed")
    }
}
