//! Per-connection state machine: buffer management, incremental frame
//! scanning, and coalesced dispatch into the protocol layer.
//!
//! The same state machine serves TCP and Unix-domain streams (the
//! [`Stream`] enum) and both event backends: the polling loop pumps
//! every connection each round, the epoll loop pumps on readiness
//! edges and uses the [`Pump::repump`] signal to keep draining work
//! that a single pump capped (edge-triggered epoll only re-notifies on
//! new bytes, so capped work must be carried by the worker, not the
//! kernel).

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::cache::McCache;
use crate::proto::{self, binary, FrameScan};

use super::Shared;

/// Upper bound on bytes a single pump ingests before dispatching, so
/// one fire-hosing client cannot grow its buffer unboundedly between
/// dispatches.
const MAX_READS_PER_PUMP: usize = 16;

/// Upper bound on frames per coalesced run. Runs normally end at the
/// client's real burst boundary; this cap only bites on degenerate
/// bursts, keeping one run's responses (and one batched transaction)
/// bounded so the dispatch output budget is checked at least this
/// often.
const MAX_FRAMES_PER_RUN: usize = 64;

/// A connected byte stream: TCP or Unix-domain. Both are nonblocking
/// and drive the identical frame scanner and dispatcher.
pub(crate) enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    /// The raw fd, for epoll registration.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Unix(s) => s.as_raw_fd(),
        }
    }
}

/// What one pump did and what the worker owes the connection next.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pump {
    /// Keep the connection registered (false = close it now).
    pub(crate) keep: bool,
    /// Any bytes moved — the polling backend's idle-sleep signal.
    pub(crate) busy: bool,
    /// Work remains that no readiness edge will announce: the read cap
    /// stopped short of `WouldBlock`, or dispatch hit its output budget
    /// with complete frames still buffered. The epoll worker must pump
    /// again without waiting; the polling worker re-pumps every round
    /// anyway.
    pub(crate) repump: bool,
}

impl Pump {
    fn closed(busy: bool) -> Pump {
        Pump { keep: false, busy, repump: false }
    }
}

pub(crate) struct Connection {
    stream: Stream,
    /// Unconsumed request bytes; the head is always a frame boundary
    /// (or the inside of a swallowed block, tracked by `swallow`).
    rbuf: Vec<u8>,
    /// Pending response bytes from `wpos` on.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Bytes still to discard as they arrive (an oversized data block).
    swallow: usize,
    /// Close once `wbuf` drains (after `quit` or an unsyncable error).
    close_after_flush: bool,
    /// Last moment any bytes moved on this connection — the idle
    /// reaper's clock.
    pub(crate) last_activity: Instant,
    /// Whether this connection is currently registered with `EPOLLOUT`
    /// armed (epoll backend only; tracked here so the worker issues
    /// `epoll_ctl` only on arm/disarm edges, not every pump).
    pub(crate) epollout_armed: bool,
    /// Whether this connection sits in the worker's hot (repump) list,
    /// so the list stays duplicate-free.
    pub(crate) hot: bool,
}

impl Connection {
    pub(crate) fn new(stream: Stream) -> Connection {
        Connection {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            swallow: 0,
            close_after_flush: false,
            last_activity: Instant::now(),
            epollout_armed: false,
            hot: false,
        }
    }

    /// The raw fd, for epoll registration.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        self.stream.raw_fd()
    }

    /// Response bytes still owed to the peer — EPOLLOUT wants arming
    /// while this is nonzero.
    pub(crate) fn pending_out(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// One pump round: flush pending writes, drain the socket, dispatch
    /// every complete frame, flush again. Works identically for both
    /// backends; see [`Pump`] for what the worker does with the result.
    pub(crate) fn pump(&mut self, cache: &McCache, w: usize, shared: &Shared) -> Pump {
        let mut busy = false;
        if !self.flush(shared, &mut busy) {
            return Pump::closed(busy);
        }
        // Backpressure: a client that pipelines requests but does not
        // drain responses parks here — no reads, no dispatch — until
        // its backlog flushes below the high-water mark, so `wbuf`
        // cannot grow without bound (memcached's conn state machine
        // does the same by leaving conn_mwrite until the buffer
        // drains). Parking is edge-safe: parked implies the last write
        // hit `WouldBlock`, so an EPOLLOUT edge is guaranteed and the
        // next pump starts with the flush above.
        if self.pending_out() >= shared.cfg.wbuf_high_water.max(1) {
            shared
                .stats
                .backpressure_stalls
                .fetch_add(1, Ordering::Relaxed);
            if busy {
                self.last_activity = Instant::now();
            }
            return Pump { keep: true, busy, repump: false };
        }
        let mut chunk = vec![0u8; shared.cfg.read_chunk];
        let mut peer_closed = false;
        let mut hit_read_cap = true;
        for _ in 0..MAX_READS_PER_PUMP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    peer_closed = true;
                    hit_read_cap = false;
                    break;
                }
                Ok(n) => {
                    busy = true;
                    shared.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    hit_read_cap = false;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Pump::closed(busy),
            }
        }
        let more_frames = self.dispatch(cache, w, shared);
        if !self.flush(shared, &mut busy) {
            return Pump::closed(busy);
        }
        if busy {
            self.last_activity = Instant::now();
        }
        if peer_closed {
            // Whatever could be answered was; a half-open client gets
            // the remaining responses dropped with the connection, as
            // memcached does.
            return Pump::closed(busy);
        }
        if self.close_after_flush && self.wpos == self.wbuf.len() {
            return Pump::closed(busy);
        }
        Pump {
            keep: true,
            busy,
            // The read cap stopping short of `WouldBlock` means bytes
            // may still sit in the socket buffer with no future edge to
            // announce them; budget-capped dispatch leaves complete
            // frames in `rbuf` the same way.
            repump: hit_read_cap || more_frames,
        }
    }

    /// Nonblocking write of the pending response bytes. Returns `false`
    /// when the connection died.
    fn flush(&mut self, shared: &Shared, busy: &mut bool) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    *busy = true;
                    self.wpos += n;
                    shared.stats.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        true
    }

    /// Executes every complete frame at the head of `rbuf`. Returns
    /// whether complete frames may remain buffered (the dispatch output
    /// budget stopped the run early).
    fn dispatch(&mut self, cache: &McCache, w: usize, shared: &Shared) -> bool {
        if self.swallow > 0 {
            let n = self.swallow.min(self.rbuf.len());
            self.rbuf.drain(..n);
            self.swallow -= n;
            if self.swallow > 0 {
                return false;
            }
        }
        if self.rbuf.is_empty() {
            return false;
        }
        let outcome = run_frames(cache, w, shared, &self.rbuf);
        self.wbuf.extend_from_slice(&outcome.out);
        self.rbuf.drain(..outcome.consumed);
        self.swallow = outcome.swallow;
        if outcome.close {
            self.close_after_flush = true;
        }
        outcome.more && !outcome.close
    }
}

pub(crate) struct DispatchOutcome {
    pub(crate) out: Vec<u8>,
    pub(crate) consumed: usize,
    pub(crate) swallow: usize,
    pub(crate) close: bool,
    /// The run stopped on its output budget with bytes (possibly whole
    /// frames) left unconsumed — the caller must run again without
    /// waiting for more input.
    pub(crate) more: bool,
}

/// Scans `buf` frame by frame and executes coalesced runs: consecutive
/// ASCII frames via [`proto::execute_ascii_run`] (consecutive stores →
/// one batched transaction), consecutive binary frames via
/// [`binary::execute_pipeline`] (GETQ/GETKQ and SETQ runs batch). The
/// batch boundary is exactly the bytes the client's burst put in the
/// buffer. Shared by the stream transports (via [`Connection`]) and the
/// UDP endpoint (one datagram payload = one run).
pub(crate) fn run_frames(cache: &McCache, w: usize, shared: &Shared, buf: &[u8]) -> DispatchOutcome {
    let mut out = Vec::new();
    let mut consumed = 0;
    let mut swallow = 0;
    let mut close = false;
    let mut more = false;
    let mut ascii_run: Vec<&[u8]> = Vec::new();
    let mut bin_run: Vec<binary::Request> = Vec::new();

    // Flushes whichever run is pending (at most one is non-empty).
    macro_rules! flush_runs {
        () => {
            if !ascii_run.is_empty() {
                out.extend_from_slice(&proto::execute_ascii_run(cache, w, &ascii_run));
                ascii_run.clear();
            }
            if !bin_run.is_empty() {
                for r in binary::execute_pipeline(cache, w, &bin_run) {
                    out.extend_from_slice(&r.encode());
                }
                bin_run.clear();
            }
        };
    }

    // One dispatch may produce at most a high-water mark's worth of
    // responses (plus one run): past that the remaining frames stay
    // buffered for later pumps, where the backpressure gate decides
    // whether they run. Without this, the frames already ingested into
    // `rbuf` could amplify into an arbitrarily large `out` in a single
    // dispatch — budget-checking only future reads would not bound it.
    let out_budget = shared.cfg.wbuf_high_water.max(1);
    loop {
        if out.len() >= out_budget {
            more = consumed < buf.len();
            break;
        }
        if ascii_run.len() >= MAX_FRAMES_PER_RUN || bin_run.len() >= MAX_FRAMES_PER_RUN {
            flush_runs!();
            continue;
        }
        match proto::scan_frame(&buf[consumed..]) {
            FrameScan::Incomplete => break,
            FrameScan::Ascii { len } => {
                let frame = &buf[consumed..consumed + len];
                consumed += len;
                // Connection-level commands the protocol layer cannot
                // answer: `quit` and the net-stat splice on `stats`.
                if frame == b"quit\r\n" {
                    flush_runs!();
                    close = true;
                    break;
                }
                if frame == b"stats\r\n" {
                    flush_runs!();
                    out.extend_from_slice(&stats_with_net(cache, w, shared));
                    continue;
                }
                if !bin_run.is_empty() {
                    flush_runs!();
                }
                ascii_run.push(frame);
            }
            FrameScan::Binary { len } => {
                let frame = &buf[consumed..consumed + len];
                consumed += len;
                if !ascii_run.is_empty() {
                    flush_runs!();
                }
                match binary::parse_frame(frame) {
                    Ok(req) => bin_run.push(req),
                    Err(resp) => {
                        // Answer in order, then keep going: a bad frame
                        // is delimited, the connection stays synced.
                        flush_runs!();
                        shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                        out.extend_from_slice(&resp);
                    }
                }
            }
            FrameScan::Error {
                consumed: c,
                swallow: s,
                close: cl,
                response,
            } => {
                flush_runs!();
                shared.stats.frame_errors.fetch_add(1, Ordering::Relaxed);
                out.extend_from_slice(&response);
                consumed += c;
                swallow = s;
                close = cl;
                // Bytes may remain past the swallow region; with no
                // further reads guaranteed, the caller re-runs once the
                // swallow drains. A spurious re-run costs one
                // `scan_frame` returning `Incomplete`.
                more = !cl && swallow == 0 && consumed < buf.len();
                break;
            }
        }
    }
    flush_runs!();
    DispatchOutcome {
        out,
        consumed,
        swallow,
        close,
        more,
    }
}

/// The cache's `stats` response with the server-wide wire counters
/// spliced in before the trailing `END`.
fn stats_with_net(cache: &McCache, w: usize, shared: &Shared) -> Vec<u8> {
    let base = proto::execute_ascii(cache, w, b"stats\r\n");
    let Some(cut) = base.len().checked_sub(b"END\r\n".len()).filter(|&c| &base[c..] == b"END\r\n")
    else {
        return base; // a panicked handler answered SERVER_ERROR
    };
    let mut out = base[..cut].to_vec();
    let ns = shared.stats.snapshot();
    for (k, v) in [
        ("curr_connections", ns.curr_connections),
        ("total_connections", ns.total_connections),
        ("bytes_read", ns.bytes_read),
        ("bytes_written", ns.bytes_written),
        ("frame_errors", ns.frame_errors),
        ("backpressure_stalls", ns.backpressure_stalls),
        ("accept_errors", ns.accept_errors),
        ("conn_timeouts", ns.conn_timeouts),
        ("udp_datagrams_rx", ns.udp_datagrams_rx),
        ("udp_datagrams_tx", ns.udp_datagrams_tx),
    ] {
        out.extend_from_slice(format!("STAT {k} {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"END\r\n");
    out
}
