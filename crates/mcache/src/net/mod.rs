//! The wire front end: puts the transactionalized cache on the wire.
//!
//! Architecture (DESIGN §12, §16):
//!
//! - **Sharded accept, thread-per-core workers.** The nonblocking
//!   listeners are cloned into every worker thread; each worker
//!   accepts directly off the shared sockets (the kernel load-balances
//!   `accept` across the clones) and owns the connections it accepted
//!   for their whole life. Worker `w` drives the cache exclusively
//!   through worker slot `w`, so the STM's per-worker descriptors,
//!   stats shards and slab magazines all stay thread-private — no
//!   cross-thread handoff anywhere on the request path.
//! - **Readiness-driven service.** On Linux each worker owns one epoll
//!   instance ([`EventLoop::Epoll`], the default): its listener clones,
//!   the shared UDP socket, and its connections are registered
//!   edge-triggered, read interest is permanent, and `EPOLLOUT` is
//!   armed only while a connection owes response bytes (the PR 7
//!   backpressure marks double as the arm/disarm signal). Idle workers
//!   sleep in `epoll_wait` — near-zero idle CPU, no sleep-quantum tail
//!   latency, and scale to 10k mostly-idle connections. The PR 6
//!   polling loop remains as [`EventLoop::Poll`], the portable
//!   fallback; both backends drive the identical connection state
//!   machine and are byte-equivalent on the wire.
//! - **Three transports, one state machine.** TCP and Unix-domain
//!   streams share [`conn::Connection`] verbatim; the UDP endpoint
//!   (`udp.rs`) frames each datagram with memcached's 8-byte UDP
//!   header and runs its payload through the same coalesced frame
//!   dispatcher, fanning responses out as sequenced datagrams.
//! - **Incremental framing.** Reads land in a per-connection buffer and
//!   [`proto::scan_frame`] delimits complete frames with exact byte
//!   counts, auto-detecting ASCII vs binary per frame. Partial frames
//!   (a `set` whose data block straddles two socket reads) simply stay
//!   buffered; oversized data blocks are swallowed without buffering.
//! - **Coalescing from the buffer.** Whatever complete frames sit in
//!   the buffer at dispatch time execute as pipelined runs:
//!   consecutive ASCII frames through [`proto::execute_ascii_run`]
//!   (consecutive stores → one batched store transaction) and
//!   consecutive binary frames through [`binary::execute_pipeline`]
//!   (GETQ/GETKQ runs → one read-only multiget transaction, SETQ runs
//!   → one batched store). The batch boundary is the client's real
//!   burst, exactly as memcached's `conn` state machine drains what
//!   `read(2)` returned.
//! - **Write-side backpressure.** A connection whose pending response
//!   bytes reach [`NetConfig::wbuf_high_water`] is parked — no reads,
//!   no dispatch — until the backlog flushes below the mark, and a
//!   single dispatch's response output is budgeted by the same mark.
//!   A client that pipelines requests but never reads responses
//!   (small `get`s fanning out to megabyte values) therefore cannot
//!   run the server out of memory; stalls are observable as the
//!   `backpressure_stalls` stat.
//! - **Self-defense.** `accept` hitting fd exhaustion backs off instead
//!   of error-spinning (`accept_errors`), and the optional idle reaper
//!   ([`NetConfig::idle_timeout_ms`]) closes connections with no
//!   traffic so slow-loris partial frames cannot pin connection slots
//!   (`conn_timeouts`).
//!
//! Everything is `std::net` + raw `epoll` syscalls — no async runtime,
//! no external crates — so the server builds offline and hermetic.
//!
//! [`binary::execute_pipeline`]: crate::proto::binary::execute_pipeline
//! [`proto::scan_frame`]: crate::proto::scan_frame
//! [`proto::execute_ascii_run`]: crate::proto::execute_ascii_run

mod conn;
mod event;
mod listener;
pub mod udp;

use std::io;
use std::net::{SocketAddr, TcpListener, UdpSocket};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::cache::{McCache, McHandle};

/// Which readiness backend the workers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventLoop {
    /// Edge-triggered epoll readiness (Linux). Idle workers sleep in
    /// `epoll_wait`; non-Linux hosts silently fall back to [`Poll`].
    ///
    /// [`Poll`]: EventLoop::Poll
    Epoll,
    /// The portable polling loop: pump every connection each round,
    /// nap [`NetConfig::idle_sleep_us`] when nothing moved.
    Poll,
}

impl Default for EventLoop {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            EventLoop::Epoll
        } else {
            EventLoop::Poll
        }
    }
}

impl std::str::FromStr for EventLoop {
    type Err = ();
    fn from_str(s: &str) -> Result<Self, ()> {
        match s {
            "epoll" => Ok(EventLoop::Epoll),
            "poll" => Ok(EventLoop::Poll),
            _ => Err(()),
        }
    }
}

impl std::fmt::Display for EventLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EventLoop::Epoll => "epoll",
            EventLoop::Poll => "poll",
        })
    }
}

/// Configuration for [`Server::start`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 = ephemeral).
    pub addr: String,
    /// Network worker threads. `0` means one per cache worker slot.
    /// Must not exceed [`McCache::worker_slots`] — each worker owns one
    /// slot.
    pub workers: usize,
    /// Bytes per `read(2)` into a connection buffer.
    pub read_chunk: usize,
    /// Poll-idle sleep in microseconds when a worker finds no bytes and
    /// no new connections ([`EventLoop::Poll`] backend only — the epoll
    /// backend sleeps in `epoll_wait` instead).
    pub idle_sleep_us: u64,
    /// Backpressure high-water mark: once a connection's pending
    /// response bytes reach this, the worker stops reading (and
    /// answering) that connection until the backlog flushes below it —
    /// a client that pipelines requests without draining responses
    /// cannot grow the write buffer without bound. Per-dispatch
    /// response output is budgeted by the same mark, so the buffer
    /// overshoots it by at most one coalesced run. Stalls are counted
    /// in [`NetSnapshot::backpressure_stalls`]. On the epoll backend
    /// the same state is the `EPOLLOUT` arm/disarm signal.
    pub wbuf_high_water: usize,
    /// Readiness backend. Defaults to [`EventLoop::Epoll`] on Linux,
    /// [`EventLoop::Poll`] elsewhere.
    pub event_loop: EventLoop,
    /// UDP endpoint (e.g. `"127.0.0.1:0"`); `None` = no UDP transport.
    /// Serves the memcached UDP frame protocol ([`udp`]) on a socket
    /// shared by every worker.
    pub udp_addr: Option<String>,
    /// Unix-domain-socket listener path for co-located clients; `None`
    /// = no Unix transport. A stale socket file at the path is
    /// replaced; the file is removed again at shutdown.
    pub unix_path: Option<PathBuf>,
    /// Idle-connection reaper: close connections with no traffic for
    /// this many milliseconds. `0` (default) disables the reaper.
    /// Timeouts are counted in [`NetSnapshot::conn_timeouts`].
    pub idle_timeout_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            read_chunk: 16 << 10,
            idle_sleep_us: 200,
            wbuf_high_water: 4 << 20,
            event_loop: EventLoop::default(),
            udp_addr: None,
            unix_path: None,
            idle_timeout_ms: 0,
        }
    }
}

/// Server-wide wire counters, updated lock-free by the workers and
/// spliced into the ASCII `stats` response.
#[derive(Default)]
pub struct NetStats {
    pub(crate) curr_connections: AtomicU64,
    pub(crate) total_connections: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) frame_errors: AtomicU64,
    pub(crate) backpressure_stalls: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
    pub(crate) conn_timeouts: AtomicU64,
    pub(crate) udp_datagrams_rx: AtomicU64,
    pub(crate) udp_datagrams_tx: AtomicU64,
}

/// A point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Connections currently open.
    pub curr_connections: u64,
    /// Connections ever accepted.
    pub total_connections: u64,
    /// Payload bytes read off sockets.
    pub bytes_read: u64,
    /// Payload bytes written to sockets.
    pub bytes_written: u64,
    /// Frames that failed to scan or decode (oversized values,
    /// unknown opcodes, unterminated lines, bad UDP headers, ...).
    pub frame_errors: u64,
    /// Pump rounds that skipped reading a connection because its
    /// pending responses sat at or above
    /// [`NetConfig::wbuf_high_water`] (a slow- or never-reading
    /// client being held back).
    pub backpressure_stalls: u64,
    /// `accept` failures — dominated by fd exhaustion
    /// (EMFILE/ENFILE), which additionally pauses the accept loop so
    /// it cannot hot-spin while the table is full.
    pub accept_errors: u64,
    /// Connections closed by the idle reaper
    /// ([`NetConfig::idle_timeout_ms`]).
    pub conn_timeouts: u64,
    /// UDP request datagrams received.
    pub udp_datagrams_rx: u64,
    /// UDP response datagrams sent (a large response counts once per
    /// sequenced datagram).
    pub udp_datagrams_tx: u64,
}

impl NetStats {
    /// Snapshots the counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            curr_connections: self.curr_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
            conn_timeouts: self.conn_timeouts.load(Ordering::Relaxed),
            udp_datagrams_rx: self.udp_datagrams_rx.load(Ordering::Relaxed),
            udp_datagrams_tx: self.udp_datagrams_tx.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every network worker.
pub(crate) struct Shared {
    pub(crate) cache: Arc<McCache>,
    pub(crate) stats: NetStats,
    pub(crate) shutdown: AtomicBool,
    pub(crate) cfg: NetConfig,
}

/// A running wire server owning the cache it serves.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops the
/// workers, closes every connection, removes the Unix socket file, and
/// then shuts the cache down via its [`McHandle`].
pub struct Server {
    handle: Option<McHandle>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
    udp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Binds the configured transports and spawns the worker threads.
    ///
    /// # Panics
    /// If `cfg.workers` exceeds the cache's worker slots.
    pub fn start(cache: McHandle, cfg: NetConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let udp = match &cfg.udp_addr {
            Some(addr) => {
                let sock = UdpSocket::bind(addr)?;
                sock.set_nonblocking(true)?;
                Some(sock)
            }
            None => None,
        };
        let udp_addr = udp.as_ref().map(|s| s.local_addr()).transpose()?;
        #[cfg(unix)]
        let unix = match &cfg.unix_path {
            Some(path) => {
                // A stale socket file from a crashed run blocks bind;
                // replace it. (A *live* server's file is a user error —
                // they race on the same path either way.)
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if cfg.unix_path.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets need a unix platform",
            ));
        }
        let unix_path = cfg.unix_path.clone();
        let workers = if cfg.workers == 0 {
            cache.worker_slots()
        } else {
            cfg.workers
        };
        assert!(
            workers >= 1 && workers <= cache.worker_slots(),
            "net workers ({workers}) must fit the cache's worker slots ({})",
            cache.worker_slots()
        );
        let shared = Arc::new(Shared {
            cache: cache.cache().clone(),
            stats: NetStats::default(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let io = listener::WorkerIo {
                tcp: listener.try_clone()?,
                #[cfg(unix)]
                unix: unix.as_ref().map(|l| l.try_clone()).transpose()?,
                udp: udp.as_ref().map(|s| s.try_clone()).transpose()?,
            };
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mc-net-{w}"))
                    .spawn(move || listener::worker_loop(s, io, w))?,
            );
        }
        Ok(Server {
            handle: Some(cache),
            shared,
            threads,
            local_addr,
            udp_addr,
            unix_path,
        })
    }

    /// The bound TCP address (resolves the ephemeral port from
    /// `addr:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound UDP address, when [`NetConfig::udp_addr`] was set.
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// The Unix socket path, when [`NetConfig::unix_path`] was set.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// The cache behind the server.
    pub fn cache(&self) -> &Arc<McCache> {
        &self.shared.cache
    }

    /// Wire-level counters.
    pub fn net_stats(&self) -> NetSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops the workers (closing every connection) and shuts the cache
    /// down. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
        self.handle.take(); // McHandle drop stops the cache
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
