//! The TCP front end: puts the transactionalized cache on the wire.
//!
//! Architecture (DESIGN §12):
//!
//! - **Sharded accept, thread-per-core workers.** One nonblocking
//!   `TcpListener` is cloned into every worker thread; each worker
//!   accepts directly off the shared socket (the kernel load-balances
//!   `accept` across the clones) and owns the connections it accepted
//!   for their whole life. Worker `w` drives the cache exclusively
//!   through worker slot `w`, so the STM's per-worker descriptors,
//!   stats shards and slab magazines all stay thread-private — no
//!   cross-thread handoff anywhere on the request path.
//! - **Incremental framing.** Reads land in a per-connection buffer and
//!   [`proto::scan_frame`] delimits complete frames with exact byte
//!   counts, auto-detecting ASCII vs binary per frame. Partial frames
//!   (a `set` whose data block straddles two socket reads) simply stay
//!   buffered; oversized data blocks are swallowed without buffering.
//! - **Coalescing from the buffer.** Whatever complete frames sit in
//!   the buffer at dispatch time execute as pipelined runs:
//!   consecutive ASCII frames through [`proto::execute_ascii_run`]
//!   (consecutive stores → one batched store transaction) and
//!   consecutive binary frames through [`binary::execute_pipeline`]
//!   (GETQ/GETKQ runs → one read-only multiget transaction, SETQ runs
//!   → one batched store). The batch boundary is the client's real
//!   burst, exactly as memcached's `conn` state machine drains what
//!   `read(2)` returned.
//! - **Write-side backpressure.** A connection whose pending response
//!   bytes reach [`NetConfig::wbuf_high_water`] is parked — no reads,
//!   no dispatch — until the backlog flushes below the mark, and a
//!   single dispatch's response output is budgeted by the same mark.
//!   A client that pipelines requests but never reads responses
//!   (small `get`s fanning out to megabyte values) therefore cannot
//!   run the server out of memory; stalls are observable as the
//!   `backpressure_stalls` stat.
//!
//! Everything is `std::net` + nonblocking polling — no epoll wrapper,
//! no async runtime — so the server builds offline and hermetic.
//!
//! [`binary::execute_pipeline`]: crate::proto::binary::execute_pipeline

mod conn;
mod listener;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::cache::{McCache, McHandle};

/// Configuration for [`Server::start`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 = ephemeral).
    pub addr: String,
    /// Network worker threads. `0` means one per cache worker slot.
    /// Must not exceed [`McCache::worker_slots`] — each worker owns one
    /// slot.
    pub workers: usize,
    /// Bytes per `read(2)` into a connection buffer.
    pub read_chunk: usize,
    /// Poll-idle sleep in microseconds when a worker finds no bytes and
    /// no new connections.
    pub idle_sleep_us: u64,
    /// Backpressure high-water mark: once a connection's pending
    /// response bytes reach this, the worker stops reading (and
    /// answering) that connection until the backlog flushes below it —
    /// a client that pipelines requests without draining responses
    /// cannot grow the write buffer without bound. Per-dispatch
    /// response output is budgeted by the same mark, so the buffer
    /// overshoots it by at most one coalesced run. Stalls are counted
    /// in [`NetSnapshot::backpressure_stalls`].
    pub wbuf_high_water: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            read_chunk: 16 << 10,
            idle_sleep_us: 200,
            wbuf_high_water: 4 << 20,
        }
    }
}

/// Server-wide wire counters, updated lock-free by the workers and
/// spliced into the ASCII `stats` response.
#[derive(Default)]
pub struct NetStats {
    pub(crate) curr_connections: AtomicU64,
    pub(crate) total_connections: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) frame_errors: AtomicU64,
    pub(crate) backpressure_stalls: AtomicU64,
}

/// A point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Connections currently open.
    pub curr_connections: u64,
    /// Connections ever accepted.
    pub total_connections: u64,
    /// Payload bytes read off sockets.
    pub bytes_read: u64,
    /// Payload bytes written to sockets.
    pub bytes_written: u64,
    /// Frames that failed to scan or decode (oversized values,
    /// unknown opcodes, unterminated lines, ...).
    pub frame_errors: u64,
    /// Pump rounds that skipped reading a connection because its
    /// pending responses sat at or above
    /// [`NetConfig::wbuf_high_water`] (a slow- or never-reading
    /// client being held back).
    pub backpressure_stalls: u64,
}

impl NetStats {
    /// Snapshots the counters.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            curr_connections: self.curr_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            frame_errors: self.frame_errors.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every network worker.
pub(crate) struct Shared {
    pub(crate) cache: Arc<McCache>,
    pub(crate) stats: NetStats,
    pub(crate) shutdown: AtomicBool,
    pub(crate) cfg: NetConfig,
}

/// A running TCP server owning the cache it serves.
///
/// Dropping the server (or calling [`Server::shutdown`]) stops the
/// workers, closes every connection, and then shuts the cache down via
/// its [`McHandle`].
pub struct Server {
    handle: Option<McHandle>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds `cfg.addr` and spawns the worker threads.
    ///
    /// # Panics
    /// If `cfg.workers` exceeds the cache's worker slots.
    pub fn start(cache: McHandle, cfg: NetConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = if cfg.workers == 0 {
            cache.worker_slots()
        } else {
            cfg.workers
        };
        assert!(
            workers >= 1 && workers <= cache.worker_slots(),
            "net workers ({workers}) must fit the cache's worker slots ({})",
            cache.worker_slots()
        );
        let shared = Arc::new(Shared {
            cache: cache.cache().clone(),
            stats: NetStats::default(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let mut threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let l = listener.try_clone()?;
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mc-net-{w}"))
                    .spawn(move || listener::worker_loop(s, l, w))?,
            );
        }
        Ok(Server {
            handle: Some(cache),
            shared,
            threads,
            local_addr,
        })
    }

    /// The bound address (resolves the ephemeral port from `addr:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The cache behind the server.
    pub fn cache(&self) -> &Arc<McCache> {
        &self.shared.cache
    }

    /// Wire-level counters.
    pub fn net_stats(&self) -> NetSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops the workers (closing every connection) and shuts the cache
    /// down. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.handle.take(); // McHandle drop stops the cache
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}
