//! Worker loop: sharded accept plus connection polling.

use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use super::conn::Connection;
use super::Shared;

/// One network worker: accepts off its clone of the shared nonblocking
/// listener (the kernel spreads `accept` across the clones) and pumps
/// the connections it owns. All cache traffic from this thread uses
/// worker slot `w`, keeping STM descriptors, stat shards and slab
/// magazines thread-private.
pub(crate) fn worker_loop(shared: Arc<Shared>, listener: TcpListener, w: usize) {
    let mut conns: Vec<Connection> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut busy = false;
        // Drain the accept queue before polling: a burst of clients
        // should all land this round.
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    busy = true;
                    if stream.set_nonblocking(true).is_ok() {
                        let _ = stream.set_nodelay(true);
                        shared.stats.curr_connections.fetch_add(1, Ordering::Relaxed);
                        shared.stats.total_connections.fetch_add(1, Ordering::Relaxed);
                        conns.push(Connection::new(stream));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept failures (per-connection resets,
                // fd pressure): skip this round, keep serving.
                Err(_) => break,
            }
        }
        conns.retain_mut(|c| {
            let (keep, did_work) = c.pump(&shared.cache, w, &shared);
            busy |= did_work;
            if !keep {
                shared.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
            }
            keep
        });
        if !busy {
            std::thread::sleep(Duration::from_micros(shared.cfg.idle_sleep_us));
        }
    }
    // Shutdown closes whatever is still connected.
    for _ in &conns {
        shared.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
    }
}
