//! Worker loops: sharded accept plus connection service, on either of
//! two event backends.
//!
//! - [`EventLoop::Epoll`](super::EventLoop) (Linux default): each
//!   worker owns one epoll instance holding its listener clones, the
//!   shared UDP socket, and every connection it accepted — readiness
//!   wakes exactly the owning worker, idle workers sleep in
//!   `epoll_wait`, and `EPOLLOUT` is armed only while a connection owes
//!   response bytes.
//! - [`EventLoop::Poll`](super::EventLoop) (portable fallback, and what
//!   PR 6 shipped): every round accepts, pumps every connection, and
//!   naps `idle_sleep_us` when nothing moved.
//!
//! Both backends drive the identical [`Connection`] state machine and
//! the identical accept/reap/backoff policies, so they are
//! byte-equivalent on the wire — the conformance suites run the same
//! scripts against each.

use std::net::{TcpListener, UdpSocket};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::conn::{Connection, Stream};
use super::udp::pump_udp;
use super::Shared;

/// Datagrams drained from the shared UDP socket per service round, so
/// one UDP burst cannot starve the stream connections.
const UDP_BATCH: usize = 64;

/// How long `accept` stands down after the process runs out of file
/// descriptors (EMFILE/ENFILE). Without the pause, a full fd table
/// turns the accept loop into a hot error spin: the listener stays
/// readable because the queue never drains.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Base `epoll_wait` timeout: long enough that an idle worker burns ~10
/// wakeups a second (the shutdown-flag poll), short enough that
/// shutdown and reaper sweeps stay responsive.
const BASE_WAIT_MS: i32 = 100;

/// The sockets one worker serves: its clones of the shared listeners
/// plus the shared UDP socket.
pub(crate) struct WorkerIo {
    pub(crate) tcp: TcpListener,
    #[cfg(unix)]
    pub(crate) unix: Option<UnixListener>,
    pub(crate) udp: Option<UdpSocket>,
}

/// One network worker. All cache traffic from this thread uses worker
/// slot `w`, keeping STM descriptors, stat shards and slab magazines
/// thread-private, whichever backend runs.
pub(crate) fn worker_loop(shared: Arc<Shared>, io: WorkerIo, w: usize) {
    match shared.cfg.event_loop {
        super::EventLoop::Epoll => {
            #[cfg(target_os = "linux")]
            match epoll_loop(&shared, io, w) {
                Ok(()) => return,
                // epoll instance creation failed (fd pressure at
                // startup): degrade to the portable loop.
                Err(io) => poll_loop(&shared, io, w),
            }
            #[cfg(not(target_os = "linux"))]
            poll_loop(&shared, io, w);
        }
        super::EventLoop::Poll => poll_loop(&shared, io, w),
    }
}

/// Accepts one stream off a listener, mapping the result into the
/// shared accept policy: `Ok(Some)` a connection, `Ok(None)` the queue
/// is drained, `Err(backoff)` an accept error was counted and the
/// caller should stand down for `ACCEPT_BACKOFF` when `backoff` is set
/// (fd exhaustion — the queue will NOT drain by itself).
fn accept_outcome<S>(
    shared: &Shared,
    res: std::io::Result<S>,
) -> Result<Option<S>, bool> {
    match res {
        Ok(s) => Ok(Some(s)),
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => {
            shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
            // EMFILE (24) / ENFILE (23): the process or system fd table
            // is full. Keep serving existing connections; retry the
            // accept after the backoff, by which time the reaper or
            // departing clients may have freed descriptors.
            Err(matches!(e.raw_os_error(), Some(23) | Some(24)))
        }
    }
}

/// Drains the TCP accept queue. Returns `(streams, busy)`;
/// `backoff_until` is armed on fd exhaustion.
fn drain_tcp_accepts(
    shared: &Shared,
    listener: &TcpListener,
    backoff_until: &mut Option<Instant>,
) -> (Vec<Stream>, bool) {
    let mut out = Vec::new();
    let mut busy = false;
    loop {
        match accept_outcome(shared, listener.accept()) {
            Ok(Some((stream, _peer))) => {
                busy = true;
                if stream.set_nonblocking(true).is_ok() {
                    let _ = stream.set_nodelay(true);
                    out.push(Stream::Tcp(stream));
                }
            }
            Ok(None) => break,
            Err(fd_exhausted) => {
                if fd_exhausted {
                    *backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                }
                break;
            }
        }
    }
    (out, busy)
}

/// The Unix-domain twin of [`drain_tcp_accepts`].
#[cfg(unix)]
fn drain_unix_accepts(
    shared: &Shared,
    listener: &UnixListener,
    backoff_until: &mut Option<Instant>,
) -> (Vec<Stream>, bool) {
    let mut out = Vec::new();
    let mut busy = false;
    loop {
        match accept_outcome(shared, listener.accept()) {
            Ok(Some((stream, _peer))) => {
                busy = true;
                if stream.set_nonblocking(true).is_ok() {
                    out.push(Stream::Unix(stream));
                }
            }
            Ok(None) => break,
            Err(fd_exhausted) => {
                if fd_exhausted {
                    *backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                }
                break;
            }
        }
    }
    (out, busy)
}

/// Whether a backoff window is still holding accepts back; expired
/// windows are cleared.
fn backoff_active(backoff: &mut Option<Instant>, now: Instant) -> bool {
    match *backoff {
        Some(t) if now < t => true,
        Some(_) => {
            *backoff = None;
            false
        }
        None => false,
    }
}

/// Reaper sweep cadence for a given timeout: often enough that a
/// connection overstays by at most ~25%, never more than 10Hz.
fn sweep_interval(idle_timeout_ms: u64) -> Duration {
    Duration::from_millis((idle_timeout_ms / 4).clamp(10, 100))
}

// ---------------------------------------------------------------------
// Portable polling backend
// ---------------------------------------------------------------------

/// The PR 6 loop, generalized over transports: accept, pump every
/// connection, nap when idle. Kept as the portable fallback and as the
/// byte-equivalence reference for the epoll backend.
fn poll_loop(shared: &Arc<Shared>, io: WorkerIo, w: usize) {
    let mut conns: Vec<Connection> = Vec::new();
    let mut tcp_backoff: Option<Instant> = None;
    #[cfg(unix)]
    let mut unix_backoff: Option<Instant> = None;
    let mut last_sweep = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut busy = false;
        let now = Instant::now();
        // Drain the accept queues before polling: a burst of clients
        // should all land this round.
        if !backoff_active(&mut tcp_backoff, now) {
            let (streams, b) = drain_tcp_accepts(shared, &io.tcp, &mut tcp_backoff);
            busy |= b;
            for s in streams {
                shared.stats.curr_connections.fetch_add(1, Ordering::Relaxed);
                shared.stats.total_connections.fetch_add(1, Ordering::Relaxed);
                conns.push(Connection::new(s));
            }
        }
        #[cfg(unix)]
        if let Some(ul) = &io.unix {
            if !backoff_active(&mut unix_backoff, now) {
                let (streams, b) = drain_unix_accepts(shared, ul, &mut unix_backoff);
                busy |= b;
                for s in streams {
                    shared.stats.curr_connections.fetch_add(1, Ordering::Relaxed);
                    shared.stats.total_connections.fetch_add(1, Ordering::Relaxed);
                    conns.push(Connection::new(s));
                }
            }
        }
        if let Some(udp) = &io.udp {
            let (b, _drained) = pump_udp(udp, &shared.cache, w, shared, UDP_BATCH);
            busy |= b;
        }
        conns.retain_mut(|c| {
            let p = c.pump(&shared.cache, w, shared);
            busy |= p.busy;
            if !p.keep {
                shared.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
            }
            p.keep
        });
        // Idle reaper: close connections with no traffic for the
        // configured window, so slow-loris partial frames cannot pin
        // connection slots forever.
        let timeout_ms = shared.cfg.idle_timeout_ms;
        if timeout_ms > 0 && last_sweep.elapsed() >= sweep_interval(timeout_ms) {
            last_sweep = Instant::now();
            let cutoff = Duration::from_millis(timeout_ms);
            conns.retain(|c| {
                if c.last_activity.elapsed() >= cutoff {
                    shared.stats.conn_timeouts.fetch_add(1, Ordering::Relaxed);
                    shared.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            });
        }
        if !busy {
            std::thread::sleep(Duration::from_micros(shared.cfg.idle_sleep_us));
        }
    }
    // Shutdown closes whatever is still connected.
    for _ in &conns {
        shared.stats.curr_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Epoll backend (Linux)
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::*;
    use crate::net::event::{Event, Poller};
    use std::os::unix::io::AsRawFd;

    /// Registration tokens. Connection slots use their index directly;
    /// the non-connection fds sit at the top of the token space.
    const TOKEN_TCP: u64 = u64::MAX;
    #[cfg(unix)]
    const TOKEN_UNIX: u64 = u64::MAX - 1;
    const TOKEN_UDP: u64 = u64::MAX - 2;

    struct EpollWorker<'a> {
        shared: &'a Arc<Shared>,
        w: usize,
        poller: Poller,
        /// Connection slots; the epoll token IS the slot index, so a
        /// readiness event routes straight to its connection.
        slots: Vec<Option<Connection>>,
        free: Vec<usize>,
        /// Slots owed a pump that no readiness edge will announce
        /// (capped reads, budget-capped dispatch, swallow tails). While
        /// non-empty, the wait timeout is zero.
        hot: Vec<usize>,
    }

    impl EpollWorker<'_> {
        fn push_hot(&mut self, slot: usize) {
            if let Some(c) = self.slots[slot].as_mut() {
                if !c.hot {
                    c.hot = true;
                    self.hot.push(slot);
                }
            }
        }

        /// Pumps one slot and applies the verdict: close, EPOLLOUT
        /// arm/disarm, or hot-list re-queue.
        fn pump_slot(&mut self, slot: usize) {
            let Some(c) = self.slots.get_mut(slot).and_then(|s| s.as_mut()) else {
                return; // closed earlier in this same event batch
            };
            let p = c.pump(&self.shared.cache, self.w, self.shared);
            if !p.keep {
                self.close_slot(slot);
                return;
            }
            let c = self.slots[slot].as_mut().expect("kept connection");
            // The EPOLLOUT arm/disarm protocol: write interest exists
            // exactly while response bytes are pending, so a writable
            // idle socket never wakes the worker, and a parked
            // (backpressured) connection is guaranteed its wakeup —
            // parking implies the last write hit WouldBlock.
            let want_out = c.pending_out() > 0;
            if want_out != c.epollout_armed {
                let fd = c.raw_fd();
                if self.poller.modify(fd, slot as u64, want_out).is_ok() {
                    c.epollout_armed = want_out;
                }
            }
            if p.repump {
                self.push_hot(slot);
            }
        }

        fn close_slot(&mut self, slot: usize) {
            if let Some(c) = self.slots[slot].take() {
                self.poller.delete(c.raw_fd());
                self.shared
                    .stats
                    .curr_connections
                    .fetch_sub(1, Ordering::Relaxed);
                self.free.push(slot);
            }
        }

        /// Registers an accepted stream and gives it its first pump —
        /// bytes may already be waiting (and the first pump is what
        /// makes an accept-then-talk client's latency independent of
        /// the next readiness edge).
        fn adopt(&mut self, stream: Stream) {
            let conn = Connection::new(stream);
            let fd = conn.raw_fd();
            let slot = match self.free.pop() {
                Some(s) => {
                    self.slots[s] = Some(conn);
                    s
                }
                None => {
                    self.slots.push(Some(conn));
                    self.slots.len() - 1
                }
            };
            if self.poller.add(fd, slot as u64, false).is_err() {
                // Registration failed (fd pressure): drop the client.
                self.slots[slot] = None;
                self.free.push(slot);
                self.shared
                    .stats
                    .accept_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            self.shared
                .stats
                .curr_connections
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .stats
                .total_connections
                .fetch_add(1, Ordering::Relaxed);
            self.pump_slot(slot);
        }

        /// Idle-connection reaper sweep.
        fn reap(&mut self) {
            let cutoff = Duration::from_millis(self.shared.cfg.idle_timeout_ms);
            for slot in 0..self.slots.len() {
                let expired = self.slots[slot]
                    .as_ref()
                    .is_some_and(|c| c.last_activity.elapsed() >= cutoff);
                if expired {
                    self.shared
                        .stats
                        .conn_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    self.close_slot(slot);
                }
            }
        }
    }

    /// The readiness-driven worker loop. Returns the worker's sockets
    /// as `Err` if the epoll instance itself could not be created, so
    /// the caller can fall back to the polling loop.
    pub(super) fn epoll_loop(
        shared: &Arc<Shared>,
        io: WorkerIo,
        w: usize,
    ) -> Result<(), WorkerIo> {
        let Ok(poller) = Poller::new() else {
            return Err(io);
        };
        if poller.add(io.tcp.as_raw_fd(), TOKEN_TCP, false).is_err() {
            return Err(io);
        }
        #[cfg(unix)]
        if let Some(ul) = &io.unix {
            if poller.add(ul.as_raw_fd(), TOKEN_UNIX, false).is_err() {
                return Err(io);
            }
        }
        if let Some(us) = &io.udp {
            if poller.add(us.as_raw_fd(), TOKEN_UDP, false).is_err() {
                return Err(io);
            }
        }
        let mut worker = EpollWorker {
            shared,
            w,
            poller,
            slots: Vec::new(),
            free: Vec::new(),
            hot: Vec::new(),
        };
        let mut events: Vec<Event> = Vec::new();
        // Edge-carry flags: a capped UDP drain or an fd-exhaustion
        // backoff must re-run without a fresh kernel edge.
        let mut udp_pending = false;
        let mut tcp_backoff: Option<Instant> = None;
        let mut tcp_accept_owed = false;
        #[cfg(unix)]
        let mut unix_backoff: Option<Instant> = None;
        #[cfg(unix)]
        let mut unix_accept_owed = false;
        let idle_timeout_ms = shared.cfg.idle_timeout_ms;
        let mut last_sweep = Instant::now();

        while !shared.shutdown.load(Ordering::SeqCst) {
            // Wait: zero when carried work is owed, else bounded by the
            // shutdown poll, the reaper cadence, and any accept backoff.
            let mut timeout = BASE_WAIT_MS;
            if idle_timeout_ms > 0 {
                timeout = timeout.min(sweep_interval(idle_timeout_ms).as_millis() as i32);
            }
            if let Some(t) = tcp_backoff {
                let ms = t.saturating_duration_since(Instant::now()).as_millis() as i32;
                timeout = timeout.min(ms.max(1));
            }
            #[cfg(unix)]
            if let Some(t) = unix_backoff {
                let ms = t.saturating_duration_since(Instant::now()).as_millis() as i32;
                timeout = timeout.min(ms.max(1));
            }
            if !worker.hot.is_empty() || udp_pending {
                timeout = 0;
            }
            events.clear();
            if worker.poller.wait(&mut events, timeout).is_err() {
                // Transient wait failure: breathe, retry. (EINTR is
                // already absorbed by the poller.)
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }

            // Phase 1: last round's carried work. Taken first so a slot
            // that also shows up in this batch's events is pumped with
            // its flag already cleared (the event pump is then a no-op
            // WouldBlock read, not double work).
            for slot in std::mem::take(&mut worker.hot) {
                let owed = worker.slots[slot].as_mut().is_some_and(|c| {
                    let was = c.hot;
                    c.hot = false;
                    was
                });
                if owed {
                    worker.pump_slot(slot);
                }
            }

            // Phase 2: readiness events. Accept edges are deferred to
            // phase 3 so a slot freed here is safe to reuse there —
            // every stale same-batch event has been skipped by then.
            let now = Instant::now();
            tcp_accept_owed |= tcp_backoff.is_some() && !backoff_active(&mut tcp_backoff, now);
            #[cfg(unix)]
            {
                unix_accept_owed |=
                    unix_backoff.is_some() && !backoff_active(&mut unix_backoff, now);
            }
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    TOKEN_TCP => tcp_accept_owed = true,
                    #[cfg(unix)]
                    TOKEN_UNIX => unix_accept_owed = true,
                    TOKEN_UDP => udp_pending = true,
                    slot => {
                        let slot = slot as usize;
                        if ev.readable || ev.writable {
                            worker.pump_slot(slot);
                        }
                    }
                }
            }

            // Phase 3: accepts and the shared UDP socket.
            if tcp_accept_owed && tcp_backoff.is_none() {
                let (streams, _) = drain_tcp_accepts(shared, &io.tcp, &mut tcp_backoff);
                for s in streams {
                    worker.adopt(s);
                }
                // Backoff armed mid-drain: the queue still holds
                // connections no edge will re-announce; retry after
                // the pause.
                tcp_accept_owed = tcp_backoff.is_some();
            }
            #[cfg(unix)]
            if unix_accept_owed && unix_backoff.is_none() {
                if let Some(ul) = &io.unix {
                    let (streams, _) = drain_unix_accepts(shared, ul, &mut unix_backoff);
                    for s in streams {
                        worker.adopt(s);
                    }
                }
                unix_accept_owed = unix_backoff.is_some();
            }
            if udp_pending {
                if let Some(us) = &io.udp {
                    let (_, drained) = pump_udp(us, &shared.cache, w, shared, UDP_BATCH);
                    udp_pending = !drained;
                } else {
                    udp_pending = false;
                }
            }

            // Phase 4: reaper.
            if idle_timeout_ms > 0 && last_sweep.elapsed() >= sweep_interval(idle_timeout_ms) {
                last_sweep = Instant::now();
                worker.reap();
            }
        }
        // Shutdown closes whatever is still connected.
        for slot in 0..worker.slots.len() {
            worker.close_slot(slot);
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
use epoll_backend::epoll_loop;
