//! Statistics: the fourth lock category of §3.1.
//!
//! memcached keeps program-wide counters behind a global `stats_lock` and —
//! after years of scalability work — most command counters in per-thread
//! structures behind per-thread locks. The paper had to transactionalize
//! *both*: the per-thread locks were never contended, but any mutex
//! operation is unsafe inside an atomic transaction ("This highlights a
//! flaw with relaxed transactions: when an unsafe operation is performed in
//! a context where conflicts are exceedingly rare, it still necessitates
//! the serialization of all transactions", §3.1).

use tm::{Abort, TCell};
use tmstd::ByteAccess;

use crate::ctx::Ctx;

macro_rules! cells {
    ($(#[$sdoc:meta])* struct $name:ident { $($(#[$doc:meta])* $f:ident),* $(,)? } snapshot $snap:ident) => {
        $(#[$sdoc])*
        #[derive(Debug, Default)]
        pub struct $name {
            $($(#[$doc])* pub $f: TCell<u64>,)*
        }

        /// Plain-value snapshot of the corresponding counter block.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct $snap {
            $($(#[$doc])* pub $f: u64,)*
        }

        impl $name {
            /// Uninstrumented snapshot (call outside critical sections).
            pub fn snapshot_direct(&self) -> $snap {
                $snap { $($f: self.$f.load_direct(),)* }
            }
        }

        impl std::ops::Add for $snap {
            type Output = $snap;
            fn add(self, rhs: $snap) -> $snap {
                $snap { $($f: self.$f + rhs.$f,)* }
            }
        }
    };
}

cells! {
    /// Counters guarded by the global `stats_lock`.
    struct GlobalStats {
        /// Items currently linked into the cache.
        curr_items,
        /// Items ever linked.
        total_items,
        /// Hash-table expansions completed.
        expansions,
        /// Items evicted to make room.
        evictions,
        /// Slab pages moved by the rebalancer.
        rebalances,
        /// `flush_all` commands.
        flush_cmds,
        /// Verbose log lines emitted (stand-in for the `stderr` stream).
        log_lines,
        /// Maintenance wakeup signals delivered.
        maintenance_signals,
        /// Total commands processed (the program-wide counter that keeps
        /// `stats_lock` hot in §3.1's mutrace profile).
        cmd_total,
        /// Magazine refill transactions: batched freelist pops that restock
        /// a worker's private chunk cache.
        magazine_refills,
        /// Magazine flush transactions: batched freelist pushes returning a
        /// worker's cached chunks under memory pressure or overflow.
        magazine_flushes,
    } snapshot GlobalSnapshot
}

cells! {
    /// One worker thread's command counters (per-thread lock category).
    struct ThreadStats {
        /// `get` commands.
        get_cmds,
        /// `get` hits.
        get_hits,
        /// `get` misses.
        get_misses,
        /// Store commands (`set`/`add`/`replace`/`cas`).
        set_cmds,
        /// `delete` commands.
        delete_cmds,
        /// `incr`/`decr` commands.
        arith_cmds,
        /// `touch` commands.
        touch_cmds,
        /// This worker's shard of the global `cmd_total`: the trimmed read
        /// path counts its commands here — privately, outside any
        /// transaction — and the shards are folded back into
        /// `GlobalSnapshot::cmd_total` at snapshot time.
        cmd_shard,
    } snapshot ThreadSnapshot
}

impl GlobalStats {
    /// Transactionally (or directly, under `stats_lock`) bumps a counter.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    pub fn bump<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, cell: &'e TCell<u64>) -> Result<(), Abort> {
        let v = ctx.get_word(cell.word())?;
        ctx.put_word(cell.word(), v + 1)
    }
}

impl ThreadStats {
    /// Bumps a per-thread counter; same access rules as the global block.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    pub fn bump<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, cell: &'e TCell<u64>) -> Result<(), Abort> {
        let v = ctx.get_word(cell.word())?;
        ctx.put_word(cell.word(), v + 1)
    }
}

impl ThreadSnapshot {
    /// All commands this thread executed.
    pub fn total_cmds(&self) -> u64 {
        self.get_cmds + self.set_cmds + self.delete_cmds + self.arith_cmds + self.touch_cmds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm::TmRuntime;

    #[test]
    fn direct_bump_and_snapshot() {
        let g = GlobalStats::default();
        let mut ctx = Ctx::Direct;
        g.bump(&mut ctx, &g.curr_items).unwrap();
        g.bump(&mut ctx, &g.curr_items).unwrap();
        g.bump(&mut ctx, &g.total_items).unwrap();
        let s = g.snapshot_direct();
        assert_eq!(s.curr_items, 2);
        assert_eq!(s.total_items, 1);
    }

    #[test]
    fn transactional_bump() {
        let rt = TmRuntime::default_runtime();
        let t = ThreadStats::default();
        rt.atomic(|tx| {
            let mut ctx = Ctx::Atomic(tx);
            t.bump(&mut ctx, &t.get_cmds)?;
            t.bump(&mut ctx, &t.get_hits)
        });
        let s = t.snapshot_direct();
        assert_eq!(s.get_cmds, 1);
        assert_eq!(s.get_hits, 1);
        assert_eq!(s.total_cmds(), 1);
    }

    #[test]
    fn snapshots_add() {
        let a = ThreadSnapshot {
            get_cmds: 1,
            set_cmds: 2,
            ..Default::default()
        };
        let b = ThreadSnapshot {
            get_cmds: 10,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.get_cmds, 11);
        assert_eq!(c.set_cmds, 2);
        assert_eq!(c.total_cmds(), 13);
    }
}
