//! A counting semaphore — the primitive the paper's §3.2 refactor
//! substitutes for `pthread_cond_t` when waking maintenance threads
//! (Figure 2's `sem_post` / `sem_wait`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lockprof::sync::{Condvar, Mutex};

/// A counting semaphore with `post` / `wait` / `wait_timeout`.
#[derive(Default)]
pub struct Semaphore {
    count: Mutex<u64>,
    cv: Condvar,
    posts: AtomicU64,
}

impl Semaphore {
    /// Creates a semaphore with count zero.
    pub fn new() -> Self {
        Semaphore::default()
    }

    /// `sem_post`: increments the count and wakes one waiter. Safe to call
    /// from an onCommit handler — it touches no transactional state.
    pub fn post(&self) {
        let mut c = self.count.lock();
        *c += 1;
        self.posts.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
    }

    /// `sem_wait`: blocks until the count is positive, then decrements.
    pub fn wait(&self) {
        let mut c = self.count.lock();
        while *c == 0 {
            self.cv.wait(&mut c);
        }
        *c -= 1;
    }

    /// `sem_timedwait`: like [`Semaphore::wait`] but gives up after `dur`.
    /// Returns `true` if a unit was consumed.
    pub fn wait_timeout(&self, dur: Duration) -> bool {
        let mut c = self.count.lock();
        if *c == 0 {
            let _ = self.cv.wait_for(&mut c, dur);
        }
        if *c == 0 {
            return false;
        }
        *c -= 1;
        true
    }

    /// `sem_trywait`: consumes a unit only if immediately available.
    pub fn try_wait(&self) -> bool {
        let mut c = self.count.lock();
        if *c > 0 {
            *c -= 1;
            true
        } else {
            false
        }
    }

    /// Total posts ever (diagnostic; used to verify maintenance threads
    /// actually get woken).
    pub fn total_posts(&self) -> u64 {
        self.posts.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("count", &*self.count.lock())
            .field("posts", &self.total_posts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn post_then_wait() {
        let s = Semaphore::new();
        s.post();
        s.wait();
        assert!(!s.try_wait());
        assert_eq!(s.total_posts(), 1);
    }

    #[test]
    fn wait_blocks_until_post() {
        let s = Arc::new(Semaphore::new());
        let t = {
            let s = s.clone();
            thread::spawn(move || {
                s.wait();
                42
            })
        };
        thread::sleep(Duration::from_millis(10));
        s.post();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn timeout_expires() {
        let s = Semaphore::new();
        assert!(!s.wait_timeout(Duration::from_millis(5)));
        s.post();
        assert!(s.wait_timeout(Duration::from_millis(5)));
    }

    #[test]
    fn counts_accumulate() {
        let s = Semaphore::new();
        for _ in 0..3 {
            s.post();
        }
        assert!(s.try_wait() && s.try_wait() && s.try_wait());
        assert!(!s.try_wait());
    }
}
