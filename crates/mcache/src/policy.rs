//! Branches and stages: the paper's code-history as a runtime policy.
//!
//! The paper develops memcached along two axes:
//!
//! * **item-lock treatment** — *IP* (ItemPriv): item locks become tiny
//!   lock-acquire/release transactions on a boolean and item data stays
//!   *privatized* (accessed directly while the lock is held); *IT*
//!   (ItemTx): item-lock critical sections become transactions outright.
//! * **transactionalization stage** — how much of memcached has been made
//!   transaction-safe: condition variables → semaphores (§3.2), lock
//!   replacement ± `callable` annotations (§3.3), volatiles & refcounts
//!   (§3.3 "Max"), safe libraries (§3.4 "Lib"), and onCommit handlers
//!   (§3.5), after which no transaction ever serializes and the global
//!   serial lock can be removed (§4, "NoLock").
//!
//! A [`Branch`] selects a point on both axes; [`Policy`] answers the
//! questions the cache code asks at each potential-serialization site.

use std::fmt;

/// The kinds of operations that are *unsafe* inside a transaction until a
/// given stage makes them safe. These are the paper's serialization causes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Reads of `volatile` maintenance flags (memcached's `expanding`,
    /// `slab_rebalance_signal`, ...). Safe from [`Stage::Max`], when the
    /// variables are re-declared as plain words accessed transactionally.
    VolatileFlag,
    /// `lock incr`-style reference-count read-modify-writes. Safe from
    /// [`Stage::Max`].
    RefcountRmw,
    /// Calls into libc (`memcmp`, `memcpy`, `strlen`, `strtoull`,
    /// `snprintf`, ...). Safe from [`Stage::Lib`] via the `tmstd`
    /// reimplementations and marshaling wrappers.
    Libc,
    /// `sem_post` used to wake maintenance threads. Deferred to an
    /// `onCommit` handler from [`Stage::OnCommit`].
    SemPost,
    /// Verbose-mode logging (`fprintf(stderr, ...)`, `perror`). Deferred
    /// to an `onCommit` handler from [`Stage::OnCommit`].
    LogIo,
    /// `assert`/`abort`: terminating calls whose unsafe part never runs in
    /// a correct execution. Wrapped `transaction_pure` from
    /// [`Stage::OnCommit`].
    AssertAbort,
}

/// How far the transactionalization has progressed (§3.3–§3.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Locks replaced by relaxed transactions; no `callable` annotations.
    Plain,
    /// `transaction_callable` applied maximally. The paper measured no
    /// behavioral difference from [`Stage::Plain`] (Table 1), and GCC
    /// instruments visible source either way, so this policy differs only
    /// in name — reproduced faithfully.
    Callable,
    /// Volatiles and reference counts transactionalized ("Max", §3.3).
    Max,
    /// Standard-library calls made transaction-safe ("Lib", §3.4).
    Lib,
    /// Remaining unsafe calls moved to onCommit handlers / pure wrappers
    /// (§3.5): no transaction ever requires serialization.
    OnCommit,
}

impl Stage {
    /// All stages, in paper order.
    pub const ALL: [Stage; 5] = [
        Stage::Plain,
        Stage::Callable,
        Stage::Max,
        Stage::Lib,
        Stage::OnCommit,
    ];
}

/// How item locks are treated in a transactional branch (§3.1, Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ItemMode {
    /// Real striped mutexes (lock-based branches only).
    Lock,
    /// "IP": lock acquire/release become boolean mini-transactions; item
    /// data is privatized and accessed directly while the lock is held.
    Privatize,
    /// "IT": item-lock critical sections become transactions.
    Transactional,
}

/// One point in the paper's development history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Branch {
    /// Unmodified lock-based memcached (pthread locks + condition
    /// variables).
    Baseline,
    /// Stage 2: condition variables replaced by semaphores; still all
    /// locks.
    Semaphore,
    /// ItemPriv at the given stage.
    Ip(Stage),
    /// ItemTx at the given stage.
    It(Stage),
    /// ItemPriv + onCommit + the serial readers/writer lock removed (§4).
    IpNoLock,
    /// ItemTx + onCommit + the serial lock removed (§4).
    ItNoLock,
}

impl Branch {
    /// Every branch the figures exercise, in presentation order.
    pub fn all() -> Vec<Branch> {
        let mut v = vec![Branch::Baseline, Branch::Semaphore];
        for s in Stage::ALL {
            v.push(Branch::Ip(s));
            v.push(Branch::It(s));
        }
        v.push(Branch::IpNoLock);
        v.push(Branch::ItNoLock);
        v
    }

    /// The policy this branch implies.
    pub fn policy(&self) -> Policy {
        match *self {
            Branch::Baseline => Policy {
                transactional: false,
                item_mode: ItemMode::Lock,
                stage: Stage::Plain,
                semaphores: false,
                serial_lock: true,
            },
            Branch::Semaphore => Policy {
                transactional: false,
                item_mode: ItemMode::Lock,
                stage: Stage::Plain,
                semaphores: true,
                serial_lock: true,
            },
            Branch::Ip(stage) => Policy {
                transactional: true,
                item_mode: ItemMode::Privatize,
                stage,
                semaphores: true,
                serial_lock: true,
            },
            Branch::It(stage) => Policy {
                transactional: true,
                item_mode: ItemMode::Transactional,
                stage,
                semaphores: true,
                serial_lock: true,
            },
            Branch::IpNoLock => Policy {
                transactional: true,
                item_mode: ItemMode::Privatize,
                stage: Stage::OnCommit,
                semaphores: true,
                serial_lock: false,
            },
            Branch::ItNoLock => Policy {
                transactional: true,
                item_mode: ItemMode::Transactional,
                stage: Stage::OnCommit,
                semaphores: true,
                serial_lock: false,
            },
        }
    }
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Branch::Baseline => write!(f, "Baseline"),
            Branch::Semaphore => write!(f, "Semaphore"),
            Branch::Ip(Stage::Plain) => write!(f, "IP"),
            Branch::It(Stage::Plain) => write!(f, "IT"),
            Branch::Ip(Stage::Callable) => write!(f, "IP-Callable"),
            Branch::It(Stage::Callable) => write!(f, "IT-Callable"),
            Branch::Ip(Stage::Max) => write!(f, "IP-Max"),
            Branch::It(Stage::Max) => write!(f, "IT-Max"),
            Branch::Ip(Stage::Lib) => write!(f, "IP-Lib"),
            Branch::It(Stage::Lib) => write!(f, "IT-Lib"),
            Branch::Ip(Stage::OnCommit) => write!(f, "IP-onCommit"),
            Branch::It(Stage::OnCommit) => write!(f, "IT-onCommit"),
            Branch::IpNoLock => write!(f, "IP-NoLock"),
            Branch::ItNoLock => write!(f, "IT-NoLock"),
        }
    }
}

/// The questions the cache code asks of its branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Whether contended locks have been replaced by transactions.
    pub transactional: bool,
    /// Item-lock treatment.
    pub item_mode: ItemMode,
    /// Transactionalization stage.
    pub stage: Stage,
    /// Whether maintenance wakeups use semaphores instead of condvars.
    pub semaphores: bool,
    /// Whether the TM runtime keeps the global serial readers/writer lock.
    pub serial_lock: bool,
}

impl Policy {
    /// Whether an operation of this category may run *inside* a
    /// transaction without forcing serialization (either reimplemented
    /// safely or deferred to a commit handler).
    pub fn is_safe(&self, c: Category) -> bool {
        match c {
            Category::VolatileFlag | Category::RefcountRmw => self.stage >= Stage::Max,
            Category::Libc => self.stage >= Stage::Lib,
            Category::SemPost | Category::LogIo | Category::AssertAbort => {
                self.stage >= Stage::OnCommit
            }
        }
    }

    /// Whether this category is handled by deferring to an onCommit
    /// handler (rather than a safe reimplementation).
    pub fn is_deferred(&self, c: Category) -> bool {
        matches!(c, Category::SemPost | Category::LogIo) && self.stage >= Stage::OnCommit
    }

    /// How a transactional section with these entry/mid unsafe categories
    /// must run. `entry` categories are performed unconditionally as the
    /// section's first action (GCC: unsafe on every path ⇒ begin serial);
    /// `mid` categories may be reached later (GCC: switch in flight when
    /// actually executed).
    pub fn section_kind(&self, entry: &[Category], mid: &[Category]) -> SectionKind {
        debug_assert!(self.transactional, "section_kind on a lock branch");
        if entry.iter().any(|&c| !self.is_safe(c)) {
            SectionKind::RelaxedSerial
        } else if mid.iter().any(|&c| !self.is_safe(c)) {
            SectionKind::Relaxed
        } else {
            SectionKind::Atomic
        }
    }
}

/// How a critical-section-turned-transaction begins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// `__transaction_atomic`: statically serialization-free.
    Atomic,
    /// `__transaction_relaxed`, instrumented start; switches in flight if
    /// an unsafe operation is reached.
    Relaxed,
    /// `__transaction_relaxed` that begins serial-irrevocable: unsafe on
    /// every path.
    RelaxedSerial,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_progression_makes_categories_safe() {
        let at = |s: Stage| Branch::Ip(s).policy();
        assert!(!at(Stage::Plain).is_safe(Category::VolatileFlag));
        assert!(at(Stage::Max).is_safe(Category::VolatileFlag));
        assert!(at(Stage::Max).is_safe(Category::RefcountRmw));
        assert!(!at(Stage::Max).is_safe(Category::Libc));
        assert!(at(Stage::Lib).is_safe(Category::Libc));
        assert!(!at(Stage::Lib).is_safe(Category::SemPost));
        assert!(at(Stage::OnCommit).is_safe(Category::SemPost));
        assert!(at(Stage::OnCommit).is_safe(Category::AssertAbort));
    }

    #[test]
    fn callable_is_behaviorally_plain() {
        // Table 1: IP vs IP-Callable nearly identical — modeled exactly.
        let plain = Branch::Ip(Stage::Plain).policy();
        let callable = Branch::Ip(Stage::Callable).policy();
        for c in [
            Category::VolatileFlag,
            Category::RefcountRmw,
            Category::Libc,
            Category::SemPost,
        ] {
            assert_eq!(plain.is_safe(c), callable.is_safe(c));
        }
    }

    #[test]
    fn section_kind_rules() {
        let p = Branch::It(Stage::Plain).policy();
        assert_eq!(
            p.section_kind(&[Category::VolatileFlag], &[Category::Libc]),
            SectionKind::RelaxedSerial
        );
        let p = Branch::It(Stage::Max).policy();
        assert_eq!(
            p.section_kind(&[Category::VolatileFlag], &[Category::Libc]),
            SectionKind::Relaxed
        );
        let p = Branch::It(Stage::Lib).policy();
        assert_eq!(
            p.section_kind(&[Category::VolatileFlag], &[Category::Libc]),
            SectionKind::Atomic
        );
        let p = Branch::It(Stage::Lib).policy();
        assert_eq!(
            p.section_kind(&[Category::SemPost], &[]),
            SectionKind::RelaxedSerial
        );
        let p = Branch::It(Stage::OnCommit).policy();
        assert_eq!(p.section_kind(&[Category::SemPost], &[]), SectionKind::Atomic);
    }

    #[test]
    fn branch_roster_and_names() {
        let all = Branch::all();
        assert_eq!(all.len(), 2 + 2 * 5 + 2);
        assert_eq!(Branch::Ip(Stage::OnCommit).to_string(), "IP-onCommit");
        assert_eq!(Branch::ItNoLock.to_string(), "IT-NoLock");
        assert_eq!(Branch::Baseline.to_string(), "Baseline");
    }

    #[test]
    fn nolock_branches_drop_serial_lock() {
        assert!(!Branch::IpNoLock.policy().serial_lock);
        assert!(Branch::Ip(Stage::OnCommit).policy().serial_lock);
        assert_eq!(Branch::IpNoLock.policy().stage, Stage::OnCommit);
    }

    #[test]
    fn lock_branches_are_not_transactional() {
        assert!(!Branch::Baseline.policy().transactional);
        assert!(!Branch::Semaphore.policy().transactional);
        assert!(Branch::Baseline.policy().item_mode == ItemMode::Lock);
        assert!(!Branch::Baseline.policy().semaphores);
        assert!(Branch::Semaphore.policy().semaphores);
    }
}
