//! Item layout: memcached's `item` struct, laid out in slab memory.
//!
//! An item occupies one chunk of a slab page. The header is nine 64-bit
//! words (chain pointer, LRU pointers, refcount, flags, times, sizes, CAS,
//! client flags) followed by the key bytes, the pre-rendered response
//! *suffix* (`" <flags> <nbytes>\r\n"`, built with `snprintf` at store
//! time — one of the paper's libc serialization sites), and the value
//! bytes. All fields live in [`TBytes`] words so every branch — locked,
//! privatized, or transactional — can address the same memory.

use tm::{Abort, TBytes, TWord, Word};
use tmstd::ByteAccess;

use crate::ctx::Ctx;
use crate::policy::{Category, Policy};

/// Header words per item.
pub const HDR_WORDS: usize = 9;
/// Header bytes per item.
pub const HDR_BYTES: usize = HDR_WORDS * 8;
/// Longest rendered suffix (`" <u32> <u32>\r\n"`).
pub const SUFFIX_MAX: usize = 24;

/// `it_flags` bit: the item is linked into the hash table and LRU.
pub const ITEM_LINKED: u64 = 1;
/// `it_flags` bit: the chunk is on a slab free list.
pub const ITEM_SLABBED: u64 = 2;
/// `it_flags` bit: the item has been fetched at least once.
pub const ITEM_FETCHED: u64 = 4;

const W_HNEXT: usize = 0;
const W_LRU_NEXT: usize = 1;
const W_LRU_PREV: usize = 2;
const W_REFCOUNT: usize = 3;
const W_FLAGS: usize = 4;
const W_TIMES: usize = 5;
const W_SIZES: usize = 6;
const W_CAS: usize = 7;
const W_CFLAGS: usize = 8;

/// A packed reference to one chunk: slab class, page index within the
/// arena, and chunk index within the page. The all-zero word is "null",
/// so handles pack as `value + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ItemHandle {
    /// Slab class id.
    pub class: u8,
    /// Global page index in the arena.
    pub page: u32,
    /// Chunk index within the page.
    pub chunk: u16,
}

impl Word for ItemHandle {
    fn to_word(self) -> u64 {
        (((self.class as u64) << 48) | ((self.page as u64) << 16) | self.chunk as u64) + 1
    }
    fn from_word(w: u64) -> Self {
        let w = w.checked_sub(1).expect("decoded a null ItemHandle");
        ItemHandle {
            class: (w >> 48) as u8,
            page: (w >> 16) as u32,
            chunk: w as u16,
        }
    }
}

/// Reads an `Option<ItemHandle>` word (0 encodes `None`).
pub fn decode_opt(w: u64) -> Option<ItemHandle> {
    if w == 0 {
        None
    } else {
        Some(ItemHandle::from_word(w))
    }
}

/// Encodes an `Option<ItemHandle>` word.
pub fn encode_opt(h: Option<ItemHandle>) -> u64 {
    h.map_or(0, ItemHandle::to_word)
}

/// A resolved item: the page holding it plus its chunk's word/byte base.
#[derive(Clone, Copy, Debug)]
pub struct ItemRef<'e> {
    /// The page's backing storage.
    pub page: &'e TBytes,
    /// First header word index within the page.
    pub word0: usize,
    /// First byte offset within the page.
    pub byte0: usize,
    /// The handle this reference resolves.
    pub handle: ItemHandle,
}

/// Decoded size word.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ItemSizes {
    /// Key length in bytes.
    pub nkey: u8,
    /// Rendered suffix length in bytes.
    pub nsuffix: u8,
    /// Value length in bytes.
    pub nbytes: u32,
}

impl ItemSizes {
    fn pack(self) -> u64 {
        self.nkey as u64 | ((self.nsuffix as u64) << 8) | ((self.nbytes as u64) << 16)
    }
    fn unpack(w: u64) -> Self {
        ItemSizes {
            nkey: w as u8,
            nsuffix: (w >> 8) as u8,
            nbytes: (w >> 16) as u32,
        }
    }
    /// Total bytes the item occupies in its chunk.
    pub fn total(&self) -> usize {
        HDR_BYTES + self.nkey as usize + self.nsuffix as usize + self.nbytes as usize
    }
}

impl<'e> ItemRef<'e> {
    fn word(&self, k: usize) -> &'e TWord {
        self.page.word(self.word0 + k)
    }

    /// The hash-chain successor.
    pub fn hnext(&self, ctx: &mut Ctx<'_, 'e>) -> Result<Option<ItemHandle>, Abort> {
        Ok(decode_opt(ctx.get_word(self.word(W_HNEXT))?))
    }

    /// Sets the hash-chain successor.
    pub fn set_hnext(&self, ctx: &mut Ctx<'_, 'e>, h: Option<ItemHandle>) -> Result<(), Abort> {
        ctx.put_word(self.word(W_HNEXT), encode_opt(h))
    }

    /// The LRU successor (towards the tail / older items).
    pub fn lru_next(&self, ctx: &mut Ctx<'_, 'e>) -> Result<Option<ItemHandle>, Abort> {
        Ok(decode_opt(ctx.get_word(self.word(W_LRU_NEXT))?))
    }

    /// Sets the LRU successor.
    pub fn set_lru_next(&self, ctx: &mut Ctx<'_, 'e>, h: Option<ItemHandle>) -> Result<(), Abort> {
        ctx.put_word(self.word(W_LRU_NEXT), encode_opt(h))
    }

    /// The LRU predecessor (towards the head / newer items).
    pub fn lru_prev(&self, ctx: &mut Ctx<'_, 'e>) -> Result<Option<ItemHandle>, Abort> {
        Ok(decode_opt(ctx.get_word(self.word(W_LRU_PREV))?))
    }

    /// Sets the LRU predecessor.
    pub fn set_lru_prev(&self, ctx: &mut Ctx<'_, 'e>, h: Option<ItemHandle>) -> Result<(), Abort> {
        ctx.put_word(self.word(W_LRU_PREV), encode_opt(h))
    }

    /// Current reference count.
    pub fn refcount(&self, ctx: &mut Ctx<'_, 'e>, policy: &Policy) -> Result<u64, Abort> {
        if ctx.in_transaction() && !policy.is_safe(Category::RefcountRmw) {
            // Reading a volatile refcount is as unsafe as writing it.
            ctx.unsafe_op(|| self.word(W_REFCOUNT).load_direct())
        } else {
            ctx.get_word(self.word(W_REFCOUNT))
        }
    }

    /// `lock incr`-style refcount increment; returns the new count.
    pub fn ref_incr(&self, ctx: &mut Ctx<'_, 'e>, policy: &Policy) -> Result<u64, Abort> {
        Ok(ctx.refcount_add(policy, self.word(W_REFCOUNT), 1)? + 1)
    }

    /// Refcount decrement; returns the new count.
    ///
    /// # Panics
    ///
    /// Terminates (memcached asserts) on underflow.
    pub fn ref_decr(&self, ctx: &mut Ctx<'_, 'e>, policy: &Policy) -> Result<u64, Abort> {
        let old = ctx.refcount_add(policy, self.word(W_REFCOUNT), u64::MAX)?;
        ctx.assert_that(policy, old > 0, "item refcount underflow")?;
        Ok(old - 1)
    }

    /// Sets the refcount outside of contention (alloc/free paths).
    pub fn set_refcount(&self, ctx: &mut Ctx<'_, 'e>, v: u64) -> Result<(), Abort> {
        ctx.put_word(self.word(W_REFCOUNT), v)
    }

    /// `it_flags` plus the slab class in bits 8..16.
    pub fn flags(&self, ctx: &mut Ctx<'_, 'e>) -> Result<u64, Abort> {
        ctx.get_word(self.word(W_FLAGS))
    }

    /// Overwrites the flag word.
    pub fn set_flags(&self, ctx: &mut Ctx<'_, 'e>, v: u64) -> Result<(), Abort> {
        ctx.put_word(self.word(W_FLAGS), v)
    }

    /// Sets or clears individual `it_flags` bits.
    pub fn update_flags(
        &self,
        ctx: &mut Ctx<'_, 'e>,
        set: u64,
        clear: u64,
    ) -> Result<(), Abort> {
        let f = self.flags(ctx)?;
        self.set_flags(ctx, (f & !clear) | set)
    }

    /// (expiry time, last access time), both in cache seconds.
    pub fn times(&self, ctx: &mut Ctx<'_, 'e>) -> Result<(u32, u32), Abort> {
        let w = ctx.get_word(self.word(W_TIMES))?;
        Ok((w as u32, (w >> 32) as u32))
    }

    /// Sets (expiry, last access).
    pub fn set_times(&self, ctx: &mut Ctx<'_, 'e>, exp: u32, last: u32) -> Result<(), Abort> {
        ctx.put_word(self.word(W_TIMES), exp as u64 | ((last as u64) << 32))
    }

    /// Decoded sizes word.
    pub fn sizes(&self, ctx: &mut Ctx<'_, 'e>) -> Result<ItemSizes, Abort> {
        Ok(ItemSizes::unpack(ctx.get_word(self.word(W_SIZES))?))
    }

    /// Stores the sizes word.
    pub fn set_sizes(&self, ctx: &mut Ctx<'_, 'e>, s: ItemSizes) -> Result<(), Abort> {
        ctx.put_word(self.word(W_SIZES), s.pack())
    }

    /// The item's CAS id.
    pub fn cas(&self, ctx: &mut Ctx<'_, 'e>) -> Result<u64, Abort> {
        ctx.get_word(self.word(W_CAS))
    }

    /// Sets the CAS id.
    pub fn set_cas(&self, ctx: &mut Ctx<'_, 'e>, v: u64) -> Result<(), Abort> {
        ctx.put_word(self.word(W_CAS), v)
    }

    /// Client-supplied flags.
    pub fn client_flags(&self, ctx: &mut Ctx<'_, 'e>) -> Result<u32, Abort> {
        Ok(ctx.get_word(self.word(W_CFLAGS))? as u32)
    }

    /// Sets the client flags.
    pub fn set_client_flags(&self, ctx: &mut Ctx<'_, 'e>, v: u32) -> Result<(), Abort> {
        ctx.put_word(self.word(W_CFLAGS), v as u64)
    }

    /// Byte offset of the key within the page.
    pub fn key_off(&self) -> usize {
        self.byte0 + HDR_BYTES
    }

    /// Writes the key bytes (alloc path; the chunk is still private).
    pub fn write_key(&self, ctx: &mut Ctx<'_, 'e>, key: &[u8]) -> Result<(), Abort> {
        ctx.put_range(self.page, self.key_off(), key)
    }

    /// Compares the item's key with a lookup key — memcached's
    /// `assoc_find` inner loop. Uses libc `memcmp` until the Lib stage
    /// replaces it with the transaction-safe reimplementation.
    pub fn key_eq(
        &self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        key: &[u8],
        nkey: u8,
    ) -> Result<bool, Abort> {
        if nkey as usize != key.len() {
            return Ok(false);
        }
        if !ctx.in_transaction() || policy.is_safe(Category::Libc) {
            Ok(tmstd::memcmp_slice(ctx, self.page, self.key_off(), key)? == 0)
        } else {
            // libc memcmp: serialize, then compare uninstrumented.
            let page = self.page;
            let off = self.key_off();
            ctx.unsafe_op(move || {
                let mut buf = vec![0u8; key.len()];
                page.load_slice_direct(off, &mut buf);
                buf == key
            })
        }
    }

    /// Reads the key out (for migration/diagnostics).
    pub fn read_key(&self, ctx: &mut Ctx<'_, 'e>, nkey: u8) -> Result<Vec<u8>, Abort> {
        let mut k = vec![0u8; nkey as usize];
        ctx.get_range(self.page, self.key_off(), &mut k)?;
        Ok(k)
    }

    /// Byte offset of the rendered suffix.
    pub fn suffix_off(&self, sizes: ItemSizes) -> usize {
        self.key_off() + sizes.nkey as usize
    }

    /// Byte offset of the value.
    pub fn value_off(&self, sizes: ItemSizes) -> usize {
        self.suffix_off(sizes) + sizes.nsuffix as usize
    }

    /// Renders the response suffix with the `snprintf` clone — a libc call
    /// until the Lib stage.
    pub fn write_suffix(
        &self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        sizes: ItemSizes,
        client_flags: u32,
    ) -> Result<(), Abort> {
        let off = self.suffix_off(sizes);
        if !ctx.in_transaction() || policy.is_safe(Category::Libc) {
            tmstd::snprintf_item_suffix(
                ctx,
                self.page,
                off,
                sizes.nsuffix as usize + 1,
                client_flags,
                sizes.nbytes,
            )?;
        } else {
            let page = self.page;
            let text = format!(" {client_flags} {} \r\n", sizes.nbytes);
            ctx.unsafe_op(move || {
                let n = text.len().min(sizes.nsuffix as usize);
                page.store_slice_direct(off, &text.as_bytes()[..n]);
            })?;
        }
        Ok(())
    }

    /// Copies the value in — memcached's `memcpy(ITEM_data(it), ...)`,
    /// a libc call until the Lib stage.
    pub fn write_value(
        &self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        sizes: ItemSizes,
        value: &[u8],
    ) -> Result<(), Abort> {
        let off = self.value_off(sizes);
        if !ctx.in_transaction() || policy.is_safe(Category::Libc) {
            tmstd::memcpy_from_slice(ctx, self.page, off, &value[..(sizes.nbytes as usize).min(value.len())])
        } else {
            let page = self.page;
            let n = (sizes.nbytes as usize).min(value.len());
            let data = value[..n].to_vec();
            ctx.unsafe_op(move || page.store_slice_direct(off, &data))?;
            Ok(())
        }
    }

    /// Copies the value out — the `get` response path.
    pub fn read_value(
        &self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        sizes: ItemSizes,
    ) -> Result<Vec<u8>, Abort> {
        let off = self.value_off(sizes);
        let n = sizes.nbytes as usize;
        if !ctx.in_transaction() || policy.is_safe(Category::Libc) {
            let mut v = vec![0u8; n];
            tmstd::memcpy_to_slice(ctx, self.page, off, &mut v)?;
            Ok(v)
        } else {
            let page = self.page;
            ctx.unsafe_op(move || {
                let mut v = vec![0u8; n];
                page.load_slice_direct(off, &mut v);
                v
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Branch, Stage};

    fn test_item(len: usize) -> (TBytes, ItemHandle) {
        let page = TBytes::zeroed(len);
        let h = ItemHandle {
            class: 1,
            page: 0,
            chunk: 0,
        };
        (page, h)
    }

    #[test]
    fn handle_word_roundtrip() {
        let h = ItemHandle {
            class: 3,
            page: 70_000,
            chunk: 513,
        };
        assert_eq!(ItemHandle::from_word(h.to_word()), h);
        assert_ne!(h.to_word(), 0, "handles must never encode as null");
    }

    #[test]
    fn opt_encoding() {
        assert_eq!(decode_opt(0), None);
        let h = ItemHandle {
            class: 0,
            page: 0,
            chunk: 0,
        };
        assert_eq!(decode_opt(encode_opt(Some(h))), Some(h));
        assert_eq!(encode_opt(None), 0);
    }

    #[test]
    fn sizes_pack_roundtrip() {
        let s = ItemSizes {
            nkey: 64,
            nsuffix: 12,
            nbytes: 1024,
        };
        assert_eq!(ItemSizes::unpack(s.pack()), s);
        assert_eq!(s.total(), HDR_BYTES + 64 + 12 + 1024);
    }

    #[test]
    fn header_fields_roundtrip() {
        let (page, handle) = test_item(256);
        let it = ItemRef {
            page: &page,
            word0: 0,
            byte0: 0,
            handle,
        };
        let mut ctx = Ctx::Direct;
        let other = ItemHandle {
            class: 2,
            page: 9,
            chunk: 4,
        };
        it.set_hnext(&mut ctx, Some(other)).unwrap();
        assert_eq!(it.hnext(&mut ctx).unwrap(), Some(other));
        it.set_lru_next(&mut ctx, None).unwrap();
        assert_eq!(it.lru_next(&mut ctx).unwrap(), None);
        it.set_times(&mut ctx, 100, 7).unwrap();
        assert_eq!(it.times(&mut ctx).unwrap(), (100, 7));
        it.set_cas(&mut ctx, 0xdead).unwrap();
        assert_eq!(it.cas(&mut ctx).unwrap(), 0xdead);
        it.set_client_flags(&mut ctx, 42).unwrap();
        assert_eq!(it.client_flags(&mut ctx).unwrap(), 42);
    }

    #[test]
    fn flag_bits() {
        let (page, handle) = test_item(256);
        let it = ItemRef {
            page: &page,
            word0: 0,
            byte0: 0,
            handle,
        };
        let mut ctx = Ctx::Direct;
        it.update_flags(&mut ctx, ITEM_LINKED, 0).unwrap();
        it.update_flags(&mut ctx, ITEM_FETCHED, 0).unwrap();
        assert_eq!(
            it.flags(&mut ctx).unwrap() & (ITEM_LINKED | ITEM_FETCHED),
            ITEM_LINKED | ITEM_FETCHED
        );
        it.update_flags(&mut ctx, 0, ITEM_LINKED).unwrap();
        assert_eq!(it.flags(&mut ctx).unwrap() & ITEM_LINKED, 0);
    }

    #[test]
    fn refcount_protocol() {
        let (page, handle) = test_item(256);
        let it = ItemRef {
            page: &page,
            word0: 0,
            byte0: 0,
            handle,
        };
        let mut ctx = Ctx::Direct;
        let policy = Branch::Baseline.policy();
        it.set_refcount(&mut ctx, 1).unwrap();
        assert_eq!(it.ref_incr(&mut ctx, &policy).unwrap(), 2);
        assert_eq!(it.ref_decr(&mut ctx, &policy).unwrap(), 1);
        assert_eq!(it.refcount(&mut ctx, &policy).unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "refcount underflow")]
    fn refcount_underflow_asserts() {
        let (page, handle) = test_item(256);
        let it = ItemRef {
            page: &page,
            word0: 0,
            byte0: 0,
            handle,
        };
        let mut ctx = Ctx::Direct;
        let policy = Branch::Baseline.policy();
        let _ = it.ref_decr(&mut ctx, &policy);
    }

    #[test]
    fn key_suffix_value_layout() {
        let (page, handle) = test_item(512);
        let it = ItemRef {
            page: &page,
            word0: 0,
            byte0: 0,
            handle,
        };
        let mut ctx = Ctx::Direct;
        let policy = Branch::Ip(Stage::Lib).policy();
        let sizes = ItemSizes {
            nkey: 5,
            nsuffix: 10,
            nbytes: 11,
        };
        it.set_sizes(&mut ctx, sizes).unwrap();
        it.write_key(&mut ctx, b"hello").unwrap();
        it.write_suffix(&mut ctx, &policy, sizes, 0).unwrap();
        it.write_value(&mut ctx, &policy, sizes, b"world wide!").unwrap();
        assert!(it.key_eq(&mut ctx, &policy, b"hello", 5).unwrap());
        assert!(!it.key_eq(&mut ctx, &policy, b"hellx", 5).unwrap());
        assert!(!it.key_eq(&mut ctx, &policy, b"hello!", 5).unwrap());
        assert_eq!(it.read_value(&mut ctx, &policy, sizes).unwrap(), b"world wide!");
        assert_eq!(it.read_key(&mut ctx, 5).unwrap(), b"hello");
    }
}
