//! Hot-key privatization: the adaptive runtime's answer to skewed
//! (Zipfian) GET traffic.
//!
//! The paper's §3.3 observation — privatized data needs no instrumentation
//! — applied to *keys* instead of code paths: when the controller sees a
//! handful of keys dominating the read mix, it installs them in a small
//! direct-mapped [`HotSet`]. A GET for an installed key is then served
//! from the privatized copy with two atomic loads and a reader lock,
//! touching neither the hash table nor the STM metadata; everything else
//! falls through to the ordinary transactional path.
//!
//! # Consistency argument (DESIGN.md §15.4)
//!
//! Every published entry carries a commit-time stamp from the runtime's
//! time base, and replacement is strictly-greater ("max-stamp-wins"):
//!
//! * **Writers** (SET/delete) publish from an onCommit handler stamped
//!   with [`tm::last_commit_stamp`] — after the store is globally
//!   visible, before the client's reply. Two racing writers' handlers may
//!   run in either order, but their stamps order them; the newer value
//!   can never be overwritten by the older.
//! * **Readers** repopulate a stale slot with the value they observed,
//!   stamped with [`tm::TmRuntime::observation_stamp`] captured *before*
//!   their transaction began. Any writer that commits after that capture
//!   mints a strictly larger stamp, so a repopulation can never clobber a
//!   newer write — and any writer with a smaller stamp was already
//!   visible to the read, so the reader's value is at least as new.
//! * **Mutations without a full value** (incr/decr, touch) publish a
//!   [`HotState::Unknown`] marker at their commit stamp: never served,
//!   but it occupies the slot so a slower reader cannot repopulate the
//!   pre-mutation value over it. Tag churn simply clears the slot; an
//!   empty slot is always safe (the next GET takes the transactional
//!   path and repopulates).
//! * **Evictions, slab reassignment, and `flush_all`** bypass per-key
//!   publication entirely, so they invalidate wholesale: a generation
//!   counter is bumped, and entries from an older generation are never
//!   served. Publishers pass the generation they read *before* their
//!   critical section ([`HotSet::current_gen`]); the bump runs *after*
//!   the evicting transaction commits, so any value that was current
//!   when its publisher captured the generation either carries the new
//!   generation (it observed post-eviction state) or is fenced off by
//!   the bump.
//!
//! A served hot hit therefore always returns a committed state at least
//! as new as any state whose writer had replied when the GET began —
//! which is exactly the linearizability contract the transactional path
//! provides. Read-your-writes holds because a writer's publication
//! precedes its reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::cache::GetValue;

/// What a hot-set probe produced.
#[derive(Debug)]
pub(crate) enum HotLookup {
    /// Privatized hit: serve this value without a transaction.
    Hit(GetValue),
    /// Privatized miss: the key is known absent (deleted or observed
    /// missing) as of the entry's stamp.
    Absent,
    /// The key is installed but the slot has no serviceable entry (never
    /// populated, stale generation, expired, or tag collision) — take the
    /// transactional path and repopulate.
    Stale,
}

/// A publishable key state.
#[derive(Clone, Debug)]
pub(crate) enum HotState {
    /// The key maps to this value.
    Present {
        /// Value bytes.
        value: Vec<u8>,
        /// Client flags.
        flags: u32,
        /// CAS id.
        cas: u64,
        /// Relative expiry (0 = never).
        exp: u32,
    },
    /// The key is absent.
    Absent,
    /// The key changed in a way the committer could not re-render (an
    /// incr/decr's new decimal string, a touch's new expiry). Never
    /// served — but it holds the slot at the mutation's commit stamp so
    /// an older observation cannot repopulate over it.
    Unknown,
}

#[derive(Debug)]
struct HotEntry {
    key: Box<[u8]>,
    stamp: u64,
    gen: u64,
    state: HotState,
}

/// Tag word: `hv << 1 | 1`, so an armed tag for hash 0 is distinguishable
/// from an empty slot (0).
fn tag_word(hv: u32) -> u64 {
    ((hv as u64) << 1) | 1
}

#[derive(Debug, Default)]
struct HotSlot {
    tag: AtomicU64,
    entry: RwLock<Option<HotEntry>>,
}

/// The privatized hot-key table: direct-mapped, controller-armed.
#[derive(Debug)]
pub(crate) struct HotSet {
    slots: Box<[HotSlot]>,
    /// Wholesale-invalidation generation; bumped by evictions, slab
    /// rebalancing, and `flush_all`.
    gen: AtomicU64,
    /// GETs served (hit or known-absent) from the privatized copy.
    pub(crate) hits: AtomicU64,
    /// Keys armed by the controller.
    pub(crate) installs: AtomicU64,
    /// Wholesale generation invalidations.
    pub(crate) invalidations: AtomicU64,
}

impl HotSet {
    pub(crate) fn new(slots: usize) -> HotSet {
        let n = slots.next_power_of_two().max(2);
        HotSet {
            slots: (0..n).map(|_| HotSlot::default()).collect(),
            gen: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            installs: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn slot(&self, hv: u32) -> &HotSlot {
        &self.slots[hv as usize & (self.slots.len() - 1)]
    }

    /// One relaxed load: is `hv` an armed hot hash? The only hot-set cost
    /// a cold key's GET ever pays.
    #[inline]
    pub(crate) fn is_tagged(&self, hv: u32) -> bool {
        self.slot(hv).tag.load(Ordering::Acquire) == tag_word(hv)
    }

    /// Probes the privatized copy for an armed key.
    pub(crate) fn lookup(&self, hv: u32, key: &[u8], now: u32) -> HotLookup {
        let gen = self.gen.load(Ordering::Acquire);
        let guard = self.slot(hv).entry.read().unwrap();
        let Some(e) = guard.as_ref() else {
            return HotLookup::Stale;
        };
        if e.gen != gen || &*e.key != key {
            return HotLookup::Stale;
        }
        match &e.state {
            HotState::Present { value, flags, cas, exp } => {
                if *exp != 0 && *exp <= now {
                    return HotLookup::Stale;
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                HotLookup::Hit(GetValue {
                    data: value.clone(),
                    flags: *flags,
                    cas: *cas,
                })
            }
            HotState::Absent => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                HotLookup::Absent
            }
            HotState::Unknown => HotLookup::Stale,
        }
    }

    /// The invalidation generation publishers must capture *before* the
    /// critical section that observes or produces the state they publish.
    pub(crate) fn current_gen(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Publishes a key state observed (readers) or produced (writers) at
    /// `stamp`, under the generation the publisher captured before its
    /// critical section. Newest-wins: an existing entry is only replaced
    /// by a newer generation, or the same generation with a strictly
    /// larger stamp.
    pub(crate) fn publish(&self, hv: u32, key: &[u8], gen: u64, stamp: u64, state: HotState) {
        let slot = self.slot(hv);
        if slot.tag.load(Ordering::Acquire) != tag_word(hv) {
            return;
        }
        let mut guard = slot.entry.write().unwrap();
        if let Some(e) = guard.as_ref() {
            if e.gen > gen || (e.gen == gen && e.stamp >= stamp) {
                return;
            }
        }
        *guard = Some(HotEntry {
            key: key.into(),
            stamp,
            gen,
            state,
        });
    }

    /// Wholesale invalidation: evictions, slab reassignment, `flush_all`.
    /// Entries from older generations are never served again.
    pub(crate) fn bump_gen(&self) {
        self.gen.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Arms exactly `tags` (hottest first — on a direct-map collision the
    /// earlier, hotter hash keeps the slot). Slots whose tag changes drop
    /// their entry; already-armed tags keep theirs warm.
    pub(crate) fn retune(&self, tags: &[u32]) {
        let mut claimed = vec![false; self.slots.len()];
        let mut keep = vec![0u64; self.slots.len()];
        for &hv in tags {
            let i = hv as usize & (self.slots.len() - 1);
            if !claimed[i] {
                claimed[i] = true;
                keep[i] = tag_word(hv);
            }
        }
        for (slot, &want) in self.slots.iter().zip(&keep) {
            let cur = slot.tag.load(Ordering::Acquire);
            if cur == want {
                continue;
            }
            // Disarm before clearing so a concurrent publish for the old
            // tag cannot land after the clear.
            slot.tag.store(0, Ordering::Release);
            *slot.entry.write().unwrap() = None;
            if want != 0 {
                slot.tag.store(want, Ordering::Release);
                self.installs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of currently armed slots (diagnostics).
    pub(crate) fn armed(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.tag.load(Ordering::Acquire) != 0)
            .count()
    }
}

/// One worker's lossy key-popularity sketch: a direct-mapped row of
/// `(hash, count)` pairs maintained MJRTY-style (match: count up;
/// empty: claim; mismatch: count down). Single-writer (its worker), so
/// plain relaxed load/store pairs suffice; the controller drains it with
/// swaps each epoch.
#[derive(Debug)]
pub(crate) struct HotSketch {
    rows: Box<[AtomicU64]>,
}

const SKETCH_ROWS: usize = 64;

impl Default for HotSketch {
    fn default() -> Self {
        HotSketch {
            rows: (0..SKETCH_ROWS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl HotSketch {
    /// Records one access to `hv`. Two relaxed atomics on the GET path.
    #[inline]
    pub(crate) fn note(&self, hv: u32) {
        let row = &self.rows[hv as usize & (SKETCH_ROWS - 1)];
        let cur = row.load(Ordering::Relaxed);
        let (tag, cnt) = ((cur >> 32) as u32, cur as u32);
        let next = if tag == hv || cnt == 0 {
            ((hv as u64) << 32) | (cnt.saturating_add(1) as u64)
        } else {
            ((tag as u64) << 32) | (cnt - 1) as u64
        };
        row.store(next, Ordering::Relaxed);
    }

    /// Drains the sketch, returning surviving `(hash, count)` pairs and
    /// zeroing the rows for the next epoch.
    pub(crate) fn drain(&self) -> Vec<(u32, u32)> {
        self.rows
            .iter()
            .filter_map(|r| {
                let v = r.swap(0, Ordering::Relaxed);
                (v != 0).then(|| ((v >> 32) as u32, v as u32))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn present(v: &[u8], cas: u64) -> HotState {
        HotState::Present {
            value: v.to_vec(),
            flags: 0,
            cas,
            exp: 0,
        }
    }

    #[test]
    fn untagged_keys_never_serve_or_publish() {
        let h = HotSet::new(8);
        assert!(!h.is_tagged(42));
        h.publish(42, b"k", 0, 10, present(b"v", 1));
        assert!(matches!(h.lookup(42, b"k", 5), HotLookup::Stale));
    }

    #[test]
    fn publish_then_lookup_roundtrip() {
        let h = HotSet::new(8);
        h.retune(&[42]);
        assert!(h.is_tagged(42));
        assert!(matches!(h.lookup(42, b"k", 5), HotLookup::Stale));
        h.publish(42, b"k", h.current_gen(), 10, present(b"v1", 7));
        match h.lookup(42, b"k", 5) {
            HotLookup::Hit(v) => {
                assert_eq!(v.data, b"v1");
                assert_eq!(v.cas, 7);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(h.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn max_stamp_wins() {
        let h = HotSet::new(8);
        h.retune(&[1]);
        let g = h.current_gen();
        h.publish(1, b"k", g, 20, present(b"new", 2));
        h.publish(1, b"k", g, 10, present(b"old", 1)); // late, older: ignored
        match h.lookup(1, b"k", 5) {
            HotLookup::Hit(v) => assert_eq!(v.data, b"new"),
            other => panic!("{other:?}"),
        }
        h.publish(1, b"k", g, 20, present(b"tie", 3)); // equal stamp: ignored
        match h.lookup(1, b"k", 5) {
            HotLookup::Hit(v) => assert_eq!(v.data, b"new"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tombstones_serve_known_absence() {
        let h = HotSet::new(8);
        h.retune(&[1]);
        let g = h.current_gen();
        h.publish(1, b"k", g, 10, present(b"v", 1));
        h.publish(1, b"k", g, 11, HotState::Absent);
        assert!(matches!(h.lookup(1, b"k", 5), HotLookup::Absent));
    }

    #[test]
    fn unknown_blocks_stale_repopulation_but_never_serves() {
        let h = HotSet::new(8);
        h.retune(&[1]);
        let g = h.current_gen();
        h.publish(1, b"k", g, 10, present(b"old", 1));
        // incr committed at stamp 20: the cached copy is wrong now.
        h.publish(1, b"k", g, 20, HotState::Unknown);
        assert!(matches!(h.lookup(1, b"k", 5), HotLookup::Stale));
        // A reader that observed the pre-incr value cannot resurrect it…
        h.publish(1, b"k", g, 15, present(b"old", 1));
        assert!(matches!(h.lookup(1, b"k", 5), HotLookup::Stale));
        // …but a fresh observation taken after the incr can.
        h.publish(1, b"k", g, 25, present(b"new", 2));
        assert!(matches!(h.lookup(1, b"k", 5), HotLookup::Hit(_)));
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let h = HotSet::new(8);
        h.retune(&[1, 2]);
        let g0 = h.current_gen();
        h.publish(1, b"a", g0, 10, present(b"v", 1));
        h.bump_gen();
        assert!(matches!(h.lookup(1, b"a", 5), HotLookup::Stale));
        // A publisher still holding the pre-bump generation is fenced out…
        h.publish(1, b"a", g0, 50, present(b"stale", 9));
        assert!(matches!(h.lookup(1, b"a", 5), HotLookup::Stale));
        // …while one that captured the new generation lands even with a
        // smaller stamp (stamps only order within a generation).
        h.publish(1, b"a", h.current_gen(), 5, present(b"w", 2));
        assert!(matches!(h.lookup(1, b"a", 5), HotLookup::Hit(_)));
    }

    #[test]
    fn expiry_is_checked_on_the_fast_path() {
        let h = HotSet::new(8);
        h.retune(&[1]);
        h.publish(
            1,
            b"k",
            h.current_gen(),
            10,
            HotState::Present {
                value: b"v".to_vec(),
                flags: 0,
                cas: 1,
                exp: 100,
            },
        );
        assert!(matches!(h.lookup(1, b"k", 99), HotLookup::Hit(_)));
        assert!(matches!(h.lookup(1, b"k", 100), HotLookup::Stale));
    }

    #[test]
    fn retune_keeps_survivors_and_clears_churn() {
        let h = HotSet::new(8);
        h.retune(&[1, 2]);
        let g = h.current_gen();
        h.publish(1, b"a", g, 10, present(b"v", 1));
        h.publish(2, b"b", g, 10, present(b"w", 2));
        h.retune(&[1, 10]); // 2 disarmed, 1 survives (entry kept warm)
        assert!(matches!(h.lookup(1, b"a", 5), HotLookup::Hit(_)));
        assert!(!h.is_tagged(2));
        assert!(h.is_tagged(10));
        assert_eq!(h.armed(), 2);
    }

    #[test]
    fn direct_map_collision_prefers_hotter() {
        let h = HotSet::new(8); // mask 7: 3 and 11 collide
        h.retune(&[3, 11]);
        assert!(h.is_tagged(3), "hotter (listed first) keeps the slot");
        assert!(!h.is_tagged(11));
    }

    #[test]
    fn tag_zero_hash_is_armable() {
        let h = HotSet::new(8);
        assert!(!h.is_tagged(0), "empty slot must not match hash 0");
        h.retune(&[0]);
        assert!(h.is_tagged(0));
    }

    #[test]
    fn sketch_finds_the_heavy_hitter() {
        let s = HotSketch::default();
        for i in 0..1000u32 {
            s.note(7);
            s.note(i.wrapping_mul(2654435761)); // noise
        }
        let top = s.drain();
        let seven = top.iter().find(|(hv, _)| *hv == 7);
        assert!(seven.is_some_and(|&(_, c)| c > 100), "lost the heavy hitter: {top:?}");
        assert!(s.drain().is_empty(), "drain must reset");
    }
}
