//! [`McCache`]: the cache façade with one operation driver per branch
//! family — lock-based (Baseline/Semaphore), IP (privatized item locks),
//! and IT (transactional item sections) — plus the two maintenance threads
//! (hash-table expansion and slab rebalancing) and their condition
//! synchronization in both the condvar (Figure 2, left) and semaphore
//! (Figure 2, comments) forms.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lockprof::{ProfiledMutex, Profiler};
use lockprof::sync::Condvar;
use tm::{Abort, Algorithm, ContentionManager, RelaxedPlan, SerialLockMode, StatsSnapshot, TmRuntime, Transaction};
use tmstd::ByteAccess;

use crate::core::{AllocError, CacheCore, GetHit};
use crate::ctx::Ctx;
use crate::dur::{self, DurLog, DurSnapshot, Record};
use crate::hashes::jenkins_hash;
use crate::hot::{HotLookup, HotSet, HotSketch, HotState};
use crate::item::ItemHandle;
use crate::policy::{Branch, Category, ItemMode, Policy, SectionKind};
use crate::sem::Semaphore;
use crate::slabs::SlabConfig;
use crate::stats::{GlobalSnapshot, ThreadSnapshot, ThreadStats};

/// Longest accepted key, as in memcached.
pub const KEY_MAX: usize = 250;

/// Every Nth GET of a hot key deliberately bypasses the privatized copy
/// and runs the real transactional lookup, so the backing item keeps
/// collecting LRU bumps (a hot key served purely from the hot set would
/// age to the LRU tail and be evicted).
const HOT_REFRESH_EVERY: u64 = 64;

/// Minimum epoch sketch count for a key hash to be worth arming.
const HOT_MIN_COUNT: u64 = 8;

/// Bounds for the controller's magazine-capacity retuning.
const MAG_MIN: usize = 2;
const MAG_MAX: usize = 1024;

/// Cache configuration.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Which point of the paper's history to run.
    pub branch: Branch,
    /// STM algorithm for the transactional branches (Figure 11).
    pub algorithm: Algorithm,
    /// Contention manager; `None` derives GCC's default (serialize-after-
    /// 100) when the serial lock is present, and no-CM otherwise.
    pub contention: Option<ContentionManager>,
    /// Slab geometry.
    pub slab: SlabConfig,
    /// Initial hash power (2^n buckets).
    pub hash_power: u32,
    /// Maximum hash power the table can expand to.
    pub hash_power_max: u32,
    /// Item-lock stripes (2^n).
    pub item_lock_power: u32,
    /// Number of worker slots (per-thread stats blocks).
    pub workers: usize,
    /// Verbose logging (the `fprintf(stderr, ...)` serialization site).
    pub verbose: bool,
    /// Bump an item's LRU position on every Nth get per worker — the
    /// compressed model of memcached's 60-second `item_update` rule.
    pub lru_bump_every: u64,
    /// Run the two maintenance threads.
    pub maintenance: bool,
    /// §5 future-work optimization: on IT branches, replace the get path's
    /// refcount incr/decr pair with a plain transactional read (valid
    /// because the whole get is one atomic transaction). Ignored on lock
    /// and IP branches, where privatized readers still need real
    /// reference counts.
    pub refcount_elision: bool,
    /// Per-worker slab-magazine capacity, in chunks per size class; 0
    /// disables the magazines (the default, which keeps the Tables 1–4
    /// serialization profile bit-identical). When set on an IT branch,
    /// each worker keeps a private cache of free chunks restocked and
    /// drained in short dedicated transactions, so a steady-state SET
    /// stops transactionally touching the global per-class free lists:
    /// allocation becomes a private pop, and the whole store (header,
    /// value, link, stats) collapses into one transaction. Ignored on
    /// lock and IP branches.
    pub magazine: usize,
    /// Commit-clock shards for the STM runtime (power of two in `1..=64`).
    /// The default of 8 spreads eager/lazy commit CASes over eight cache
    /// lines with worker→shard affinity; 1 reproduces the classic global
    /// clock timestamp-for-timestamp (the `tablecheck` configuration).
    pub clock_shards: usize,
    /// Directory for the commit-time redo log (DESIGN §14). `None` (the
    /// default) disables durability entirely — no hook, no handler, no
    /// cost on the commit path. When set, startup replays any surviving
    /// segments before the cache accepts operations.
    pub dur_path: Option<std::path::PathBuf>,
    /// When the redo-log writer calls `fdatasync`; ignored without
    /// [`McConfig::dur_path`].
    pub dur_fsync: crate::dur::DurFsync,
    /// Redo-log segment size: the writer rotates to a fresh segment file
    /// before exceeding this many bytes.
    pub dur_segment_bytes: u64,
    /// Recovery-time compaction trigger: once the log exceeds one segment,
    /// rewrite it as a single sealed segment whenever the live entries
    /// account for less than this fraction of the on-disk bytes.
    pub dur_compact_ratio: f64,
    /// Run the adaptive controller (DESIGN §15): a feedback thread that
    /// samples TM and cache counters every [`McConfig::adapt_epoch_ms`]
    /// and retunes the running configuration — algorithm + contention
    /// manager via [`tm::TmRuntime::switch_config`], the LRU-bump cadence,
    /// the per-worker magazine capacity, and the hot-key set. Only
    /// meaningful on transactional branches; ignored elsewhere.
    pub adapt: bool,
    /// The controller's sampling epoch, in milliseconds.
    pub adapt_epoch_ms: u64,
    /// Hot-key privatization slots (rounded up to a power of two). 0
    /// disables the hot set entirely; nonzero arms it for the controller
    /// (or tests) to install keys into. Transactional branches only.
    pub hot_slots: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            branch: Branch::Baseline,
            algorithm: Algorithm::Eager,
            contention: None,
            slab: SlabConfig::default(),
            hash_power: 12,
            hash_power_max: 17,
            item_lock_power: 8,
            workers: 4,
            verbose: false,
            lru_bump_every: 8,
            maintenance: true,
            refcount_elision: false,
            magazine: 0,
            clock_shards: 8,
            dur_path: None,
            dur_fsync: crate::dur::DurFsync::EveryN(32),
            dur_segment_bytes: 4 << 20,
            dur_compact_ratio: 0.5,
            adapt: false,
            adapt_epoch_ms: 50,
            hot_slots: 0,
        }
    }
}

/// A returned value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetValue {
    /// The stored bytes.
    pub data: Vec<u8>,
    /// Client flags.
    pub flags: u32,
    /// CAS id.
    pub cas: u64,
}

/// Store command flavors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreMode {
    /// Unconditional store.
    Set,
    /// Store only if absent.
    Add,
    /// Store only if present.
    Replace,
    /// Store only if present with this CAS id.
    Cas(u64),
}

/// Store command outcomes (the memcached protocol's reply set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreStatus {
    /// `STORED`.
    Stored,
    /// `NOT_STORED` (failed `add`/`replace` predicate).
    NotStored,
    /// `EXISTS` (CAS mismatch).
    Exists,
    /// `NOT_FOUND` (CAS on a missing key).
    NotFound,
    /// `SERVER_ERROR object too large for cache`.
    TooLarge,
    /// `SERVER_ERROR out of memory storing object`.
    OutOfMemory,
}

/// One operation of a [`McCache::store_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct StoreOp<'a> {
    /// Store flavor + predicate.
    pub mode: StoreMode,
    /// Key bytes.
    pub key: &'a [u8],
    /// Value bytes.
    pub value: &'a [u8],
    /// Client flags.
    pub flags: u32,
    /// Expiry time.
    pub exptime: u32,
}

/// Outcome of `incr`/`decr`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithStatus {
    /// New value.
    Ok(u64),
    /// `NOT_FOUND`.
    NotFound,
    /// `CLIENT_ERROR cannot increment or decrement non-numeric value`.
    NonNumeric,
}

/// One worker's private chunk cache: a row of free handles per slab
/// class, each row sized to the configured magazine capacity at start so
/// steady-state pops and pushes never touch the heap. Chunks held here
/// are invisible to the allocator and the rebalancer — `free_count` and
/// `page_free` were decremented when the refill popped them — and only
/// become shared again via a flush or a committed link.
#[derive(Debug, Default)]
struct Magazine {
    rows: Vec<Vec<ItemHandle>>,
}

/// Padded to a cache-line pair so adjacent workers' stat blocks, op
/// counters, and magazine state never false-share (128 bytes covers the
/// adjacent-line prefetcher on x86).
#[repr(align(128))]
struct WorkerSlot {
    lock: ProfiledMutex<()>,
    stats: ThreadStats,
    op_count: AtomicU64,
    magazine: Mutex<Magazine>,
    /// Lossy key-popularity sketch, fed by this worker's GETs and drained
    /// by the adaptive controller each epoch.
    sketch: HotSketch,
}

/// The adaptive controller's epoch baselines: counter values as of the
/// previous tick, the configuration it believes is installed, and the
/// hot-key tags it last armed. Locked only by the controller thread and
/// the deterministic test hook ([`McCache::adapt_tick`]).
struct AdaptState {
    tm: StatsSnapshot,
    sets: u64,
    refills: u64,
    flushes: u64,
    cur: tm::adapt::AdaptConfig,
    armed: Vec<u32>,
}

// Layout guard (see crates/tm/tests/layout_guard.rs for the STM twins):
// worker slots must start on — and occupy whole multiples of — the padded
// 128-byte boundary, or adjacent workers' stat counters false-share again.
const _: () = assert!(std::mem::align_of::<WorkerSlot>() == 128, "WorkerSlot must keep its 128-byte alignment");
const _: () = assert!(std::mem::size_of::<WorkerSlot>() % 128 == 0, "WorkerSlot must fill whole 128-byte units");

/// The cache. Create with [`McCache::start`]; share via the returned
/// [`Arc`]; maintenance threads stop when [`McCache::shutdown`] runs (also
/// called on drop of the handle returned by `start`).
pub struct McCache {
    cfg: McConfig,
    policy: Policy,
    rt: TmRuntime,
    core: CacheCore,
    profiler: Profiler,
    start_time: Instant,
    /// Unix seconds corresponding to `rel_time() == 0`, fixed at start so
    /// redo records carry wall-clock times that survive a restart.
    unix_base: u64,
    /// The redo-log writer; empty while recovery replays (replayed inserts
    /// must not re-log) and forever when durability is off.
    dur: OnceLock<Arc<DurLog>>,
    // Lock-branch locks, in the §3.1 order: item, cache, slabs, stats.
    cache_lock: ProfiledMutex<()>,
    slabs_lock: ProfiledMutex<()>,
    stats_lock: ProfiledMutex<()>,
    rebalance_mutex: ProfiledMutex<()>,
    // Condition synchronization, both forms.
    assoc_cv: Condvar,
    slab_cv: Condvar,
    assoc_sem: Semaphore,
    slab_sem: Semaphore,
    workers: Vec<WorkerSlot>,
    log_lines: AtomicU64,
    shutdown: AtomicBool,
    // Adaptive-runtime state (DESIGN §15). The live knobs the controller
    // writes and the hot paths read; each starts at its configured value
    // and never leaves the hot path's cache line cold (plain relaxed
    // atomics, no locks).
    /// Live per-worker magazine capacity; `cfg.magazine` is only the seed.
    mag_cap: AtomicUsize,
    /// Live LRU-bump cadence; `cfg.lru_bump_every` is only the seed.
    bump_every: AtomicU64,
    /// Hot-key privatization table; present iff `cfg.hot_slots > 0` on a
    /// transactional branch.
    hot: Option<Arc<HotSet>>,
    /// Controller epochs completed.
    adapt_epochs: AtomicU64,
    /// Magazine-capacity retunes applied.
    adapt_mag_resizes: AtomicU64,
    /// LRU-bump-cadence retunes applied.
    adapt_ro_tunes: AtomicU64,
    /// Controller epoch baselines (see [`AdaptState`]).
    adapt_state: Mutex<AdaptState>,
    // Robustness telemetry: panics caught at the two supervision
    // boundaries (per-request guards in `proto`, maintenance respawn).
    request_panics: AtomicU64,
    maintenance_panics: AtomicU64,
    // Test-only traps that make the next request / maintenance wakeup
    // panic deliberately (see the `trip_*` methods).
    request_panic_trap: AtomicBool,
    assoc_panic_trap: AtomicBool,
    slab_panic_trap: AtomicBool,
}

impl std::fmt::Debug for McCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McCache")
            .field("branch", &self.cfg.branch.to_string())
            .field("algorithm", &self.cfg.algorithm)
            .finish_non_exhaustive()
    }
}

/// Owns the maintenance threads; shuts the cache down on drop.
#[derive(Debug)]
pub struct McHandle {
    cache: Arc<McCache>,
    threads: Vec<JoinHandle<()>>,
}

impl McHandle {
    /// The shared cache.
    pub fn cache(&self) -> &Arc<McCache> {
        &self.cache
    }
}

impl std::ops::Deref for McHandle {
    type Target = McCache;
    fn deref(&self) -> &McCache {
        &self.cache
    }
}

impl Drop for McHandle {
    fn drop(&mut self) {
        self.cache.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Aggregated statistics for `stats`-style reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Global counters.
    pub global: GlobalSnapshot,
    /// Sum of per-thread counters.
    pub threads: ThreadSnapshot,
    /// Verbose log lines emitted.
    pub log_lines: u64,
    /// Request panics converted to error responses.
    pub request_panics: u64,
    /// Maintenance-thread panics recovered by respawn.
    pub maintenance_panics: u64,
    /// Adaptive-controller epochs completed (0 when the controller is off).
    pub adapt_epochs: u64,
    /// Algorithm/CM switches the TM runtime has performed.
    pub adapt_switches: u64,
    /// Magazine-capacity retunes the controller applied.
    pub adapt_mag_resizes: u64,
    /// LRU-bump-cadence retunes the controller applied.
    pub adapt_ro_tunes: u64,
    /// Live per-worker magazine capacity.
    pub magazine_cap: u64,
    /// Live LRU-bump cadence.
    pub lru_bump_every: u64,
    /// GETs served from the privatized hot-key set.
    pub hot_hits: u64,
    /// Hot-key installs (slots armed by retunes).
    pub hot_installs: u64,
    /// Wholesale hot-set invalidations (evictions, rebalances, flushes).
    pub hot_invalidations: u64,
    /// Currently armed hot-key slots.
    pub hot_armed: u64,
}

impl McCache {
    /// Builds the cache and spawns its maintenance threads.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero workers, or a
    /// contention manager that needs the serial lock on a NoLock branch).
    pub fn start(cfg: McConfig) -> McHandle {
        assert!(cfg.workers > 0, "need at least one worker slot");
        let policy = cfg.branch.policy();
        let cm = cfg.contention.unwrap_or(if policy.serial_lock {
            ContentionManager::GCC_DEFAULT
        } else {
            ContentionManager::None
        });
        let rt = TmRuntime::builder()
            .algorithm(cfg.algorithm)
            .contention_manager(cm)
            .serial_lock(if policy.serial_lock {
                SerialLockMode::ReaderWriter
            } else {
                SerialLockMode::None
            })
            .clock_shards(cfg.clock_shards)
            .build();
        let profiler = Profiler::new();
        let core = CacheCore::new(
            cfg.slab,
            cfg.hash_power,
            cfg.hash_power_max,
            cfg.item_lock_power,
            &profiler,
        );
        let magazines_on = cfg.magazine > 0 && policy.item_mode == ItemMode::Transactional;
        let workers = (0..cfg.workers)
            .map(|i| WorkerSlot {
                lock: ProfiledMutex::new(&format!("thread_stats[{i}]"), (), &profiler),
                stats: ThreadStats::default(),
                op_count: AtomicU64::new(0),
                magazine: Mutex::new(Magazine {
                    rows: if magazines_on {
                        (0..core.arena.class_count())
                            .map(|_| Vec::with_capacity(cfg.magazine))
                            .collect()
                    } else {
                        Vec::new()
                    },
                }),
                sketch: HotSketch::default(),
            })
            .collect();
        let hot = (cfg.hot_slots > 0 && policy.item_mode == ItemMode::Transactional)
            .then(|| Arc::new(HotSet::new(cfg.hot_slots)));
        let cache = Arc::new(McCache {
            policy,
            rt,
            core,
            cache_lock: ProfiledMutex::new("cache_lock", (), &profiler),
            slabs_lock: ProfiledMutex::new("slabs_lock", (), &profiler),
            stats_lock: ProfiledMutex::new("stats_lock", (), &profiler),
            rebalance_mutex: ProfiledMutex::new("slab_rebalance_lock", (), &profiler),
            assoc_cv: Condvar::new(),
            slab_cv: Condvar::new(),
            assoc_sem: Semaphore::new(),
            slab_sem: Semaphore::new(),
            workers,
            log_lines: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            mag_cap: AtomicUsize::new(cfg.magazine),
            bump_every: AtomicU64::new(cfg.lru_bump_every),
            hot,
            adapt_epochs: AtomicU64::new(0),
            adapt_mag_resizes: AtomicU64::new(0),
            adapt_ro_tunes: AtomicU64::new(0),
            adapt_state: Mutex::new(AdaptState {
                tm: StatsSnapshot::default(),
                sets: 0,
                refills: 0,
                flushes: 0,
                cur: tm::adapt::AdaptConfig { algorithm: cfg.algorithm, cm },
                armed: Vec::new(),
            }),
            request_panics: AtomicU64::new(0),
            maintenance_panics: AtomicU64::new(0),
            request_panic_trap: AtomicBool::new(false),
            assoc_panic_trap: AtomicBool::new(false),
            slab_panic_trap: AtomicBool::new(false),
            start_time: Instant::now(),
            unix_base: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0)
                .saturating_sub(2),
            dur: OnceLock::new(),
            profiler,
            cfg,
        });
        // Durability: replay whatever the redo log holds, then attach the
        // writer — strictly in that order, so replayed inserts are not
        // re-logged (idempotent recovery) and everything after this point
        // is. Runs before the maintenance threads and before any caller
        // can reach the wire front end (the TCP server binds only after
        // `start` returns).
        if cache.cfg.dur_path.is_some() {
            cache.recover_and_attach_log();
        }
        let mut threads = Vec::new();
        if cache.cfg.maintenance {
            threads.push(Self::supervised(&cache, McCache::assoc_maintenance_loop));
            threads.push(Self::supervised(&cache, McCache::slab_rebalance_loop));
        }
        if cache.cfg.adapt && cache.policy.item_mode == ItemMode::Transactional {
            threads.push(Self::supervised(&cache, McCache::adapt_loop));
        }
        McHandle { cache, threads }
    }

    /// Spawns a maintenance loop under a supervisor: a panic unwinding out
    /// of the loop is counted and the loop re-entered, so one bad wakeup
    /// (e.g. an assertion tripped mid-migration) degrades to a lost batch
    /// instead of silently killing hash expansion or slab rebalancing for
    /// the rest of the process's life.
    fn supervised(cache: &Arc<McCache>, body: fn(&McCache)) -> JoinHandle<()> {
        let c = cache.clone();
        std::thread::spawn(move || loop {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&c)));
            if r.is_ok() {
                // The loop only returns on shutdown.
                return;
            }
            c.maintenance_panics.fetch_add(1, Ordering::Relaxed);
            if c.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Respawn: re-enter the loop body after the panic.
        })
    }

    /// Stops the maintenance threads (idempotent) and seals the redo log
    /// so the next start recovers without the torn-tail heuristic.
    pub fn shutdown(&self) {
        if let Some(d) = self.dur.get() {
            d.seal();
        }
        self.shutdown.store(true, Ordering::SeqCst);
        self.assoc_sem.post();
        self.slab_sem.post();
        self.assoc_cv.notify_all();
        self.slab_cv.notify_all();
    }

    /// The active branch.
    pub fn branch(&self) -> Branch {
        self.cfg.branch
    }

    /// Number of registered worker slots — the valid range of the `w`
    /// index every operation takes. The TCP front end sizes its
    /// thread-per-core pool against this so each network worker owns a
    /// distinct slot.
    pub fn worker_slots(&self) -> usize {
        self.workers.len()
    }

    /// The TM runtime's statistics (Tables 1–4 raw material).
    pub fn tm_stats(&self) -> StatsSnapshot {
        self.rt.stats()
    }

    /// The mutrace-style lock contention report (§3.1 methodology).
    pub fn lock_report(&self) -> String {
        self.profiler.report_table()
    }

    /// The lock profiler itself.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Aggregated cache statistics.
    pub fn stats(&self) -> CacheStats {
        let mut threads = ThreadSnapshot::default();
        for w in &self.workers {
            threads = threads + w.stats.snapshot_direct();
        }
        let mut global = self.core.global.snapshot_direct();
        // The trimmed read path counts its commands in per-worker shards
        // (see `get_stats_privatized`) instead of touching the shared
        // `cmd_total` cell; fold the shards back in so `cmd_total` keeps
        // meaning "every command ever processed".
        global.cmd_total += threads.cmd_shard;
        let hot = self.hot.as_deref();
        CacheStats {
            global,
            threads,
            log_lines: self.log_lines.load(Ordering::Relaxed),
            request_panics: self.request_panics(),
            maintenance_panics: self.maintenance_panics(),
            adapt_epochs: self.adapt_epochs.load(Ordering::Relaxed),
            adapt_switches: self.rt.stats().config_switches,
            adapt_mag_resizes: self.adapt_mag_resizes.load(Ordering::Relaxed),
            adapt_ro_tunes: self.adapt_ro_tunes.load(Ordering::Relaxed),
            magazine_cap: self.mag_cap.load(Ordering::Relaxed) as u64,
            lru_bump_every: self.bump_every.load(Ordering::Relaxed),
            hot_hits: hot.map_or(0, |h| h.hits.load(Ordering::Relaxed)),
            hot_installs: hot.map_or(0, |h| h.installs.load(Ordering::Relaxed)),
            hot_invalidations: hot.map_or(0, |h| h.invalidations.load(Ordering::Relaxed)),
            hot_armed: hot.map_or(0, |h| h.armed() as u64),
        }
    }

    /// Cache-relative time in seconds (memcached's `current_time`), offset
    /// so that time 0/1 never collide with "immediately".
    pub fn rel_time(&self) -> u32 {
        self.start_time.elapsed().as_secs() as u32 + 2
    }

    /// Current Unix seconds, derived from the same monotonic clock as
    /// [`McCache::rel_time`] so the two never drift within a run.
    pub fn unix_time(&self) -> u64 {
        self.unix_base + self.rel_time() as u64
    }

    /// Converts a rel-time-space second to Unix seconds, preserving the
    /// "0 = never" sentinel.
    fn abs_unix(&self, rel: u32) -> u64 {
        if rel == 0 {
            0
        } else {
            self.unix_base + rel as u64
        }
    }

    // ------------------------------------------------------------------
    // Durability: redo-log hook + startup recovery (DESIGN §14)
    // ------------------------------------------------------------------

    /// Whether the redo log is attached (and not yet failed).
    pub fn dur_enabled(&self) -> bool {
        self.dur.get().is_some_and(|d| !d.is_failed())
    }

    /// Durability counters, `None` when the cache runs without a log.
    pub fn dur_stats(&self) -> Option<DurSnapshot> {
        self.dur.get().map(|d| d.stats().snapshot())
    }

    /// Registers `rec` for the redo log at this critical section's commit
    /// stamp. Inside a transaction the append rides the §3.5 onCommit
    /// hook — it runs after every runtime lock is released, stamped with
    /// [`tm::last_commit_stamp`]. Under a held lock (Lock/IP branches,
    /// recovery) the append happens immediately with a freshly minted
    /// stamp from the same time base, while the caller still holds the
    /// item lock — so same-key records land in the file in lock order.
    fn dur_record<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, rec: Record) {
        let Some(d) = self.dur.get() else { return };
        if ctx.in_transaction() {
            let d = Arc::clone(d);
            ctx.defer_or_run(move || d.append(tm::last_commit_stamp(), &rec));
        } else {
            d.append(self.rt.mint_commit_stamp(), &rec);
        }
    }

    /// Builds and registers the [`Record::Set`] for a freshly linked item.
    /// Must run inside the same critical section as the link, after the
    /// link assigned the CAS id.
    fn dur_store_record<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        h: ItemHandle,
        key: &[u8],
        value: &[u8],
        flags: u32,
    ) -> Result<(), Abort> {
        if self.dur.get().is_none() {
            return Ok(());
        }
        let it = self.core.arena.resolve(h);
        let cas = it.cas(ctx)?;
        let (exp, last) = it.times(ctx)?;
        self.dur_record(
            ctx,
            Record::Set {
                cas,
                flags,
                abs_exp: self.abs_unix(exp),
                stored_unix: self.abs_unix(last),
                key: key.to_vec(),
                value: value.to_vec(),
            },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Hot-key publication (DESIGN §15.4)
    // ------------------------------------------------------------------

    /// The hot set's current invalidation generation — capture BEFORE the
    /// critical section whose outcome will be published. 0 when the hot
    /// set is off (publishes are no-ops then anyway).
    fn hot_gen(&self) -> u64 {
        self.hot.as_deref().map_or(0, HotSet::current_gen)
    }

    /// Publishes a freshly linked item to the hot set from the linking
    /// transaction's onCommit hook, stamped with the commit stamp — after
    /// the store is globally visible, before the client's reply (which is
    /// what makes hot reads read-your-writes). Must run inside the same
    /// section as the link, after the CAS id was assigned; `gen` is the
    /// generation captured before the section.
    #[allow(clippy::too_many_arguments)]
    fn hot_record_store<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        h: ItemHandle,
        key: &[u8],
        hv: u32,
        value: &[u8],
        flags: u32,
        gen: u64,
    ) -> Result<(), Abort> {
        let Some(hot) = &self.hot else { return Ok(()) };
        if !hot.is_tagged(hv) {
            return Ok(());
        }
        let it = self.core.arena.resolve(h);
        let cas = it.cas(ctx)?;
        let (exp, _) = it.times(ctx)?;
        let hot = Arc::clone(hot);
        let key = key.to_vec();
        let value = value.to_vec();
        ctx.defer_or_run(move || {
            hot.publish(
                hv,
                &key,
                gen,
                tm::last_commit_stamp(),
                HotState::Present { value, flags, cas, exp },
            );
        });
        Ok(())
    }

    /// Publishes a commit-stamped [`HotState::Absent`] for a deleted key.
    fn hot_record_delete<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, key: &[u8], hv: u32, gen: u64) {
        let Some(hot) = &self.hot else { return };
        if !hot.is_tagged(hv) {
            return;
        }
        let hot = Arc::clone(hot);
        let key = key.to_vec();
        ctx.defer_or_run(move || {
            hot.publish(hv, &key, gen, tm::last_commit_stamp(), HotState::Absent);
        });
    }

    /// Publishes a commit-stamped [`HotState::Unknown`] for a key mutated
    /// without a re-renderable value (incr/decr, touch): never served, but
    /// it fences out repopulation from pre-mutation observations.
    fn hot_record_disturb<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, key: &[u8], hv: u32, gen: u64) {
        let Some(hot) = &self.hot else { return };
        if !hot.is_tagged(hv) {
            return;
        }
        let hot = Arc::clone(hot);
        let key = key.to_vec();
        ctx.defer_or_run(move || {
            hot.publish(hv, &key, gen, tm::last_commit_stamp(), HotState::Unknown);
        });
    }

    /// Startup recovery: scan the log directory, replay the surviving
    /// records into the (still-private) cache, optionally compact, then
    /// attach a fresh-epoch writer. Any I/O failure here degrades to a
    /// cold, cache-only start with a one-time warning — never a panic.
    fn recover_and_attach_log(&self) {
        let dir = self.cfg.dur_path.clone().expect("caller checked dur_path");
        let unix_now = self.unix_time();
        let mut recovered = 0u64;
        let mut compactions = 0u64;
        let mut torn = 0u64;
        let mut cas_floor = 0u64;
        match dur::recover(&dir) {
            Err(e) => {
                eprintln!("mcache: redo-log recovery failed ({e}); starting cold");
            }
            Ok(mut rec) => {
                torn = rec.torn_records_dropped;
                cas_floor = rec.cas_floor;
                // Expired-at-replay entries are skipped (and excluded from
                // any compacted rewrite).
                rec.entries
                    .retain(|e| e.abs_exp == 0 || e.abs_exp > unix_now);
                // CAS floor first: every replayed item must take an id
                // strictly above anything a pre-crash client saw.
                let mut ctx = Ctx::Direct;
                self.core
                    .set_cas_floor(&mut ctx, cas_floor)
                    .expect("direct");
                for e in &rec.entries {
                    if e.key.is_empty() || e.key.len() > KEY_MAX {
                        continue; // foreign garbage that still passed crc
                    }
                    let rel_exp = if e.abs_exp == 0 {
                        0
                    } else {
                        e.abs_exp.saturating_sub(self.unix_base) as u32
                    };
                    if self.store(0, StoreMode::Set, &e.key, &e.value, e.flags, rel_exp)
                        == StoreStatus::Stored
                    {
                        recovered += 1;
                    }
                }
                // Compaction: once the log outgrows a segment and most of
                // its bytes are dead, rewrite it as one sealed segment.
                let live: u64 = rec
                    .entries
                    .iter()
                    .map(|e| 64 + e.key.len() as u64 + e.value.len() as u64)
                    .sum();
                if rec.log_bytes >= self.cfg.dur_segment_bytes
                    && (live as f64) < self.cfg.dur_compact_ratio * rec.log_bytes as f64
                {
                    match dur::compact(&dir, &rec, unix_now) {
                        Ok(_) => compactions = 1,
                        Err(e) => {
                            eprintln!("mcache: redo-log compaction failed ({e}); keeping segments");
                        }
                    }
                }
            }
        }
        match DurLog::open(&dir, self.cfg.dur_fsync, self.cfg.dur_segment_bytes, cas_floor) {
            Ok(log) => {
                log.note_recovery(recovered, torn, compactions);
                let _ = self.dur.set(Arc::new(log));
            }
            Err(e) => {
                eprintln!(
                    "mcache: redo log unavailable ({e}); continuing in cache-only mode"
                );
            }
        }
    }

    /// Requests whose handler panicked and was converted to a
    /// `SERVER_ERROR` / binary internal-error response by the per-request
    /// guard in [`crate::proto`].
    pub fn request_panics(&self) -> u64 {
        self.request_panics.load(Ordering::Relaxed)
    }

    /// Panics caught by the maintenance-thread supervisor (each one means
    /// a loop was re-entered rather than left dead).
    pub fn maintenance_panics(&self) -> u64 {
        self.maintenance_panics.load(Ordering::Relaxed)
    }

    pub(crate) fn note_request_panic(&self) {
        self.request_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn take_request_panic_trap(&self) -> bool {
        self.request_panic_trap.swap(false, Ordering::SeqCst)
    }

    /// Makes the next protocol request panic inside its handler (tests the
    /// per-request guard).
    #[doc(hidden)]
    pub fn trip_request_panic(&self) {
        self.request_panic_trap.store(true, Ordering::SeqCst);
    }

    /// Makes the assoc maintenance thread panic at its next wakeup (tests
    /// the supervisor's respawn).
    #[doc(hidden)]
    pub fn trip_assoc_panic(&self) {
        self.assoc_panic_trap.store(true, Ordering::SeqCst);
    }

    /// Makes the slab rebalance thread panic at its next wakeup (tests the
    /// supervisor's respawn).
    #[doc(hidden)]
    pub fn trip_slab_panic(&self) {
        self.slab_panic_trap.store(true, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Section machinery
    // ------------------------------------------------------------------

    /// Runs one critical-section-turned-transaction. `entry` lists unsafe
    /// categories performed unconditionally at the top of the section
    /// (start-serial causes); `mid` lists those reachable later
    /// (in-flight-switch causes). Only meaningful on transactional
    /// branches.
    fn tx_section<'e, R>(
        &'e self,
        entry: &[Category],
        mid: &[Category],
        mut f: impl FnMut(&mut Ctx<'_, 'e>) -> Result<R, Abort>,
    ) -> R {
        match self.policy.section_kind(entry, mid) {
            SectionKind::Atomic => self.rt.atomic(|tx| f(&mut Ctx::Atomic(tx))),
            SectionKind::Relaxed => self
                .rt
                .relaxed(RelaxedPlan::new(), |tx| f(&mut Ctx::Relaxed(tx))),
            SectionKind::RelaxedSerial => self
                .rt
                .relaxed(RelaxedPlan::serial(), |tx| f(&mut Ctx::Relaxed(tx))),
        }
    }

    /// [`Self::tx_section`] for sections that expect to stay read-only:
    /// enters through the runtime's read-only fast lane (`atomic_ro` /
    /// `relaxed_ro`), so a GET that never writes commits without ever
    /// touching an orec or a log. A write mid-section (cold ITEM_FETCHED,
    /// refcounting without elision, LRU timestamp) promotes the attempt in
    /// flight — same semantics, just without the fast-lane discount.
    /// Sections whose policy forces serial mode take the ordinary serial
    /// path; the hint is meaningless there.
    fn tx_section_ro<'e, R>(
        &'e self,
        entry: &[Category],
        mid: &[Category],
        mut f: impl FnMut(&mut Ctx<'_, 'e>) -> Result<R, Abort>,
    ) -> R {
        match self.policy.section_kind(entry, mid) {
            SectionKind::Atomic => self.rt.atomic_ro(|tx| f(&mut Ctx::Atomic(tx))),
            SectionKind::Relaxed => self
                .rt
                .relaxed_ro(RelaxedPlan::new(), |tx| f(&mut Ctx::Relaxed(tx))),
            SectionKind::RelaxedSerial => self
                .rt
                .relaxed(RelaxedPlan::serial(), |tx| f(&mut Ctx::Relaxed(tx))),
        }
    }

    /// IP's item-lock acquire: a mini-transaction spinning on a boolean
    /// (Figure 1a's `tm_lock`).
    fn ip_item_lock(&self, stripe: usize) {
        let cell = self.core.item_locks.cell(stripe);
        loop {
            let got = self.rt.atomic(|tx| {
                if tx.read(cell)? {
                    Ok(false)
                } else {
                    tx.write(cell, true)?;
                    Ok(true)
                }
            });
            if got {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// IP's item-lock release mini-transaction (a single-location
    /// transaction expression, which GCC — and this runtime — does not
    /// optimize; §3.3 flags the cost).
    fn ip_item_unlock(&self, stripe: usize) {
        self.rt.expr_write(self.core.item_locks.cell(stripe), false);
    }

    /// Verbose logging inside a section: `fprintf(stderr, ...)` guarded by
    /// the verbose flag — unsafe pre-onCommit, a commit handler after.
    fn maybe_log<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, _what: &'static str) -> Result<(), Abort> {
        if !self.cfg.verbose {
            return Ok(());
        }
        let sink = &self.log_lines;
        if !ctx.in_transaction() {
            sink.fetch_add(1, Ordering::Relaxed);
        } else if self.policy.is_deferred(Category::LogIo) {
            ctx.defer_or_run(move || {
                sink.fetch_add(1, Ordering::Relaxed);
            });
        } else {
            ctx.unsafe_op(|| sink.fetch_add(1, Ordering::Relaxed))?;
        }
        Ok(())
    }

    /// Wakes a maintenance thread from inside a section: condvar signal in
    /// Baseline (Figure 2 left), `sem_post` after — unsafe pre-onCommit,
    /// then deferred to an onCommit handler.
    fn signal_maintenance<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        slab: bool,
    ) -> Result<(), Abort> {
        let g = &self.core.global;
        let c = ctx.fetch_add_word(g.maintenance_signals.word(), 1);
        c?;
        if !self.policy.semaphores {
            // Baseline: cond_signal while holding the lock.
            debug_assert!(!ctx.in_transaction());
            if slab {
                self.slab_cv.notify_one();
            } else {
                self.assoc_cv.notify_one();
            }
            return Ok(());
        }
        let sem = if slab { &self.slab_sem } else { &self.assoc_sem };
        if !ctx.in_transaction() {
            sem.post();
        } else if self.policy.is_deferred(Category::SemPost) {
            ctx.defer_or_run(move || sem.post());
        } else {
            ctx.unsafe_op(|| sem.post())?;
        }
        Ok(())
    }

    /// Per-op statistics: the per-thread block under its own lock, then
    /// the global `cmd_total` under `stats_lock` — the §3.1 contended
    /// lock.
    fn op_stats<'s>(
        &'s self,
        w: usize,
        f: impl Fn(&'s ThreadStats) -> (
            &'s tm::TCell<u64>,
            Option<&'s tm::TCell<u64>>,
        ),
    ) {
        let slot = &self.workers[w];
        let (a, b) = f(&slot.stats);
        let cells = std::iter::once(a).chain(b);
        if !self.policy.transactional {
            let _g = slot.lock.lock();
            let mut ctx = Ctx::Direct;
            for cell in cells {
                let v = ctx.get_word(cell.word()).expect("direct");
                ctx.put_word(cell.word(), v + 1).expect("direct");
            }
        } else {
            // The per-thread stats lock became a transaction (§3.1).
            self.tx_section(&[], &[], |ctx| {
                for cell in std::iter::once(a).chain(b) {
                    let v = ctx.get_word(cell.word())?;
                    ctx.put_word(cell.word(), v + 1)?;
                }
                Ok(())
            });
        }
    }

    fn bump_cmd_total(&self) {
        let g = &self.core.global;
        if !self.policy.transactional {
            let _s = self.stats_lock.lock();
            let mut ctx = Ctx::Direct;
            let v = ctx.get_word(g.cmd_total.word()).expect("direct");
            ctx.put_word(g.cmd_total.word(), v + 1).expect("direct");
        } else {
            self.tx_section(&[], &[], |ctx| {
                let v = ctx.get_word(g.cmd_total.word())?;
                ctx.put_word(g.cmd_total.word(), v + 1)
            });
        }
    }

    /// IT enlarges critical sections (the Figure-3 observation: "using TM
    /// will encourage programmers to enlarge critical sections"): the
    /// per-thread and global stats updates fold into the main item
    /// transaction instead of running as their own mini-transactions.
    fn stats_inline<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        cell: &'e tm::TCell<u64>,
        extra: Option<&'e tm::TCell<u64>>,
    ) -> Result<(), Abort> {
        for c in std::iter::once(cell).chain(extra) {
            let v = ctx.get_word(c.word())?;
            ctx.put_word(c.word(), v + 1)?;
        }
        let g = &self.core.global;
        let v = ctx.get_word(g.cmd_total.word())?;
        ctx.put_word(g.cmd_total.word(), v + 1)
    }

    /// GET-path stats by privatization: the per-thread block is only ever
    /// written by its owning worker, so — by the same argument IP makes for
    /// privatized item data (§3.3) — the trimmed read path updates it
    /// directly, outside the transaction, after the section ends. The
    /// global command counter becomes a per-worker shard (`cmd_shard`)
    /// folded back together at snapshot time, which keeps both the §3.1
    /// `stats_lock` hot spot and any shared stats word out of the
    /// read-only fast lane entirely.
    fn get_stats_privatized(&self, w: usize, hits: u64, misses: u64) {
        let slot = &self.workers[w];
        let _g = slot.lock.lock();
        let mut ctx = Ctx::Direct;
        for (cell, n) in [
            (&slot.stats.get_cmds, hits + misses),
            (&slot.stats.get_hits, hits),
            (&slot.stats.get_misses, misses),
            (&slot.stats.cmd_shard, hits + misses),
        ] {
            if n != 0 {
                let v = ctx.get_word(cell.word()).expect("direct");
                ctx.put_word(cell.word(), v + n).expect("direct");
            }
        }
    }

    // ------------------------------------------------------------------
    // Client operations
    // ------------------------------------------------------------------

    /// `get key`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid worker slot or the key exceeds
    /// [`KEY_MAX`].
    pub fn get(&self, w: usize, key: &[u8]) -> Option<GetValue> {
        assert!(key.len() <= KEY_MAX && !key.is_empty(), "bad key length");
        let hv = jenkins_hash(key, 0);
        let now = self.rel_time();
        let stripe = self.core.item_locks.stripe(hv);
        let ops = self.workers[w].op_count.fetch_add(1, Ordering::Relaxed);
        let bump_cadence = self.bump_every.load(Ordering::Relaxed);
        let bump_hint = bump_cadence != 0 && ops.is_multiple_of(bump_cadence);
        let core = &self.core;
        let policy = self.policy;

        let hit: Option<GetHit> = match self.policy.item_mode {
            ItemMode::Lock => {
                let _g = core.item_locks.mutex(stripe).lock();
                let mut ctx = Ctx::Direct;
                let hit = core
                    .item_get(&mut ctx, &policy, key, hv, now, bump_hint, false)
                    .expect("direct sections never abort");
                if let Some(h) = &hit {
                    if h.needs_bump {
                        // item -> cache lock order.
                        let _c = self.cache_lock.lock();
                        core.update_item(&mut ctx, &policy, h.handle, now)
                            .expect("direct");
                    }
                }
                self.maybe_log(&mut ctx, "get").expect("direct");
                hit
            }
            ItemMode::Privatize => {
                self.ip_item_lock(stripe);
                let mut ctx = Ctx::Direct;
                let hit = core
                    .item_get(&mut ctx, &policy, key, hv, now, bump_hint, false)
                    .expect("privatized sections never abort");
                self.maybe_log(&mut ctx, "get").expect("direct");
                if let Some(h) = &hit {
                    if h.needs_bump {
                        self.update_section(key, hv, h.handle, now);
                    }
                }
                self.ip_item_unlock(stripe);
                hit
            }
            ItemMode::Transactional => {
                // Hot-key privatization (DESIGN §15.4): feed the popularity
                // sketch, then try the privatized copy. Every
                // HOT_REFRESH_EVERY-th access falls through on purpose so
                // the real item still gets LRU bumps — a hot key served
                // purely from the hot set would otherwise age to the LRU
                // tail and be evicted under memory pressure.
                let hot = self.hot.as_deref();
                if hot.is_some() {
                    self.workers[w].sketch.note(hv);
                }
                let hot = hot.filter(|h| h.is_tagged(hv));
                if let Some(hs) = hot {
                    if !ops.is_multiple_of(HOT_REFRESH_EVERY) {
                        match hs.lookup(hv, key, now) {
                            HotLookup::Hit(v) => {
                                self.get_stats_privatized(w, 1, 0);
                                return Some(v);
                            }
                            HotLookup::Absent => {
                                self.get_stats_privatized(w, 0, 1);
                                return None;
                            }
                            HotLookup::Stale => {}
                        }
                    }
                }
                // Repopulation metadata, captured BEFORE the transaction:
                // any writer committing after this observation stamp mints
                // a strictly larger one, and any eviction committing after
                // this generation bumps it — either way the publish below
                // can never mask a newer state.
                let hot_obs = hot.map(|hs| (hs.current_gen(), self.rt.observation_stamp()));
                // The trimmed GET of the read-path overdrive: the
                // transaction carries only what the paper's IP shape needs
                // atomically — hash walk, key memcmp, refcount bump — and
                // enters through the read-only fast lane. Stats moved out
                // (see `get_stats_privatized`); with refcount elision a
                // warm hit therefore never writes and commits fast-lane.
                let elide = self.cfg.refcount_elision;
                let hit = self.tx_section_ro(
                    &[Category::VolatileFlag],
                    &[Category::Libc, Category::RefcountRmw, Category::LogIo, Category::AssertAbort],
                    |ctx| {
                        let h = core.item_get(ctx, &policy, key, hv, now, bump_hint, elide)?;
                        self.maybe_log(ctx, "get")?;
                        Ok(h)
                    },
                );
                if let (Some(hs), Some((gen, obs))) = (hot, hot_obs) {
                    let state = match &hit {
                        Some(h) => HotState::Present {
                            value: h.value.clone(),
                            flags: h.flags,
                            cas: h.cas,
                            exp: h.exp,
                        },
                        None => HotState::Absent,
                    };
                    hs.publish(hv, key, gen, obs, state);
                }
                if let Some(h) = &hit {
                    if h.needs_bump {
                        self.update_section(key, hv, h.handle, now);
                    }
                }
                self.get_stats_privatized(w, hit.is_some() as u64, hit.is_none() as u64);
                hit
            }
        };

        if self.policy.item_mode != ItemMode::Transactional {
            self.op_stats(w, |t| {
                (
                    &t.get_cmds,
                    Some(if hit.is_some() { &t.get_hits } else { &t.get_misses }),
                )
            });
            self.bump_cmd_total();
        }
        hit.map(|h| GetValue {
            data: h.value,
            flags: h.flags,
            cas: h.cas,
        })
    }

    /// Multiget: `get k1 k2 ... kn` as ONE critical section. On the
    /// transactional branches the whole batch runs as a single read-only
    /// fast-lane transaction — one begin, one snapshot to extend, one
    /// commit fence for n lookups — which is where batching pays: the
    /// per-transaction overhead the paper measures on the GET path is
    /// amortized across the batch. Lock branches fall back to per-key
    /// [`Self::get`]: their striped item locks cannot be held jointly
    /// without ordering, and memcached's real multiget re-acquires per key
    /// anyway.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid worker slot or any key exceeds
    /// [`KEY_MAX`].
    pub fn get_multi(&self, w: usize, keys: &[&[u8]]) -> Vec<Option<GetValue>> {
        if self.policy.item_mode != ItemMode::Transactional || keys.len() < 2 {
            return keys.iter().map(|k| self.get(w, k)).collect();
        }
        for key in keys {
            assert!(key.len() <= KEY_MAX && !key.is_empty(), "bad key length");
        }
        let now = self.rel_time();
        let core = &self.core;
        let policy = self.policy;
        let elide = self.cfg.refcount_elision;
        // Hash + LRU-bump decisions are per-key and side-effecting
        // (op_count advances), so take them once, outside the retry loop.
        let bump_cadence = self.bump_every.load(Ordering::Relaxed);
        let meta: Vec<(u32, bool)> = keys
            .iter()
            .map(|key| {
                let hv = jenkins_hash(key, 0);
                let ops = self.workers[w].op_count.fetch_add(1, Ordering::Relaxed);
                let bump = bump_cadence != 0 && ops.is_multiple_of(bump_cadence);
                (hv, bump)
            })
            .collect();
        let hits: Vec<Option<GetHit>> = self.tx_section_ro(
            &[Category::VolatileFlag],
            &[Category::Libc, Category::RefcountRmw, Category::LogIo, Category::AssertAbort],
            |ctx| {
                let mut out = Vec::with_capacity(keys.len());
                for (key, &(hv, bump)) in keys.iter().zip(&meta) {
                    out.push(core.item_get(ctx, &policy, key, hv, now, bump, elide)?);
                }
                self.maybe_log(ctx, "get_multi")?;
                Ok(out)
            },
        );
        for (key, (hit, &(hv, _))) in keys.iter().zip(hits.iter().zip(&meta)) {
            if let Some(h) = hit {
                if h.needs_bump {
                    self.update_section(key, hv, h.handle, now);
                }
            }
        }
        let n_hits = hits.iter().flatten().count() as u64;
        self.get_stats_privatized(w, n_hits, keys.len() as u64 - n_hits);
        hits.into_iter()
            .map(|o| {
                o.map(|h| GetValue {
                    data: h.value,
                    flags: h.flags,
                    cas: h.cas,
                })
            })
            .collect()
    }

    /// The `item_update` critical section (cache-lock category): re-finds
    /// the item by key — it may have been evicted since the lookup — and
    /// bumps its LRU position. The section starts with safe pointer work;
    /// the re-find's `memcmp` is a mid-transaction libc call until Lib, so
    /// this is the in-flight-switch site of Tables 1–2.
    fn update_section(&self, key: &[u8], hv: u32, h: ItemHandle, now: u32) {
        let core = &self.core;
        let policy = self.policy;
        self.tx_section(
            &[],
            &[Category::Libc, Category::AssertAbort],
            |ctx| {
                if let Some(cur) = core.assoc.find(ctx, &policy, &core.arena, key, hv)? {
                    if cur == h {
                        core.update_item(ctx, &policy, h, now)?;
                    }
                }
                Ok(())
            },
        );
    }

    /// `set key`.
    pub fn set(&self, w: usize, key: &[u8], value: &[u8], flags: u32, exptime: u32) -> StoreStatus {
        self.store(w, StoreMode::Set, key, value, flags, exptime)
    }

    /// `add key` (store only if absent).
    pub fn add(&self, w: usize, key: &[u8], value: &[u8], flags: u32, exptime: u32) -> StoreStatus {
        self.store(w, StoreMode::Add, key, value, flags, exptime)
    }

    /// `replace key` (store only if present).
    pub fn replace(
        &self,
        w: usize,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
    ) -> StoreStatus {
        self.store(w, StoreMode::Replace, key, value, flags, exptime)
    }

    /// `cas key` (store only if unchanged since `cas_id`).
    pub fn cas(
        &self,
        w: usize,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        cas_id: u64,
    ) -> StoreStatus {
        self.store(w, StoreMode::Cas(cas_id), key, value, flags, exptime)
    }

    /// `append key`: concatenate after the existing value (get + CAS loop,
    /// as a client library would retry).
    pub fn append(&self, w: usize, key: &[u8], tail: &[u8]) -> StoreStatus {
        self.concat(w, key, tail, true)
    }

    /// `prepend key`: concatenate before the existing value.
    pub fn prepend(&self, w: usize, key: &[u8], head: &[u8]) -> StoreStatus {
        self.concat(w, key, head, false)
    }

    fn concat(&self, w: usize, key: &[u8], extra: &[u8], after: bool) -> StoreStatus {
        for _ in 0..16 {
            let Some(old) = self.get(w, key) else {
                return StoreStatus::NotStored;
            };
            let mut data = Vec::with_capacity(old.data.len() + extra.len());
            if after {
                data.extend_from_slice(&old.data);
                data.extend_from_slice(extra);
            } else {
                data.extend_from_slice(extra);
                data.extend_from_slice(&old.data);
            }
            match self.store(w, StoreMode::Cas(old.cas), key, &data, old.flags, 0) {
                StoreStatus::Exists => continue, // raced; retry
                s => return s,
            }
        }
        StoreStatus::NotStored
    }

    #[allow(clippy::too_many_arguments)]
    fn store(
        &self,
        w: usize,
        mode: StoreMode,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
    ) -> StoreStatus {
        assert!(key.len() <= KEY_MAX && !key.is_empty(), "bad key length");
        let hv = jenkins_hash(key, 0);
        let now = self.rel_time();
        let stripe = self.core.item_locks.stripe(hv);
        let core = &self.core;
        let policy = self.policy;
        let nbytes = value.len() as u32;

        let status = match self.policy.item_mode {
            ItemMode::Lock => {
                let _g = core.item_locks.mutex(stripe).lock();
                let mut ctx = Ctx::Direct;
                // §3.1: the cache_lock section whose first action takes
                // slabs_lock — the lock-order fix merged them; here the
                // lock branches take them nested in the fixed order.
                let alloc = {
                    let _c = self.cache_lock.lock();
                    let _s = self.slabs_lock.lock();
                    core.alloc_item(&mut ctx, &policy, key, flags, exptime, nbytes, now, stripe)
                        .expect("direct")
                };
                match alloc {
                    Err(AllocError::TooLarge) => StoreStatus::TooLarge,
                    Err(AllocError::OutOfMemory) => StoreStatus::OutOfMemory,
                    Ok(a) => {
                        let it = core.arena.resolve(a.handle);
                        let sizes = it.sizes(&mut ctx).expect("direct");
                        it.write_value(&mut ctx, &policy, sizes, value).expect("direct");
                        let st = {
                            let _c = self.cache_lock.lock();
                            self.link_new(&mut ctx, mode, key, hv, a.handle, a.evicted > 0)
                        };
                        if st == StoreStatus::Stored {
                            self.dur_store_record(&mut ctx, a.handle, key, value, flags)
                                .expect("direct");
                        }
                        core.item_release(&mut ctx, &policy, a.handle).expect("direct");
                        st
                    }
                }
            }
            ItemMode::Privatize => {
                self.ip_item_lock(stripe);
                let alloc = self.alloc_section(key, flags, exptime, nbytes, now, stripe);
                let st = match alloc {
                    Err(AllocError::TooLarge) => StoreStatus::TooLarge,
                    Err(AllocError::OutOfMemory) => StoreStatus::OutOfMemory,
                    Ok(a) => {
                        // Privatized: the new item's bytes are written
                        // directly while the item lock is held.
                        let mut ctx = Ctx::Direct;
                        let it = core.arena.resolve(a.handle);
                        let sizes = it.sizes(&mut ctx).expect("direct");
                        it.write_value(&mut ctx, &policy, sizes, value).expect("direct");
                        let (st, _) = self.tx_section(
                            &[Category::VolatileFlag],
                            &[
                                Category::Libc,
                                Category::SemPost,
                                Category::LogIo,
                                Category::AssertAbort,
                            ],
                            |ctx| {
                                let expanding =
                                    core.assoc.is_expanding(ctx, &policy)?;
                                let _ = expanding;
                                let (st, signal) = self.link_new_tx(
                                    ctx,
                                    mode,
                                    key,
                                    hv,
                                    a.handle,
                                    a.evicted > 0,
                                    false,
                                    None,
                                )?;
                                if st == StoreStatus::Stored {
                                    self.dur_store_record(ctx, a.handle, key, value, flags)?;
                                }
                                Ok((st, signal))
                            },
                        );
                        let mut ctx = Ctx::Direct;
                        core.item_release(&mut ctx, &policy, a.handle).expect("direct");
                        st
                    }
                };
                self.ip_item_unlock(stripe);
                st
            }
            ItemMode::Transactional if self.magazines_on() => {
                self.store_magazine(w, mode, key, value, flags, exptime, hv, now)
            }
            ItemMode::Transactional => {
                let alloc = self.alloc_section(key, flags, exptime, nbytes, now, usize::MAX);
                match alloc {
                    Err(AllocError::TooLarge) => StoreStatus::TooLarge,
                    Err(AllocError::OutOfMemory) => StoreStatus::OutOfMemory,
                    Ok(a) => {
                        // Captured after the (possibly evicting) alloc
                        // section committed, before the link section.
                        let hot_gen = self.hot_gen();
                        // The store transaction *begins* with the value
                        // memcpy — libc on every path, so this section
                        // starts serial until Lib (IT-Max's persistent
                        // "Start Serial" column).
                        self.tx_section(
                            &[Category::Libc],
                            &[Category::AssertAbort],
                            |ctx| {
                                let it = core.arena.resolve(a.handle);
                                let sizes = it.sizes(ctx)?;
                                it.write_value(ctx, &policy, sizes, value)
                            },
                        );
                        let (st, signal) = self.tx_section(
                            &[Category::VolatileFlag],
                            &[Category::Libc, Category::RefcountRmw, Category::LogIo, Category::AssertAbort],
                            |ctx| {
                                let expanding =
                                    core.assoc.is_expanding(ctx, &policy)?;
                                let _ = expanding;
                                let (st, signal) = self.link_new_tx(
                                    ctx,
                                    mode,
                                    key,
                                    hv,
                                    a.handle,
                                    a.evicted > 0,
                                    true,
                                    None,
                                )?;
                                if st == StoreStatus::Stored {
                                    self.dur_store_record(ctx, a.handle, key, value, flags)?;
                                    self.hot_record_store(
                                        ctx, a.handle, key, hv, value, flags, hot_gen,
                                    )?;
                                }
                                core.item_release(ctx, &policy, a.handle)?;
                                let tstats = &self.workers[w].stats;
                                self.stats_inline(ctx, &tstats.set_cmds, None)?;
                                Ok((st, signal))
                            },
                        );
                        if signal {
                            // IT hoists the maintenance wakeup out of the
                            // (already large) store transaction into its
                            // own section, whose entry *is* the sem_post.
                            let evicted = a.evicted > 0;
                            self.tx_section(&[Category::SemPost], &[], |ctx| {
                                self.signal_maintenance(ctx, false)?;
                                if evicted {
                                    self.signal_maintenance(ctx, true)?;
                                }
                                Ok(())
                            });
                        }
                        st
                    }
                }
            }
        };

        if status == StoreStatus::OutOfMemory {
            // The allocation raised the rebalance signal; deliver the wakeup
            // (a sem_post site like any other).
            if !self.policy.transactional {
                let mut ctx = Ctx::Direct;
                self.signal_maintenance(&mut ctx, true).expect("direct");
            } else {
                self.tx_section(&[Category::SemPost], &[], |ctx| {
                    self.signal_maintenance(ctx, true)
                });
            }
        }
        if self.policy.item_mode != ItemMode::Transactional
            || matches!(status, StoreStatus::TooLarge | StoreStatus::OutOfMemory)
        {
            self.op_stats(w, |t| (&t.set_cmds, None));
            self.bump_cmd_total();
        }
        status
    }

    /// Batched stores: a run of pipelined mutations (quiet binary SETQ
    /// bursts, multi-command ASCII buffers) as ONE critical section. On the
    /// transactional branches the whole run commits as a single transaction
    /// — one begin, one commit fence for n stores — amortizing the
    /// per-transaction overhead exactly like [`Self::get_multi`] does on
    /// the read path, with allocation hoisted out front (a magazine pop per
    /// op when magazines are on, one slab transaction per op otherwise).
    /// Lock and IP branches, and trivial runs, fall back to per-op
    /// [`Self::store`].
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid worker slot or any key exceeds
    /// [`KEY_MAX`].
    pub fn store_batch(&self, w: usize, ops: &[StoreOp<'_>]) -> Vec<StoreStatus> {
        if self.policy.item_mode != ItemMode::Transactional || ops.len() < 2 {
            return ops
                .iter()
                .map(|op| self.store(w, op.mode, op.key, op.value, op.flags, op.exptime))
                .collect();
        }
        for op in ops {
            assert!(op.key.len() <= KEY_MAX && !op.key.is_empty(), "bad key length");
        }
        let core = &self.core;
        let policy = self.policy;
        let now = self.rel_time();
        let mags = self.magazines_on();
        // Per-op prep (hash, sizing, one private chunk each) runs once; the
        // link transaction below may retry, so it must not re-allocate.
        enum Prep {
            Fail(StoreStatus),
            Ready {
                hv: u32,
                sizes: crate::item::ItemSizes,
                h: ItemHandle,
                evicted: bool,
            },
        }
        let preps: Vec<Prep> = ops
            .iter()
            .map(|op| {
                let hv = jenkins_hash(op.key, 0);
                let Some((sizes, class)) = core.size_item(op.key, op.flags, op.value.len() as u32)
                else {
                    return Prep::Fail(StoreStatus::TooLarge);
                };
                if mags {
                    match self.magazine_take(w, class) {
                        Some(h) => Prep::Ready { hv, sizes, h, evicted: false },
                        None => Prep::Fail(StoreStatus::OutOfMemory),
                    }
                } else {
                    match self.alloc_section(
                        op.key,
                        op.flags,
                        op.exptime,
                        op.value.len() as u32,
                        now,
                        usize::MAX,
                    ) {
                        Ok(a) => Prep::Ready { hv, sizes, h: a.handle, evicted: a.evicted > 0 },
                        Err(AllocError::TooLarge) => Prep::Fail(StoreStatus::TooLarge),
                        Err(AllocError::OutOfMemory) => Prep::Fail(StoreStatus::OutOfMemory),
                    }
                }
            })
            .collect();
        let hot_gen = self.hot_gen();
        let tstats = &self.workers[w].stats;
        let mut statuses: Vec<StoreStatus> = Vec::with_capacity(ops.len());
        let mut reclaims: Vec<ItemHandle> = Vec::new();
        let mut any_signal = false;
        self.tx_section(
            &[Category::VolatileFlag, Category::Libc],
            &[Category::RefcountRmw, Category::LogIo, Category::AssertAbort],
            |ctx| {
                // Attempt-local accumulators: an abort rolls them back.
                statuses.clear();
                reclaims.clear();
                any_signal = false;
                let expanding = core.assoc.is_expanding(ctx, &policy)?;
                let _ = expanding;
                for (op, prep) in ops.iter().zip(&preps) {
                    let &Prep::Ready { hv, sizes, h, .. } = prep else {
                        let Prep::Fail(st) = prep else { unreachable!() };
                        statuses.push(*st);
                        continue;
                    };
                    if mags {
                        // Magazine chunks arrive raw; alloc_section chunks
                        // were initialized inside their slab transaction.
                        core.init_item(ctx, &policy, h, op.key, op.flags, op.exptime, sizes, now)?;
                    }
                    let it = core.arena.resolve(h);
                    it.write_value(ctx, &policy, sizes, op.value)?;
                    let mut reclaimed = None;
                    let (st, signal) = self.link_new_tx(
                        ctx,
                        op.mode,
                        op.key,
                        hv,
                        h,
                        false,
                        true,
                        if mags { Some(&mut reclaimed) } else { None },
                    )?;
                    if st == StoreStatus::Stored {
                        self.dur_store_record(ctx, h, op.key, op.value, op.flags)?;
                        self.hot_record_store(ctx, h, op.key, hv, op.value, op.flags, hot_gen)?;
                    }
                    if st == StoreStatus::Stored || !mags {
                        // Magazine chunks that failed their predicate stay
                        // private and go back to the magazine post-commit.
                        core.item_release(ctx, &policy, h)?;
                    }
                    if let Some(old) = reclaimed {
                        reclaims.push(old);
                    }
                    any_signal |= signal;
                    self.stats_inline(ctx, &tstats.set_cmds, None)?;
                    statuses.push(st);
                }
                Ok(())
            },
        );
        for (prep, st) in preps.iter().zip(&statuses) {
            if let Prep::Ready { h, .. } = prep {
                if mags && *st != StoreStatus::Stored {
                    self.magazine_put(w, *h);
                }
            }
        }
        for old in reclaims.drain(..) {
            self.magazine_put(w, old);
        }
        if any_signal {
            self.tx_section(&[Category::SemPost], &[], |ctx| {
                self.signal_maintenance(ctx, false)
            });
        }
        let evicted = preps
            .iter()
            .any(|p| matches!(p, Prep::Ready { evicted: true, .. }));
        if evicted || statuses.contains(&StoreStatus::OutOfMemory) {
            self.tx_section(&[Category::SemPost], &[], |ctx| {
                self.signal_maintenance(ctx, true)
            });
        }
        for st in &statuses {
            if matches!(st, StoreStatus::TooLarge | StoreStatus::OutOfMemory) {
                self.op_stats(w, |t| (&t.set_cmds, None));
                self.bump_cmd_total();
            }
        }
        statuses
    }

    /// The merged cache+slabs allocation section for the transactional
    /// branches (§3.1's lock-order fix). Entry reads the `volatile` slab
    /// rebalance signal; eviction reads victim refcounts and the suffix
    /// `snprintf` is libc — the in-flight causes pre-Max/pre-Lib.
    fn alloc_section(
        &self,
        key: &[u8],
        flags: u32,
        exptime: u32,
        nbytes: u32,
        now: u32,
        held_stripe: usize,
    ) -> Result<crate::core::Allocation, AllocError> {
        let core = &self.core;
        let policy = self.policy;
        self.tx_section(
            &[Category::VolatileFlag],
            &[Category::Libc, Category::RefcountRmw, Category::AssertAbort],
            |ctx| {
                let sig = ctx.volatile_read(&policy, core.arena.rebalance_signal.word())?;
                let _ = sig;
                let r =
                    core.alloc_item(ctx, &policy, key, flags, exptime, nbytes, now, held_stripe)?;
                if let Ok(a) = &r {
                    if a.evicted > 0 {
                        // Eviction bypasses per-key hot publication:
                        // invalidate the hot set wholesale at this
                        // section's commit.
                        if let Some(hot) = &self.hot {
                            let hot = Arc::clone(hot);
                            ctx.defer_or_run(move || hot.bump_gen());
                        }
                    }
                }
                Ok(r)
            },
        )
    }

    // ------------------------------------------------------------------
    // Per-worker slab magazines (the mutation fast lane's allocator)
    // ------------------------------------------------------------------

    /// Whether per-worker slab magazines are active: an IT branch with a
    /// nonzero [`McConfig::magazine`].
    pub fn magazines_on(&self) -> bool {
        self.cfg.magazine > 0 && self.policy.item_mode == ItemMode::Transactional
    }

    /// Pops a chunk of `class` from worker `w`'s magazine, refilling from
    /// the arena when the row is empty. `None` means even eviction and a
    /// global magazine flush could not produce a chunk — genuine memory
    /// exhaustion (the rebalance signal has been raised by then).
    fn magazine_take(&self, w: usize, class: u8) -> Option<ItemHandle> {
        if let Some(h) = self.workers[w].magazine.lock().unwrap().rows[class as usize].pop() {
            return Some(h);
        }
        self.magazine_refill(w, class)
    }

    /// Restocks worker `w`'s magazine for `class` with ONE short dedicated
    /// transaction: a batched freelist pop that also absorbs any eviction
    /// write-backs, so their cost amortizes over the whole row instead of
    /// landing on individual SETs. When the pool is truly dry the chunks
    /// may be parked in other workers' magazines — invisible to allocator
    /// and rebalancer alike — so before reporting out-of-memory every
    /// magazine is flushed back and the refill retried once.
    fn magazine_refill(&self, w: usize, class: u8) -> Option<ItemHandle> {
        let core = &self.core;
        let policy = self.policy;
        let cap = self.mag_cap.load(Ordering::Relaxed).max(1);
        let mut scratch: Vec<ItemHandle> = Vec::with_capacity(cap);
        let mut flushed = false;
        loop {
            let evictions = self.tx_section(
                &[Category::VolatileFlag],
                &[Category::Libc, Category::RefcountRmw, Category::AssertAbort],
                |ctx| {
                    scratch.clear(); // attempt-local: aborted pops roll back
                    let sig = ctx.volatile_read(&policy, core.arena.rebalance_signal.word())?;
                    let _ = sig;
                    let (got, evicted) =
                        core.refill_batch(ctx, &policy, class, cap, &mut scratch)?;
                    if evicted > 0 {
                        if let Some(hot) = &self.hot {
                            let hot = Arc::clone(hot);
                            ctx.defer_or_run(move || hot.bump_gen());
                        }
                    }
                    if got > 0 {
                        core.global.bump(ctx, &core.global.magazine_refills)?;
                    }
                    if got < cap {
                        // Starving (or evicting): point the rebalancer at
                        // this class, exactly like the plain alloc path.
                        ctx.put_word(core.arena.needy_class.word(), class as u64)?;
                        ctx.volatile_write(&policy, core.arena.rebalance_signal.word(), 1)?;
                    }
                    Ok(evicted)
                },
            );
            if evictions > 0 {
                // Deliver the wakeup outside the refill transaction, like
                // the IT store hoists its sem_post.
                self.tx_section(&[Category::SemPost], &[], |ctx| {
                    self.signal_maintenance(ctx, true)
                });
            }
            if let Some(h) = scratch.pop() {
                if !scratch.is_empty() {
                    let mut mag = self.workers[w].magazine.lock().unwrap();
                    mag.rows[class as usize].append(&mut scratch);
                }
                return Some(h);
            }
            if flushed || !self.flush_magazines() {
                return None;
            }
            flushed = true;
        }
    }

    /// Returns a thread-private chunk to worker `w`'s magazine. A full row
    /// first spills half of itself back to the arena (one flush
    /// transaction), so an overwrite-heavy burst cannot hoard chunks
    /// unboundedly; in the steady SET state (one pop, at most one push per
    /// op) the row never overflows and the spill path never runs.
    fn magazine_put(&self, w: usize, h: ItemHandle) {
        let core = &self.core;
        let cap = self.mag_cap.load(Ordering::Relaxed).max(1);
        let mut mag = self.workers[w].magazine.lock().unwrap();
        let row = &mut mag.rows[h.class as usize];
        if row.len() >= cap {
            let keep = cap / 2;
            self.tx_section(&[], &[Category::AssertAbort], |ctx| {
                core.arena.free_batch(ctx, &row[keep..])?;
                core.global.bump(ctx, &core.global.magazine_flushes)
            });
            row.truncate(keep);
        }
        row.push(h);
    }

    /// Flushes every worker's magazine back to the global free lists, one
    /// transaction per non-empty class row (each counted in
    /// `magazine_flushes`). Runs under allocation pressure and from
    /// `flush_all`; locks one worker's magazine at a time. Returns whether
    /// any chunk moved.
    pub fn flush_magazines(&self) -> bool {
        let core = &self.core;
        let mut any = false;
        for slot in &self.workers {
            let mut mag = slot.magazine.lock().unwrap();
            for row in mag.rows.iter_mut() {
                if row.is_empty() {
                    continue;
                }
                self.tx_section(&[], &[Category::AssertAbort], |ctx| {
                    core.arena.free_batch(ctx, row)?;
                    core.global.bump(ctx, &core.global.magazine_flushes)
                });
                row.clear();
                any = true;
            }
        }
        any
    }

    /// The magazine SET — the write path's mutation fast lane. Allocation
    /// becomes a private pop from the worker's chunk cache (no transaction,
    /// no shared free list), and header, key, suffix, value, link, and
    /// stats all commit in ONE transaction instead of the three (alloc +
    /// value + link) the plain IT store pays. Every shared-memory write
    /// stays instrumented: a magazine chunk's privacy is an *accounting*
    /// fact, not a license for direct writes — scribbling a
    /// previously-linked chunk uninstrumented would let a stale invisible
    /// reader (whose read-only commit skips final validation) return
    /// post-snapshot bytes undetected. A dead overwritten item is parked in
    /// limbo by `link_new_tx` and merged into the magazine after commit, so
    /// overwrite-heavy workloads recycle chunks entirely within the worker.
    #[allow(clippy::too_many_arguments)]
    fn store_magazine(
        &self,
        w: usize,
        mode: StoreMode,
        key: &[u8],
        value: &[u8],
        flags: u32,
        exptime: u32,
        hv: u32,
        now: u32,
    ) -> StoreStatus {
        let core = &self.core;
        let policy = self.policy;
        let Some((sizes, class)) = core.size_item(key, flags, value.len() as u32) else {
            return StoreStatus::TooLarge;
        };
        let Some(handle) = self.magazine_take(w, class) else {
            // The refill raised the rebalance signal; store()'s tail
            // delivers the wakeup and counts the failed op.
            return StoreStatus::OutOfMemory;
        };
        let hot_gen = self.hot_gen();
        let tstats = &self.workers[w].stats;
        let mut reclaimed: Option<ItemHandle> = None;
        let (st, signal) = self.tx_section(
            &[Category::VolatileFlag, Category::Libc],
            &[Category::RefcountRmw, Category::LogIo, Category::AssertAbort],
            |ctx| {
                reclaimed = None; // attempt-local: an aborted park rolls back
                core.init_item(ctx, &policy, handle, key, flags, exptime, sizes, now)?;
                let it = core.arena.resolve(handle);
                it.write_value(ctx, &policy, sizes, value)?;
                let expanding = core.assoc.is_expanding(ctx, &policy)?;
                let _ = expanding;
                let (st, signal) =
                    self.link_new_tx(ctx, mode, key, hv, handle, false, true, Some(&mut reclaimed))?;
                if st == StoreStatus::Stored {
                    self.dur_store_record(ctx, handle, key, value, flags)?;
                    self.hot_record_store(ctx, handle, key, hv, value, flags, hot_gen)?;
                    core.item_release(ctx, &policy, handle)?;
                }
                self.stats_inline(ctx, &tstats.set_cmds, None)?;
                Ok((st, signal))
            },
        );
        if st != StoreStatus::Stored {
            // Failed predicate: never published, so still private — straight
            // back into the magazine instead of a slab-free transaction.
            debug_assert!(reclaimed.is_none());
            self.magazine_put(w, handle);
        }
        if let Some(old) = reclaimed {
            self.magazine_put(w, old);
        }
        if signal {
            self.tx_section(&[Category::SemPost], &[], |ctx| {
                self.signal_maintenance(ctx, false)
            });
        }
        st
    }

    /// Decide + unlink-old + link-new, inside whatever section the caller
    /// holds (`Ctx::Direct` for the lock branches). Returns the status and
    /// — transactionally — whether an expansion wants the maintainer.
    fn link_new<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        mode: StoreMode,
        key: &[u8],
        hv: u32,
        new_h: ItemHandle,
        evicted: bool,
    ) -> StoreStatus {
        match self.link_new_tx(ctx, mode, key, hv, new_h, evicted, false, None) {
            Ok((st, _)) => st,
            Err(_) => unreachable!("direct sections never abort"),
        }
    }

    /// Transaction-compatible version of [`McCache::link_new`]. When
    /// `defer_signal` is set (IT), the expansion wakeup is reported to the
    /// caller instead of signaled inline; the returned pair is
    /// `(status, signal_needed)`.
    ///
    /// `reclaim` (magazine path only): when an overwrite unlinks a dead
    /// old item, park it in limbo — unlinked, refcount 0, *not* on the
    /// global free list — and report its handle so the caller can merge
    /// it into the worker's magazine after commit. The pin trick (bump
    /// the refcount across the unlink, then zero it) keeps
    /// `unlink_item`'s free-on-unreferenced branch from pushing the chunk
    /// through the shared free list; an aborted attempt rolls all of it
    /// back, so the limbo state only ever exists after a successful
    /// commit, at which point serializability makes the chunk
    /// thread-private.
    #[allow(clippy::too_many_arguments)]
    fn link_new_tx<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        mode: StoreMode,
        key: &[u8],
        hv: u32,
        new_h: ItemHandle,
        evicted: bool,
        defer_signal: bool,
        reclaim: Option<&mut Option<ItemHandle>>,
    ) -> Result<(StoreStatus, bool), Abort> {
        let core = &self.core;
        let policy = self.policy;
        let existing = core.assoc.find(ctx, &policy, &core.arena, key, hv)?;
        let proceed = match (mode, existing) {
            (StoreMode::Set, _) => Ok(()),
            (StoreMode::Add, None) => Ok(()),
            (StoreMode::Add, Some(_)) => Err(StoreStatus::NotStored),
            (StoreMode::Replace, Some(_)) => Ok(()),
            (StoreMode::Replace, None) => Err(StoreStatus::NotStored),
            (StoreMode::Cas(_), None) => Err(StoreStatus::NotFound),
            (StoreMode::Cas(c), Some(old)) => {
                if core.arena.resolve(old).cas(ctx)? == c {
                    Ok(())
                } else {
                    Err(StoreStatus::Exists)
                }
            }
        };
        match proceed {
            Err(st) => {
                // Failed predicate: the item stays private; the caller's
                // item_release (refcount 1 -> 0, unlinked) frees the chunk.
                Ok((st, false))
            }
            Ok(()) => {
                if let Some(old) = existing {
                    let mut parked = false;
                    if let Some(reclaim) = reclaim {
                        let it = core.arena.resolve(old);
                        if it.refcount(ctx, &policy)? == 0 {
                            it.set_refcount(ctx, 1)?;
                            core.unlink_item(ctx, &policy, old, hv)?;
                            it.set_refcount(ctx, 0)?;
                            *reclaim = Some(old);
                            parked = true;
                        }
                    }
                    if !parked {
                        core.unlink_item(ctx, &policy, old, hv)?;
                    }
                }
                let wants_maintainer = core.link_item(ctx, &policy, new_h, hv)?;
                self.maybe_log(ctx, "set")?;
                let mut signal_later = false;
                if wants_maintainer || evicted {
                    if defer_signal {
                        signal_later = true;
                    } else {
                        self.signal_maintenance(ctx, false)?;
                        if evicted {
                            self.signal_maintenance(ctx, true)?;
                        }
                    }
                }
                Ok((StoreStatus::Stored, signal_later))
            }
        }
    }

    /// `delete key`.
    pub fn delete(&self, w: usize, key: &[u8]) -> bool {
        assert!(key.len() <= KEY_MAX && !key.is_empty(), "bad key length");
        let hv = jenkins_hash(key, 0);
        let stripe = self.core.item_locks.stripe(hv);
        let core = &self.core;
        let policy = self.policy;
        let found = match self.policy.item_mode {
            ItemMode::Lock => {
                let _g = core.item_locks.mutex(stripe).lock();
                let _c = self.cache_lock.lock();
                let mut ctx = Ctx::Direct;
                match core
                    .assoc
                    .find(&mut ctx, &policy, &core.arena, key, hv)
                    .expect("direct")
                {
                    Some(h) => {
                        core.unlink_item(&mut ctx, &policy, h, hv).expect("direct");
                        self.dur_record(&mut ctx, Record::Del { key: key.to_vec() });
                        true
                    }
                    None => false,
                }
            }
            ItemMode::Privatize | ItemMode::Transactional => {
                if self.policy.item_mode == ItemMode::Privatize {
                    self.ip_item_lock(stripe);
                }
                let inline_stats = self.policy.item_mode == ItemMode::Transactional;
                let hot_gen = self.hot_gen();
                let tstats = &self.workers[w].stats;
                let found = self.tx_section(
                    &[Category::VolatileFlag],
                    &[Category::Libc, Category::RefcountRmw, Category::AssertAbort],
                    |ctx| {
                        let found = match core.assoc.find(ctx, &policy, &core.arena, key, hv)? {
                            Some(h) => {
                                core.unlink_item(ctx, &policy, h, hv)?;
                                self.dur_record(ctx, Record::Del { key: key.to_vec() });
                                self.hot_record_delete(ctx, key, hv, hot_gen);
                                true
                            }
                            None => false,
                        };
                        if inline_stats {
                            self.stats_inline(ctx, &tstats.delete_cmds, None)?;
                        }
                        Ok(found)
                    },
                );
                if self.policy.item_mode == ItemMode::Privatize {
                    self.ip_item_unlock(stripe);
                }
                found
            }
        };
        if self.policy.item_mode != ItemMode::Transactional {
            self.op_stats(w, |t| (&t.delete_cmds, None));
            self.bump_cmd_total();
        }
        found
    }

    /// `incr`/`decr key delta`.
    pub fn arith(&self, w: usize, key: &[u8], delta: u64, incr: bool) -> ArithStatus {
        assert!(key.len() <= KEY_MAX && !key.is_empty(), "bad key length");
        let hv = jenkins_hash(key, 0);
        let now = self.rel_time();
        let stripe = self.core.item_locks.stripe(hv);
        let core = &self.core;
        let policy = self.policy;
        let res = match self.policy.item_mode {
            ItemMode::Lock | ItemMode::Privatize => {
                // do_add_delta runs under the item lock: privatized in IP,
                // so the strtoull/snprintf pair stays uninstrumented.
                if self.policy.item_mode == ItemMode::Privatize {
                    self.ip_item_lock(stripe);
                }
                let res = {
                    let _g = (self.policy.item_mode == ItemMode::Lock)
                        .then(|| core.item_locks.mutex(stripe).lock());
                    let mut ctx = Ctx::Direct;
                    let r = core
                        .arith(&mut ctx, &policy, key, hv, delta, incr, now)
                        .expect("direct");
                    if let Some(Ok((new, cas))) = r {
                        self.dur_record(
                            &mut ctx,
                            Record::Arith { cas, value: new, key: key.to_vec() },
                        );
                    }
                    r
                };
                if self.policy.item_mode == ItemMode::Privatize {
                    self.ip_item_unlock(stripe);
                }
                res
            }
            ItemMode::Transactional => {
                let hot_gen = self.hot_gen();
                let tstats = &self.workers[w].stats;
                self.tx_section(
                    &[Category::VolatileFlag],
                    &[Category::Libc, Category::RefcountRmw, Category::AssertAbort],
                    |ctx| {
                        let r = core.arith(ctx, &policy, key, hv, delta, incr, now)?;
                        if let Some(Ok((new, cas))) = r {
                            self.dur_record(
                                ctx,
                                Record::Arith { cas, value: new, key: key.to_vec() },
                            );
                            // The new decimal rendering is not in hand
                            // here; fence the hot slot instead of serving
                            // a pre-arith value.
                            self.hot_record_disturb(ctx, key, hv, hot_gen);
                        }
                        self.stats_inline(ctx, &tstats.arith_cmds, None)?;
                        Ok(r)
                    },
                )
            }
        };
        if self.policy.item_mode != ItemMode::Transactional {
            self.op_stats(w, |t| (&t.arith_cmds, None));
            self.bump_cmd_total();
        }
        match res {
            None => ArithStatus::NotFound,
            Some(Err(())) => ArithStatus::NonNumeric,
            Some(Ok((v, _cas))) => ArithStatus::Ok(v),
        }
    }

    /// `touch key exptime`.
    pub fn touch(&self, w: usize, key: &[u8], exptime: u32) -> bool {
        assert!(key.len() <= KEY_MAX && !key.is_empty(), "bad key length");
        let hv = jenkins_hash(key, 0);
        let now = self.rel_time();
        let stripe = self.core.item_locks.stripe(hv);
        let core = &self.core;
        let _policy = self.policy;
        let found = match self.policy.item_mode {
            ItemMode::Lock => {
                let _g = core.item_locks.mutex(stripe).lock();
                let mut ctx = Ctx::Direct;
                self.touch_inner(&mut ctx, key, hv, exptime, now).expect("direct")
            }
            ItemMode::Privatize => {
                self.ip_item_lock(stripe);
                let mut ctx = Ctx::Direct;
                let r = self.touch_inner(&mut ctx, key, hv, exptime, now).expect("direct");
                self.ip_item_unlock(stripe);
                r
            }
            ItemMode::Transactional => {
                let hot_gen = self.hot_gen();
                self.tx_section(
                    &[Category::VolatileFlag],
                    &[Category::Libc, Category::AssertAbort],
                    |ctx| {
                        let found = self.touch_inner(ctx, key, hv, exptime, now)?;
                        if found {
                            // The expiry changed; the privatized copy's is
                            // stale. (A no-op touch commits with an elided
                            // stamp and the fence publish loses — which is
                            // correct: nothing changed.)
                            self.hot_record_disturb(ctx, key, hv, hot_gen);
                        }
                        Ok(found)
                    },
                )
            }
        };
        self.op_stats(w, |t| (&t.touch_cmds, None));
        self.bump_cmd_total();
        found
    }

    fn touch_inner<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        key: &[u8],
        hv: u32,
        exptime: u32,
        now: u32,
    ) -> Result<bool, Abort> {
        let core = &self.core;
        let policy = self.policy;
        match core.assoc.find(ctx, &policy, &core.arena, key, hv)? {
            Some(h) => {
                let it = core.arena.resolve(h);
                it.set_times(ctx, exptime, now)?;
                if self.dur.get().is_some() {
                    if ctx.in_transaction() {
                        // A touch that rewrites identical times commits
                        // with an elided (read-only) stamp; bump the nonce
                        // so the engine mints a fresh one for the record.
                        ctx.fetch_add_word(core.dur_nonce.word(), 1)?;
                    }
                    self.dur_record(
                        ctx,
                        Record::Touch {
                            abs_exp: self.abs_unix(exptime),
                            touched_unix: self.abs_unix(now),
                            key: key.to_vec(),
                        },
                    );
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// `flush_all`.
    pub fn flush_all(&self, w: usize) {
        let now = self.rel_time();
        let core = &self.core;
        let flush_unix = self.abs_unix(now);
        if !self.policy.transactional {
            let _s = self.stats_lock.lock();
            let mut ctx = Ctx::Direct;
            core.flush_all(&mut ctx, now).expect("direct");
            self.dur_record(&mut ctx, Record::FlushAll { flush_unix });
        } else {
            self.tx_section(&[], &[], |ctx| {
                core.flush_all(ctx, now)?;
                self.dur_record(ctx, Record::FlushAll { flush_unix });
                if let Some(hot) = &self.hot {
                    let hot = Arc::clone(hot);
                    ctx.defer_or_run(move || hot.bump_gen());
                }
                Ok(())
            });
        }
        if self.magazines_on() {
            // Return every parked chunk so a post-flush heap audit sees
            // all memory back on the free lists.
            self.flush_magazines();
        }
        let _ = w;
        self.bump_cmd_total();
    }

    // ------------------------------------------------------------------
    // Maintenance threads (§3.2's two Figure-2 instances)
    // ------------------------------------------------------------------

    fn assoc_maintenance_loop(&self) {
        let core = &self.core;
        let policy = self.policy;
        while !self.shutdown.load(Ordering::SeqCst) {
            // Wait to be woken: cond_wait under cache_lock in Baseline
            // (Figure 2 left), sem_wait outside the critical section after
            // the §3.2 refactor.
            if !self.policy.semaphores {
                let mut g = self.cache_lock.lock();
                g.wait_on_for(&self.assoc_cv, Duration::from_millis(20));
                drop(g);
            } else {
                self.assoc_sem.wait_timeout(Duration::from_millis(20));
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.assoc_panic_trap.swap(false, Ordering::SeqCst) {
                panic!("test trap: assoc maintenance panic");
            }
            // Migrate in bounded batches until the expansion completes.
            // (idle, completed): idle ends the inner loop; completed means
            // this call finished a migration and the stat should bump.
            loop {
                let (idle, completed) = if !self.policy.transactional {
                    let _c = self.cache_lock.lock();
                    let mut ctx = Ctx::Direct;
                    if !core.assoc.is_expanding(&mut ctx, &policy).expect("direct") {
                        (true, false)
                    } else {
                        let done = core
                            .assoc
                            .migrate_step(&mut ctx, &policy, &core.arena, 4)
                            .expect("direct");
                        (done, done)
                    }
                } else {
                    self.tx_section(
                        &[Category::VolatileFlag],
                        &[Category::AssertAbort],
                        |ctx| {
                            if !core.assoc.is_expanding(ctx, &policy)? {
                                return Ok((true, false));
                            }
                            let done =
                                core.assoc.migrate_step(ctx, &policy, &core.arena, 4)?;
                            Ok((done, done))
                        },
                    )
                };
                if completed {
                    if !self.policy.transactional {
                        let _s = self.stats_lock.lock();
                        let mut ctx = Ctx::Direct;
                        core.global
                            .bump(&mut ctx, &core.global.expansions)
                            .expect("direct");
                    } else {
                        self.tx_section(&[], &[], |ctx| {
                            core.global.bump(ctx, &core.global.expansions)
                        });
                    }
                }
                if idle {
                    break;
                }
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }

    fn slab_rebalance_loop(&self) {
        let core = &self.core;
        let policy = self.policy;
        while !self.shutdown.load(Ordering::SeqCst) {
            if !self.policy.semaphores {
                let mut g = self.slabs_lock.lock();
                g.wait_on_for(&self.slab_cv, Duration::from_millis(25));
                drop(g);
            } else {
                self.slab_sem.wait_timeout(Duration::from_millis(25));
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if self.slab_panic_trap.swap(false, Ordering::SeqCst) {
                panic!("test trap: slab rebalance panic");
            }
            // Acquire the rebalance lock: a trylock spin on the mutex in
            // the lock branches; the transactional boolean (§3.1) after.
            if !self.policy.transactional {
                let guard = loop {
                    if let Some(g) = self.rebalance_mutex.try_lock() {
                        break Some(g);
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break None;
                    }
                    std::thread::yield_now(); // the paper's pthread_yield fallback
                };
                let Some(_guard) = guard else { return };
                let _s = self.slabs_lock.lock();
                let mut ctx = Ctx::Direct;
                self.rebalance_once(&mut ctx).expect("direct");
            } else {
                loop {
                    let got = self.tx_section(&[Category::VolatileFlag], &[], |ctx| {
                        let sig =
                            ctx.volatile_read(&policy, core.arena.rebalance_signal.word())?;
                        let _ = sig;
                        let cell = core.arena.rebalance_lock.word();
                        if ctx.get_word(cell)? != 0 {
                            Ok(false)
                        } else {
                            ctx.put_word(cell, 1)?;
                            Ok(true)
                        }
                    });
                    if got {
                        break;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::yield_now();
                }
                self.tx_section(
                    &[Category::VolatileFlag],
                    &[Category::AssertAbort],
                    |ctx| self.rebalance_once(ctx),
                );
                self.tx_section(&[], &[], |ctx| {
                    ctx.put_word(core.arena.rebalance_lock.word(), 0)
                });
            }
        }
    }

    /// One rebalance attempt under the slabs lock / inside a transaction.
    fn rebalance_once<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<(), Abort> {
        let core = &self.core;
        let policy = self.policy;
        if ctx.volatile_read(&policy, core.arena.rebalance_signal.word())? == 0 {
            return Ok(());
        }
        let receiver = ctx.get_word(core.arena.needy_class.word())? as u8;
        if let Some(donor) = core.arena.pick_donor(ctx)? {
            if core.arena.rebalance_step(ctx, &policy, donor, receiver)? {
                let n = ctx.get_word(core.global.rebalances.word())?;
                ctx.put_word(core.global.rebalances.word(), n + 1)?;
                // A reassigned page's items vanished without per-key
                // publication; invalidate the hot set at commit.
                if let Some(hot) = &self.hot {
                    let hot = Arc::clone(hot);
                    ctx.defer_or_run(move || hot.bump_gen());
                }
            }
        }
        ctx.volatile_write(&policy, core.arena.rebalance_signal.word(), 0)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Adaptive controller (DESIGN §15)
    // ------------------------------------------------------------------

    /// The feedback loop: sleep one epoch (in short chunks so shutdown
    /// stays prompt), then evaluate. Runs under the same supervisor as the
    /// maintenance threads — a panicking tick loses one epoch, not the
    /// controller.
    fn adapt_loop(&self) {
        let epoch = Duration::from_millis(self.cfg.adapt_epoch_ms.max(5));
        while !self.shutdown.load(Ordering::SeqCst) {
            let mut left = epoch;
            while left > Duration::ZERO {
                let step = left.min(Duration::from_millis(20));
                std::thread::sleep(step);
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                left = left.saturating_sub(step);
            }
            self.adapt_tick();
        }
    }

    /// One controller epoch, run synchronously: sample counter deltas
    /// since the previous tick, feed them to the pure policy in
    /// [`tm::adapt`], and apply whatever changed. Public (hidden) so tests
    /// can drive epochs deterministically without the timer thread.
    #[doc(hidden)]
    pub fn adapt_tick(&self) {
        let mut st = self.adapt_state.lock().unwrap();
        let tm_now = self.rt.stats();
        let delta = StatsSnapshot {
            commits: tm_now.commits.saturating_sub(st.tm.commits),
            read_only_commits: tm_now
                .read_only_commits
                .saturating_sub(st.tm.read_only_commits),
            aborts: tm_now.aborts.saturating_sub(st.tm.aborts),
            ..Default::default()
        };
        // (a) Algorithm + contention manager, via the quiesce-and-swap.
        let next = tm::adapt::decide(&delta, st.cur);
        if next != st.cur
            && self.policy.serial_lock
            && self.rt.switch_config(next.algorithm, next.cm).is_ok()
        {
            st.cur = next;
        }
        // (b) Read-lane tuning: in strongly read-dominated phases, stretch
        // the LRU-bump cadence so more GETs stay pure read-only fast-lane
        // commits; restore the configured cadence when writes return.
        if delta.commits >= tm::adapt::MIN_EPOCH_COMMITS {
            let base = self.cfg.lru_bump_every;
            let ro_frac = delta.read_only_commits as f64 / delta.commits as f64;
            let target = if base != 0 && ro_frac >= tm::adapt::RO_HIGH {
                base.saturating_mul(8)
            } else {
                base
            };
            if self.bump_every.load(Ordering::Relaxed) != target {
                self.bump_every.store(target, Ordering::Relaxed);
                self.adapt_ro_tunes.fetch_add(1, Ordering::Relaxed);
            }
        }
        // (c) Magazine autosizing from observed refill/flush churn.
        let sets_now: u64 = self
            .workers
            .iter()
            .map(|w| w.stats.snapshot_direct().set_cmds)
            .sum();
        let g = self.core.global.snapshot_direct();
        if self.magazines_on() {
            let cap = self.mag_cap.load(Ordering::Relaxed);
            let newcap = tm::adapt::size_magazine(
                cap,
                sets_now.saturating_sub(st.sets),
                g.magazine_refills.saturating_sub(st.refills),
                g.magazine_flushes.saturating_sub(st.flushes),
                MAG_MIN,
                MAG_MAX,
            );
            if newcap != cap {
                self.mag_cap.store(newcap, Ordering::Relaxed);
                self.adapt_mag_resizes.fetch_add(1, Ordering::Relaxed);
            }
        }
        // (d) Hot keys: aggregate the per-worker sketches and rearm when
        // the top set changed. Deterministic order: count desc, hash asc.
        if let Some(hot) = &self.hot {
            let mut counts: std::collections::BTreeMap<u32, u64> = Default::default();
            for wslot in &self.workers {
                for (hv, c) in wslot.sketch.drain() {
                    *counts.entry(hv).or_insert(0) += c as u64;
                }
            }
            let mut top: Vec<(u32, u64)> = counts
                .into_iter()
                .filter(|&(_, c)| c >= HOT_MIN_COUNT)
                .collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            top.truncate(self.cfg.hot_slots);
            let tags: Vec<u32> = top.into_iter().map(|(hv, _)| hv).collect();
            if !tags.is_empty() && tags != st.armed {
                hot.retune(&tags);
                st.armed = tags;
            }
        }
        st.tm = tm_now;
        st.sets = sets_now;
        st.refills = g.magazine_refills;
        st.flushes = g.magazine_flushes;
        drop(st);
        self.adapt_epochs.fetch_add(1, Ordering::Relaxed);
    }

    /// Arms exactly these keys in the hot set (tests and benchmarks; the
    /// controller normally does this from the sketches).
    #[doc(hidden)]
    pub fn hot_install_keys(&self, keys: &[&[u8]]) {
        if let Some(hot) = &self.hot {
            let tags: Vec<u32> = keys.iter().map(|k| jenkins_hash(k, 0)).collect();
            hot.retune(&tags);
            self.adapt_state.lock().unwrap().armed = tags;
        }
    }

    /// The TM configuration currently installed (reflects controller
    /// switches).
    pub fn tm_config(&self) -> (Algorithm, ContentionManager) {
        (self.rt.algorithm(), self.rt.contention_manager())
    }
}
