//! Key hashing. memcached 1.4.15 uses Bob Jenkins' lookup3 `hashlittle`;
//! this is a faithful reimplementation of its byte-oriented path.

/// Jenkins lookup3 `hashlittle` over `key` with the given seed
/// (memcached passes 0).
pub fn jenkins_hash(key: &[u8], seed: u32) -> u32 {
    #[inline]
    fn rot(x: u32, k: u32) -> u32 {
        x.rotate_left(k)
    }
    #[inline]
    fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
        *a = a.wrapping_sub(*c);
        *a ^= rot(*c, 4);
        *c = c.wrapping_add(*b);
        *b = b.wrapping_sub(*a);
        *b ^= rot(*a, 6);
        *a = a.wrapping_add(*c);
        *c = c.wrapping_sub(*b);
        *c ^= rot(*b, 8);
        *b = b.wrapping_add(*a);
        *a = a.wrapping_sub(*c);
        *a ^= rot(*c, 16);
        *c = c.wrapping_add(*b);
        *b = b.wrapping_sub(*a);
        *b ^= rot(*a, 19);
        *a = a.wrapping_add(*c);
        *c = c.wrapping_sub(*b);
        *c ^= rot(*b, 4);
        *b = b.wrapping_add(*a);
    }
    #[inline]
    fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
        *c ^= *b;
        *c = c.wrapping_sub(rot(*b, 14));
        *a ^= *c;
        *a = a.wrapping_sub(rot(*c, 11));
        *b ^= *a;
        *b = b.wrapping_sub(rot(*a, 25));
        *c ^= *b;
        *c = c.wrapping_sub(rot(*b, 16));
        *a ^= *c;
        *a = a.wrapping_sub(rot(*c, 4));
        *b ^= *a;
        *b = b.wrapping_sub(rot(*a, 14));
        *c ^= *b;
        *c = c.wrapping_sub(rot(*b, 24));
    }

    let mut a = 0xdeadbeefu32
        .wrapping_add(key.len() as u32)
        .wrapping_add(seed);
    let mut b = a;
    let mut c = a;

    let mut chunks = key.chunks_exact(12);
    for ch in &mut chunks {
        a = a.wrapping_add(u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]));
        b = b.wrapping_add(u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]));
        c = c.wrapping_add(u32::from_le_bytes([ch[8], ch[9], ch[10], ch[11]]));
        mix(&mut a, &mut b, &mut c);
    }
    let rest = chunks.remainder();
    if rest.is_empty() {
        // lookup3 returns c without the final mix for zero remaining bytes
        // *only* when the total length was 0; chunked tails of exactly 12
        // were already mixed, so fall through matches length % 12 == 0.
        if key.is_empty() {
            return c;
        }
        return c;
    }
    let mut word = [0u8; 12];
    word[..rest.len()].copy_from_slice(rest);
    a = a.wrapping_add(u32::from_le_bytes([word[0], word[1], word[2], word[3]]));
    b = b.wrapping_add(u32::from_le_bytes([word[4], word[5], word[6], word[7]]));
    c = c.wrapping_add(u32::from_le_bytes([word[8], word[9], word[10], word[11]]));
    final_mix(&mut a, &mut b, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(jenkins_hash(b"key", 0), jenkins_hash(b"key", 0));
        assert_ne!(jenkins_hash(b"key", 0), jenkins_hash(b"key", 1));
        assert_ne!(jenkins_hash(b"keyA", 0), jenkins_hash(b"keyB", 0));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Bucket the first 4096 generated keys into 256 buckets; no bucket
        // should be wildly over-loaded.
        let mut buckets = [0u32; 256];
        for i in 0..4096 {
            let k = format!("memslap-{i:012}");
            buckets[(jenkins_hash(k.as_bytes(), 0) & 0xff) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 48, "worst bucket {max} of expected ~16");
    }

    #[test]
    fn handles_all_tail_lengths() {
        for len in 0..40 {
            let key: Vec<u8> = (0..len as u8).collect();
            let h1 = jenkins_hash(&key, 0);
            let h2 = jenkins_hash(&key, 0);
            assert_eq!(h1, h2);
        }
    }

    #[test]
    fn empty_key() {
        // lookup3 of the empty string with seed 0 is 0xdeadbeef.
        assert_eq!(jenkins_hash(b"", 0), 0xdeadbeef);
    }
}
