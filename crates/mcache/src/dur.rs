//! `mcache::dur` — the commit-time redo log and its replay recovery
//! (DESIGN §14).
//!
//! Durability rides the paper's §3.5 onCommit machinery: every mutation
//! that commits registers (via [`crate::ctx::Ctx::defer_or_run`]) a
//! handler that appends one redo record to an append-only segmented log,
//! labelled with the transaction's *commit stamp*
//! ([`tm::last_commit_stamp`]). Because onCommit handlers run after the
//! runtime has released every lock, the log write is outside every
//! transactional critical section — exactly the property the paper used
//! for `fprintf` — and because stamps are minted from the runtime's own
//! time base, sorting surviving records by `(epoch, stamp, file order)`
//! reproduces a serialization of the pre-crash history.
//!
//! On-disk format (all little-endian):
//!
//! ```text
//! segment   := header record*
//! header    := "MCDURSEG" version:u32 epoch:u64 cas_floor:u64 crc:u32
//! record    := len:u32 crc:u32 payload      (crc over payload)
//! payload   := stamp:u64 kind:u8 body
//! ```
//!
//! Torn tails — a record cut short by `kill -9` or a checksum mismatch —
//! end the segment scan silently (counted in `torn_records_dropped`); a
//! [`Record::Seal`] record marks a cleanly closed segment, so sealed
//! segments recover without trusting the tail heuristic.
//!
//! Failure policy: a failed append or fsync permanently drops the log
//! into **cache-only mode** — `log_write_errors` ticks, a warning prints
//! once, and every later append is a no-op. A durability fault never
//! panics a worker and never blocks a commit.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Segment filename prefix; full name is `seg-{epoch:016x}-{index:08}.log`.
const SEG_PREFIX: &str = "seg-";
/// Segment magic.
const SEG_MAGIC: &[u8; 8] = b"MCDURSEG";
/// Format version.
const SEG_VERSION: u32 = 1;
/// Header bytes: magic + version + epoch + cas_floor + crc.
const HEADER_BYTES: u64 = 8 + 4 + 8 + 8 + 4;
/// Upper bound on a single record payload — anything larger in a scan is
/// garbage (the cache itself caps values far below this).
const MAX_PAYLOAD: u32 = 64 << 20;

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven; no external dependency.

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Chaos injection (test-only, but compiled in: the crash harness drives a
// release child). Scoped to *writer appends* — recovery and compaction
// are never injected.

/// Appends attempted process-wide; the chaos triggers index into this.
#[doc(hidden)]
pub static APPEND_COUNTER: AtomicU64 = AtomicU64::new(0);
/// Appends with index >= this value fail as if the disk returned EIO.
#[doc(hidden)]
pub static CHAOS_FAIL_AFTER: AtomicU64 = AtomicU64::new(u64::MAX);
/// The append index at which the process aborts (`kill -9` analogue).
#[doc(hidden)]
pub static CHAOS_KILL_AT: AtomicU64 = AtomicU64::new(u64::MAX);
/// 0 = abort before writing, 1 = abort after half the frame (a torn
/// record), 2 = abort after the full frame.
#[doc(hidden)]
pub static CHAOS_KILL_MODE: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------
// Configuration & stats.

/// When the log writer calls `fdatasync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurFsync {
    /// Group commit: after every append, deduplicated — an append whose
    /// bytes another thread's sync already covered skips the syscall.
    Always,
    /// Sync once per N appends (and on rotation/seal).
    EveryN(u32),
    /// Never sync; the OS page cache is the only barrier. Survives
    /// process death (`kill -9`), not machine death.
    Off,
}

impl DurFsync {
    /// Parses `always`, `off`, `every:N` (or a bare integer = `every:N`).
    pub fn parse(s: &str) -> Option<DurFsync> {
        match s {
            "always" => Some(DurFsync::Always),
            "off" => Some(DurFsync::Off),
            _ => {
                let n = s.strip_prefix("every:").unwrap_or(s);
                n.parse::<u32>().ok().filter(|&n| n > 0).map(DurFsync::EveryN)
            }
        }
    }
}

impl std::fmt::Display for DurFsync {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurFsync::Always => write!(f, "always"),
            DurFsync::EveryN(n) => write!(f, "every:{n}"),
            DurFsync::Off => write!(f, "off"),
        }
    }
}

/// Durability counters, spliced into the ASCII `stats` response.
#[derive(Debug, Default)]
pub struct DurStats {
    pub(crate) appends: AtomicU64,
    pub(crate) fsyncs: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) write_errors: AtomicU64,
    pub(crate) recovered_items: AtomicU64,
    pub(crate) torn_records_dropped: AtomicU64,
    pub(crate) compactions: AtomicU64,
}

/// A point-in-time copy of [`DurStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurSnapshot {
    /// Redo records appended (excluding seals).
    pub appends: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
    /// Frame bytes written.
    pub bytes: u64,
    /// Appends dropped by I/O failure (cache-only mode) — includes the
    /// append that triggered degradation.
    pub log_write_errors: u64,
    /// Items replayed into the cache at the last startup.
    pub recovered_items: u64,
    /// Torn/corrupt records dropped during the last recovery scan.
    pub torn_records_dropped: u64,
    /// Log compactions performed at recovery.
    pub compactions: u64,
}

impl DurStats {
    /// Snapshots the counters.
    pub fn snapshot(&self) -> DurSnapshot {
        DurSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            log_write_errors: self.write_errors.load(Ordering::Relaxed),
            recovered_items: self.recovered_items.load(Ordering::Relaxed),
            torn_records_dropped: self.torn_records_dropped.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------
// Records.

/// One redo record. Times are Unix seconds (`McCache::unix_time`), so a
/// replay in a fresh process — whose relative clock restarts at 2 — can
/// still order stores against `flush_all` watermarks and real expiry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A committed store (set/add/replace/cas/append/prepend all land
    /// here: the record carries the full post-image).
    Set {
        /// CAS id the live cache assigned (feeds the recovery CAS floor).
        cas: u64,
        /// Client flags.
        flags: u32,
        /// Absolute expiry, Unix seconds; 0 = never.
        abs_exp: u64,
        /// Store time, Unix seconds (`flush_all` watermark comparisons).
        stored_unix: u64,
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// A committed delete.
    Del {
        /// Key bytes.
        key: Vec<u8>,
    },
    /// A committed incr/decr: the post-image is the decimal text of
    /// `value`. Does not touch expiry or store time (memcached
    /// semantics: `do_add_delta` rewrites in place).
    Arith {
        /// CAS id assigned by the arith (feeds the CAS floor).
        cas: u64,
        /// New numeric value.
        value: u64,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// A committed touch: new expiry, and the item's last-access time
    /// moves (which is what `flush_all` compares against).
    Touch {
        /// Absolute expiry, Unix seconds; 0 = never.
        abs_exp: u64,
        /// Touch time, Unix seconds.
        touched_unix: u64,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// A committed `flush_all`: everything stored at or before
    /// `flush_unix` is dead.
    FlushAll {
        /// Watermark, Unix seconds.
        flush_unix: u64,
    },
    /// Clean end-of-segment marker (graceful shutdown / compaction).
    Seal,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (a, b) = self.0.split_at(n);
        self.0 = b;
        Some(a)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()?;
        if n > MAX_PAYLOAD {
            return None;
        }
        self.take(n as usize).map(|b| b.to_vec())
    }
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Set { .. } => 1,
            Record::Del { .. } => 2,
            Record::Arith { .. } => 3,
            Record::Touch { .. } => 4,
            Record::FlushAll { .. } => 5,
            Record::Seal => 6,
        }
    }

    /// Encodes `stamp` + this record as a record payload.
    pub fn encode(&self, stamp: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_u64(&mut out, stamp);
        out.push(self.kind());
        match self {
            Record::Set { cas, flags, abs_exp, stored_unix, key, value } => {
                put_u64(&mut out, *cas);
                put_u32(&mut out, *flags);
                put_u64(&mut out, *abs_exp);
                put_u64(&mut out, *stored_unix);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            Record::Del { key } => put_bytes(&mut out, key),
            Record::Arith { cas, value, key } => {
                put_u64(&mut out, *cas);
                put_u64(&mut out, *value);
                put_bytes(&mut out, key);
            }
            Record::Touch { abs_exp, touched_unix, key } => {
                put_u64(&mut out, *abs_exp);
                put_u64(&mut out, *touched_unix);
                put_bytes(&mut out, key);
            }
            Record::FlushAll { flush_unix } => put_u64(&mut out, *flush_unix),
            Record::Seal => {}
        }
        out
    }

    /// Decodes a record payload; `None` on any structural mismatch.
    pub fn decode(payload: &[u8]) -> Option<(u64, Record)> {
        let mut r = Reader(payload);
        let stamp = r.u64()?;
        let rec = match r.u8()? {
            1 => Record::Set {
                cas: r.u64()?,
                flags: r.u32()?,
                abs_exp: r.u64()?,
                stored_unix: r.u64()?,
                key: r.bytes()?,
                value: r.bytes()?,
            },
            2 => Record::Del { key: r.bytes()? },
            3 => Record::Arith { cas: r.u64()?, value: r.u64()?, key: r.bytes()? },
            4 => Record::Touch {
                abs_exp: r.u64()?,
                touched_unix: r.u64()?,
                key: r.bytes()?,
            },
            5 => Record::FlushAll { flush_unix: r.u64()? },
            6 => Record::Seal,
            _ => return None,
        };
        r.0.is_empty().then_some((stamp, rec))
    }
}

/// Frames a payload: `len crc payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

fn segment_name(epoch: u64, index: u32) -> String {
    format!("{SEG_PREFIX}{epoch:016x}-{index:08}.log")
}

/// Parses `seg-{epoch}-{index}.log`; `None` for foreign files.
fn parse_segment_name(name: &str) -> Option<(u64, u32)> {
    let rest = name.strip_prefix(SEG_PREFIX)?.strip_suffix(".log")?;
    let (e, i) = rest.split_once('-')?;
    Some((u64::from_str_radix(e, 16).ok()?, i.parse().ok()?))
}

fn header_bytes(epoch: u64, cas_floor: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES as usize);
    out.extend_from_slice(SEG_MAGIC);
    put_u32(&mut out, SEG_VERSION);
    put_u64(&mut out, epoch);
    put_u64(&mut out, cas_floor);
    let crc = crc32(&out[8..]);
    put_u32(&mut out, crc);
    out
}

/// Segment files under `dir`, sorted by `(epoch, index)`.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, u32, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some((epoch, index)) = name.to_str().and_then(parse_segment_name) {
            segs.push((epoch, index, entry.path()));
        }
    }
    segs.sort_by_key(|&(e, i, _)| (e, i));
    Ok(segs)
}

// ---------------------------------------------------------------------
// Writer.

struct WriterInner {
    file: File,
    seg_index: u32,
    seg_bytes: u64,
    /// Appends written (monotone).
    seq: u64,
    /// Appends known durable; the group-commit dedup floor.
    synced_seq: u64,
    appends_since_sync: u32,
}

/// The append-only log writer. One per cache; shared by every worker
/// through an `Arc`. All methods are infallible by contract: an I/O
/// error degrades to cache-only mode instead of surfacing.
pub struct DurLog {
    dir: PathBuf,
    epoch: u64,
    fsync: DurFsync,
    segment_bytes: u64,
    cas_floor: u64,
    inner: Mutex<WriterInner>,
    failed: AtomicBool,
    sealed: AtomicBool,
    stats: DurStats,
}

impl std::fmt::Debug for DurLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurLog")
            .field("dir", &self.dir)
            .field("epoch", &self.epoch)
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

impl DurLog {
    /// Opens a fresh log epoch under `dir` (created if missing): one past
    /// the highest epoch already present, so this run's records sort
    /// after everything recovery just replayed. `cas_floor` is stamped
    /// into every segment header this writer creates.
    pub fn open(
        dir: &Path,
        fsync: DurFsync,
        segment_bytes: u64,
        cas_floor: u64,
    ) -> io::Result<DurLog> {
        fs::create_dir_all(dir)?;
        let epoch = list_segments(dir)?.iter().map(|&(e, _, _)| e).max().unwrap_or(0) + 1;
        let log = DurLog {
            dir: dir.to_path_buf(),
            epoch,
            fsync,
            // Floor low enough for tests, high enough to hold any record.
            segment_bytes: segment_bytes.max(4 * HEADER_BYTES),
            cas_floor,
            inner: Mutex::new(WriterInner {
                file: File::open("/dev/null")?, // placeholder, replaced below
                seg_index: 0,
                seg_bytes: 0,
                seq: 0,
                synced_seq: 0,
                appends_since_sync: 0,
            }),
            failed: AtomicBool::new(false),
            sealed: AtomicBool::new(false),
            stats: DurStats::default(),
        };
        let file = log.create_segment(0)?;
        {
            let mut g = log.inner.lock().unwrap();
            g.file = file;
            g.seg_bytes = HEADER_BYTES;
        }
        Ok(log)
    }

    /// Durability counters.
    pub fn stats(&self) -> &DurStats {
        &self.stats
    }

    /// True once an I/O failure dropped the log into cache-only mode.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// Records the recovery outcome in this writer's stats (the writer
    /// outlives the recovery scan; the cache surfaces one stat block).
    pub fn note_recovery(&self, recovered_items: u64, torn: u64, compactions: u64) {
        self.stats.recovered_items.store(recovered_items, Ordering::Relaxed);
        self.stats.torn_records_dropped.store(torn, Ordering::Relaxed);
        self.stats.compactions.store(compactions, Ordering::Relaxed);
    }

    fn create_segment(&self, index: u32) -> io::Result<File> {
        let path = self.dir.join(segment_name(self.epoch, index));
        let mut file = OpenOptions::new().create_new(true).write(true).open(path)?;
        file.write_all(&header_bytes(self.epoch, self.cas_floor))?;
        Ok(file)
    }

    fn degrade(&self, what: &str, err: &io::Error) {
        self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
        if !self.failed.swap(true, Ordering::SeqCst) {
            eprintln!(
                "mcache: durability {what} failed ({err}); redo log disabled, \
                 continuing in cache-only mode"
            );
        }
    }

    /// Appends one record at `stamp`. Never blocks a commit on anything
    /// but the (short) writer critical section; never panics; after an
    /// I/O failure every call is a counted no-op.
    pub fn append(&self, stamp: u64, rec: &Record) {
        if self.failed.load(Ordering::Relaxed) {
            self.stats.write_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let payload = rec.encode(stamp);
        let buf = frame(&payload);
        // Chaos window: indexed per attempted append, before any byte
        // lands, so a seed-chosen kill point is deterministic in the
        // number of *operations*, not in fsync timing.
        let n = APPEND_COUNTER.fetch_add(1, Ordering::SeqCst);
        let kill_here = n == CHAOS_KILL_AT.load(Ordering::Relaxed);
        let kill_mode = CHAOS_KILL_MODE.load(Ordering::Relaxed);
        if kill_here && kill_mode == 0 {
            std::process::abort();
        }
        if n >= CHAOS_FAIL_AFTER.load(Ordering::Relaxed) {
            self.degrade(
                "append (chaos)",
                &io::Error::new(io::ErrorKind::Other, "injected I/O error"),
            );
            return;
        }
        let my_seq;
        let mut need_sync = false;
        {
            let mut g = self.inner.lock().unwrap();
            // Rotate before the frame would overflow the segment budget.
            if g.seg_bytes + buf.len() as u64 > self.segment_bytes && g.seg_bytes > HEADER_BYTES {
                if self.fsync != DurFsync::Off {
                    if let Err(e) = g.file.sync_data() {
                        drop(g);
                        self.degrade("rotation fsync", &e);
                        return;
                    }
                    self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                match self.create_segment(g.seg_index + 1) {
                    Ok(f) => {
                        g.file = f;
                        g.seg_index += 1;
                        g.seg_bytes = HEADER_BYTES;
                        g.synced_seq = g.seq;
                        g.appends_since_sync = 0;
                    }
                    Err(e) => {
                        drop(g);
                        self.degrade("segment rotation", &e);
                        return;
                    }
                }
            }
            let write_res = if kill_here && kill_mode == 1 {
                // A torn record: half the frame, then death.
                let _ = g.file.write_all(&buf[..buf.len() / 2]);
                let _ = g.file.sync_data();
                std::process::abort();
            } else {
                g.file.write_all(&buf)
            };
            if let Err(e) = write_res {
                drop(g);
                self.degrade("append", &e);
                return;
            }
            g.seg_bytes += buf.len() as u64;
            g.seq += 1;
            my_seq = g.seq;
            self.stats.appends.fetch_add(1, Ordering::Relaxed);
            self.stats.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
            match self.fsync {
                DurFsync::Always => need_sync = true,
                DurFsync::EveryN(k) => {
                    g.appends_since_sync += 1;
                    if g.appends_since_sync >= k {
                        g.appends_since_sync = 0;
                        need_sync = true;
                    }
                }
                DurFsync::Off => {}
            }
        }
        if kill_here && kill_mode == 2 {
            std::process::abort();
        }
        if need_sync {
            // Group commit: re-acquire and skip the syscall if another
            // thread's sync already covered our bytes while we queued.
            let mut g = self.inner.lock().unwrap();
            if g.synced_seq < my_seq {
                match g.file.sync_data() {
                    Ok(()) => {
                        g.synced_seq = g.seq;
                        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        drop(g);
                        self.degrade("fsync", &e);
                    }
                }
            }
        }
    }

    /// Seals the current segment: appends a [`Record::Seal`] marker and
    /// syncs, regardless of fsync policy. Graceful-shutdown path; a
    /// sealed segment recovers without the torn-tail heuristic.
    pub fn seal(&self) {
        if self.failed.load(Ordering::Relaxed) || self.sealed.swap(true, Ordering::SeqCst) {
            return;
        }
        let buf = frame(&Record::Seal.encode(0));
        let mut g = self.inner.lock().unwrap();
        if let Err(e) = g.file.write_all(&buf).and_then(|()| g.file.sync_data()) {
            drop(g);
            self.degrade("seal", &e);
            return;
        }
        g.seg_bytes += buf.len() as u64;
        self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Recovery.

/// One live entry reconstructed from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredEntry {
    /// Key bytes.
    pub key: Vec<u8>,
    /// Client flags.
    pub flags: u32,
    /// Absolute expiry, Unix seconds; 0 = never. Callers skip entries
    /// already expired at replay time.
    pub abs_exp: u64,
    /// Last store/touch time, Unix seconds.
    pub stored_unix: u64,
    /// Value bytes.
    pub value: Vec<u8>,
}

/// The outcome of a recovery scan.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Live entries (flush watermark applied; expiry left to the
    /// caller's clock), in no particular order.
    pub entries: Vec<RecoveredEntry>,
    /// Highest CAS id observed across records and segment headers; the
    /// restarted cache must allocate strictly above this.
    pub cas_floor: u64,
    /// Records dropped as torn/corrupt (including corrupt headers).
    pub torn_records_dropped: u64,
    /// Intact records scanned.
    pub records_scanned: u64,
    /// Segment files visited.
    pub segments: u64,
    /// Highest epoch present (0 = empty log).
    pub max_epoch: u64,
    /// Total log bytes on disk (compaction trigger input).
    pub log_bytes: u64,
    /// True if the final segment ended in a clean [`Record::Seal`].
    pub sealed_tail: bool,
}

/// Scans every segment under `dir`, drops torn/corrupt tails, sorts the
/// survivors by `(epoch, stamp, append order)` and folds them into the
/// final key → entry map. A missing directory is an empty log.
pub fn recover(dir: &Path) -> io::Result<Recovery> {
    let mut out = Recovery::default();
    let segs = match list_segments(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    // (epoch, stamp, scan_seq) -> record; scan_seq makes the sort's
    // equal-stamp tie-break the file append order (same-key appends under
    // one item lock are written in lock order).
    let mut records: Vec<(u64, u64, u64, Record)> = Vec::new();
    let mut seq = 0u64;
    for &(epoch, _, ref path) in &segs {
        out.segments += 1;
        out.max_epoch = out.max_epoch.max(epoch);
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        out.log_bytes += data.len() as u64;
        out.sealed_tail = false;
        // Header.
        if data.len() < HEADER_BYTES as usize
            || &data[..8] != SEG_MAGIC
            || u32::from_le_bytes(data[8..12].try_into().unwrap()) != SEG_VERSION
            || crc32(&data[8..28]) != u32::from_le_bytes(data[28..32].try_into().unwrap())
        {
            out.torn_records_dropped += 1;
            continue;
        }
        let hdr_epoch = u64::from_le_bytes(data[12..20].try_into().unwrap());
        let hdr_floor = u64::from_le_bytes(data[20..28].try_into().unwrap());
        out.cas_floor = out.cas_floor.max(hdr_floor);
        let mut rest = &data[HEADER_BYTES as usize..];
        loop {
            if rest.is_empty() {
                break; // clean EOF without seal (crash with intact tail)
            }
            let torn = |out: &mut Recovery| out.torn_records_dropped += 1;
            if rest.len() < 8 {
                torn(&mut out);
                break;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
            let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            if len > MAX_PAYLOAD || rest.len() < 8 + len as usize {
                torn(&mut out);
                break;
            }
            let payload = &rest[8..8 + len as usize];
            if crc32(payload) != crc {
                torn(&mut out);
                break;
            }
            let Some((stamp, rec)) = Record::decode(payload) else {
                torn(&mut out);
                break;
            };
            rest = &rest[8 + len as usize..];
            if rec == Record::Seal {
                out.sealed_tail = rest.is_empty();
                break;
            }
            out.records_scanned += 1;
            records.push((hdr_epoch, stamp, seq, rec));
            seq += 1;
        }
    }
    // Serialization order: epoch (process run), then commit stamp, then
    // append order for equal stamps (norec direct-path ties).
    records.sort_by_key(|&(e, s, q, _)| (e, s, q));
    let mut map: HashMap<Vec<u8>, RecoveredEntry> = HashMap::new();
    // `flush_all` is time-based like the live cache's `is_live`: the max
    // watermark kills every entry stored at or before it, regardless of
    // replay position (a store in the flush second dies even if its
    // commit stamped after the flush — exactly memcached's rule).
    let mut flush_watermark = 0u64;
    for (_, _, _, rec) in records {
        match rec {
            Record::Set { cas, flags, abs_exp, stored_unix, key, value } => {
                out.cas_floor = out.cas_floor.max(cas);
                map.insert(
                    key.clone(),
                    RecoveredEntry { key, flags, abs_exp, stored_unix, value },
                );
            }
            Record::Del { key } => {
                map.remove(&key);
            }
            Record::Arith { cas, value, key } => {
                out.cas_floor = out.cas_floor.max(cas);
                if let Some(e) = map.get_mut(&key) {
                    e.value = value.to_string().into_bytes();
                }
            }
            Record::Touch { abs_exp, touched_unix, key } => {
                if let Some(e) = map.get_mut(&key) {
                    e.abs_exp = abs_exp;
                    e.stored_unix = touched_unix;
                }
            }
            Record::FlushAll { flush_unix } => {
                flush_watermark = flush_watermark.max(flush_unix);
            }
            Record::Seal => unreachable!("seals never enter the record list"),
        }
    }
    out.entries = map
        .into_values()
        .filter(|e| flush_watermark == 0 || e.stored_unix > flush_watermark)
        .collect();
    Ok(out)
}

/// Rewrites the log as one sealed segment (epoch `max_epoch + 1`)
/// holding exactly `entries`, then deletes the older segments. Returns
/// the epoch written. Called only at recovery time, before the writer
/// opens, so there is no concurrent appender.
pub fn compact(dir: &Path, rec: &Recovery, unix_now: u64) -> io::Result<u64> {
    let epoch = rec.max_epoch + 1;
    let path = dir.join(segment_name(epoch, 0));
    let mut file = OpenOptions::new().create_new(true).write(true).open(&path)?;
    let mut buf = header_bytes(epoch, rec.cas_floor);
    for (i, e) in rec.entries.iter().enumerate() {
        let r = Record::Set {
            cas: 0, // floor already carried by the header
            flags: e.flags,
            abs_exp: e.abs_exp,
            stored_unix: e.stored_unix.min(unix_now),
            key: e.key.clone(),
            value: e.value.clone(),
        };
        buf.extend_from_slice(&frame(&r.encode(i as u64 + 1)));
    }
    buf.extend_from_slice(&frame(&Record::Seal.encode(0)));
    file.write_all(&buf)?;
    file.sync_data()?;
    drop(file);
    // Directory durability for the create+unlinks, best-effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    for (e, _, p) in list_segments(dir)? {
        if e < epoch {
            let _ = fs::remove_file(p);
        }
    }
    Ok(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mcache-dur-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn set(key: &[u8], value: &[u8], cas: u64, stored: u64) -> Record {
        Record::Set {
            cas,
            flags: 7,
            abs_exp: 0,
            stored_unix: stored,
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let records = [
            set(b"k", b"v", 42, 100),
            Record::Del { key: b"k".to_vec() },
            Record::Arith { cas: 9, value: 123, key: b"n".to_vec() },
            Record::Touch { abs_exp: 55, touched_unix: 50, key: b"k".to_vec() },
            Record::FlushAll { flush_unix: 77 },
            Record::Seal,
        ];
        for (i, r) in records.iter().enumerate() {
            let enc = r.encode(i as u64 + 10);
            let (stamp, dec) = Record::decode(&enc).expect("roundtrip");
            assert_eq!(stamp, i as u64 + 10);
            assert_eq!(&dec, r);
            // Any flipped byte must fail the crc at frame level.
            let f = frame(&enc);
            let payload = &f[8..];
            assert_eq!(crc32(payload), u32::from_le_bytes(f[4..8].try_into().unwrap()));
        }
        assert!(Record::decode(b"").is_none());
        assert!(Record::decode(&[0; 9]).is_none());
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(DurFsync::parse("always"), Some(DurFsync::Always));
        assert_eq!(DurFsync::parse("off"), Some(DurFsync::Off));
        assert_eq!(DurFsync::parse("every:8"), Some(DurFsync::EveryN(8)));
        assert_eq!(DurFsync::parse("16"), Some(DurFsync::EveryN(16)));
        assert_eq!(DurFsync::parse("every:0"), None);
        assert_eq!(DurFsync::parse("sometimes"), None);
        assert_eq!(DurFsync::EveryN(8).to_string(), "every:8");
    }

    #[test]
    fn write_then_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let log = DurLog::open(&dir, DurFsync::Always, 1 << 20, 0).unwrap();
        log.append(10, &set(b"a", b"1", 1, 100));
        log.append(11, &set(b"b", b"2", 2, 101));
        log.append(12, &Record::Del { key: b"a".to_vec() });
        log.append(13, &Record::Arith { cas: 3, value: 5, key: b"b".to_vec() });
        log.seal();
        let s = log.stats().snapshot();
        assert_eq!(s.appends, 4);
        assert!(s.fsyncs >= 4, "always policy must sync: {s:?}");
        assert!(s.bytes > 0);
        drop(log);

        let rec = recover(&dir).unwrap();
        assert!(rec.sealed_tail, "sealed shutdown must be recognized");
        assert_eq!(rec.torn_records_dropped, 0);
        assert_eq!(rec.records_scanned, 4);
        assert_eq!(rec.cas_floor, 3);
        assert_eq!(rec.entries.len(), 1);
        let e = &rec.entries[0];
        assert_eq!(e.key, b"b");
        assert_eq!(e.value, b"5", "arith must replace the value text");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_silently() {
        let dir = tmpdir("torn");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        log.append(10, &set(b"a", b"1", 1, 100));
        log.append(11, &set(b"b", b"2", 2, 100));
        drop(log);
        // Cut the last record in half.
        let (_, _, path) = list_segments(&dir).unwrap().pop().unwrap();
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 5]).unwrap();
        let rec = recover(&dir).unwrap();
        assert!(!rec.sealed_tail);
        assert_eq!(rec.torn_records_dropped, 1);
        assert_eq!(rec.records_scanned, 1);
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].key, b"a");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_drops_rest_of_segment_only() {
        let dir = tmpdir("corrupt");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        log.append(10, &set(b"a", b"1", 1, 100));
        log.append(11, &set(b"b", b"2", 2, 100));
        log.append(12, &set(b"c", b"3", 3, 100));
        drop(log);
        // Flip a byte inside record 2's payload.
        let (_, _, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut data = fs::read(&path).unwrap();
        let hdr = HEADER_BYTES as usize;
        let rec1_len = u32::from_le_bytes(data[hdr..hdr + 4].try_into().unwrap()) as usize + 8;
        data[hdr + rec1_len + 12] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.torn_records_dropped, 1, "one corrupt stop, not per-record");
        assert_eq!(rec.records_scanned, 1, "records after the corruption are gone");
        assert_eq!(rec.entries.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stamp_order_wins_over_file_order_across_interleaved_keys() {
        let dir = tmpdir("order");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        // Two writers' handlers raced to the file: key k's newer stamp
        // landed first in the file. Replay must keep the newer value.
        log.append(20, &set(b"k", b"new", 2, 100));
        log.append(10, &set(b"k", b"old", 1, 100));
        drop(log);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.entries[0].value, b"new");
        fs::remove_dir_all(&dir).unwrap();

        // Equal stamps (norec ties): file order breaks the tie.
        let dir = tmpdir("order-tie");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        log.append(10, &set(b"k", b"first", 1, 100));
        log.append(10, &set(b"k", b"second", 2, 100));
        drop(log);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.entries[0].value, b"second");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_all_kills_by_time_not_position() {
        let dir = tmpdir("flush");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        log.append(10, &set(b"before", b"1", 1, 50));
        log.append(20, &Record::FlushAll { flush_unix: 100 });
        // Stored in the flush second, commit-stamped after the flush:
        // dead (memcached's `last <= watermark` rule).
        log.append(30, &set(b"same-second", b"2", 2, 100));
        log.append(40, &set(b"after", b"3", 3, 101));
        drop(log);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].key, b"after");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn touch_moves_expiry_and_flush_liveness() {
        let dir = tmpdir("touch");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        log.append(10, &set(b"k", b"v", 1, 50));
        log.append(20, &Record::Touch { abs_exp: 500, touched_unix: 120, key: b"k".to_vec() });
        log.append(30, &Record::FlushAll { flush_unix: 100 });
        drop(log);
        let rec = recover(&dir).unwrap();
        // The touch moved last-access past the watermark: survives.
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].abs_exp, 500);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_rotation_and_multi_epoch_recovery() {
        let dir = tmpdir("rotate");
        let log = DurLog::open(&dir, DurFsync::Off, 256, 0).unwrap();
        for i in 0..32u64 {
            log.append(10 + i, &set(format!("k{i}").as_bytes(), b"xxxxxxxxxxxxxxxx", i, 100));
        }
        drop(log);
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "tiny segment budget must rotate"
        );
        // Second epoch overwrites half the keys.
        let log = DurLog::open(&dir, DurFsync::Off, 256, 0).unwrap();
        for i in 0..16u64 {
            // Smaller stamps than epoch 1's: epoch ordering must dominate.
            log.append(1 + i, &set(format!("k{i}").as_bytes(), b"NEW", 100 + i, 200));
        }
        drop(log);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.entries.len(), 32);
        for e in &rec.entries {
            let i: u64 = std::str::from_utf8(&e.key[1..]).unwrap().parse().unwrap();
            if i < 16 {
                assert_eq!(e.value, b"NEW", "epoch 2 must win for k{i}");
            } else {
                assert_eq!(e.value, b"xxxxxxxxxxxxxxxx");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rewrites_live_set_and_drops_old_segments() {
        let dir = tmpdir("compact");
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        for i in 0..64u64 {
            log.append(10 + i, &set(b"hot", format!("v{i}").as_bytes(), i + 1, 100));
        }
        log.append(100, &set(b"cold", b"keep", 65, 100));
        drop(log);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.entries.len(), 2);
        let live: u64 = rec.entries.iter().map(|e| (e.key.len() + e.value.len()) as u64).sum();
        assert!(live < rec.log_bytes / 2, "mostly-dead log: {live} vs {}", rec.log_bytes);
        let epoch = compact(&dir, &rec, 200).unwrap();
        assert_eq!(epoch, 2);
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1, "old segments must be deleted: {segs:?}");
        let rec2 = recover(&dir).unwrap();
        assert!(rec2.sealed_tail);
        assert_eq!(rec2.cas_floor, rec.cas_floor, "floor must ride the header");
        let mut vals: Vec<_> = rec2.entries.iter().map(|e| e.value.clone()).collect();
        vals.sort();
        assert_eq!(vals, vec![b"keep".to_vec(), b"v63".to_vec()]);
        // A new writer opens above the compacted epoch.
        let log = DurLog::open(&dir, DurFsync::Off, 1 << 20, 0).unwrap();
        assert_eq!(log.epoch, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_fail_degrades_to_cache_only_once() {
        let dir = tmpdir("chaos-fail");
        let log = DurLog::open(&dir, DurFsync::Always, 1 << 20, 0).unwrap();
        log.append(1, &set(b"a", b"1", 1, 100));
        let base = APPEND_COUNTER.load(Ordering::SeqCst);
        CHAOS_FAIL_AFTER.store(base, Ordering::SeqCst);
        log.append(2, &set(b"b", b"2", 2, 100));
        log.append(3, &set(b"c", b"3", 3, 100));
        CHAOS_FAIL_AFTER.store(u64::MAX, Ordering::SeqCst);
        // Degradation is sticky even after the chaos window closes.
        log.append(4, &set(b"d", b"4", 4, 100));
        assert!(log.is_failed());
        let s = log.stats().snapshot();
        assert_eq!(s.appends, 1, "no append lands after degradation");
        assert_eq!(s.log_write_errors, 3);
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.entries.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_dedups_fsyncs_across_threads() {
        let dir = tmpdir("group");
        let log = std::sync::Arc::new(DurLog::open(&dir, DurFsync::Always, 1 << 20, 0).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let log = std::sync::Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..64u64 {
                        log.append(t * 1000 + i, &set(b"k", b"v", 1, 100));
                    }
                });
            }
        });
        let s = log.stats().snapshot();
        assert_eq!(s.appends, 256);
        assert!(
            s.fsyncs <= s.appends,
            "dedup must never sync more than once per append: {s:?}"
        );
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records_scanned, 256);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_n_policy_batches_syncs() {
        let dir = tmpdir("everyn");
        let log = DurLog::open(&dir, DurFsync::EveryN(16), 1 << 20, 0).unwrap();
        for i in 0..64u64 {
            log.append(i, &set(b"k", b"v", 1, 100));
        }
        let s = log.stats().snapshot();
        assert_eq!(s.appends, 64);
        assert_eq!(s.fsyncs, 4, "64 appends / every:16 = 4 syncs: {s:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_recovers_empty() {
        let rec = recover(Path::new("/definitely/not/a/real/mcache/dir")).unwrap();
        assert_eq!(rec.entries.len(), 0);
        assert_eq!(rec.segments, 0);
    }
}
