//! The slab allocator (`slabs.c`): size classes, page carving, free lists,
//! and the page-level rebalancer — the third lock category of §3.1.
//!
//! Memory is preallocated as fixed-size pages; each size class claims pages
//! from the shared pool and carves them into equal chunks chained onto a
//! free list. The *slab rebalancer* (a maintenance thread) can move a
//! fully-free page from a rich class to a needy one; its `slab_rebalance`
//! lock is the one the paper replaced with "a boolean that was modified via
//! transactions" so other threads could `trylock`-probe it (§3.1).

use tm::{Abort, TBytes, TCell, Word};
use tmstd::ByteAccess;

use crate::ctx::Ctx;
use crate::item::{ItemHandle, ItemRef, ITEM_SLABBED};
use crate::policy::Policy;

/// Slab allocator geometry.
#[derive(Clone, Copy, Debug)]
pub struct SlabConfig {
    /// Total cache memory (`-m`), in bytes.
    pub mem_limit: usize,
    /// Bytes per slab page (memcached: 1 MiB; scaled default 256 KiB).
    pub page_size: usize,
    /// Smallest chunk size.
    pub chunk_min: usize,
    /// Successive chunk-size growth factor (`-f`, memcached default 1.25).
    pub growth_factor: f64,
}

impl Default for SlabConfig {
    fn default() -> Self {
        SlabConfig {
            mem_limit: 32 << 20,
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.25,
        }
    }
}

/// One size class.
#[derive(Debug)]
pub struct SlabClass {
    /// Chunk size in bytes (multiple of 8).
    pub chunk_size: usize,
    /// Chunks carved per page.
    pub chunks_per_page: usize,
    freelist_head: TCell<u64>,
    free_count: TCell<u64>,
    total_chunks: TCell<u64>,
    page_count: TCell<u64>,
    page_list: Box<[TCell<u64>]>, // page index + 1; 0 = empty slot
}

/// The arena: pages, classes, and rebalancer state.
pub struct SlabArena {
    cfg: SlabConfig,
    classes: Vec<SlabClass>,
    pages: Vec<TBytes>,
    page_class: Vec<TCell<u64>>, // class + 1; 0 = unassigned
    page_free: Vec<TCell<u64>>,  // free chunks currently in this page
    pool_next: TCell<u64>,
    /// The `volatile` slab-rebalance signal checked at section entries.
    pub rebalance_signal: TCell<u64>,
    /// The boolean that replaced the `slab_rebalance` mutex in the
    /// transactional branches (§3.1).
    pub rebalance_lock: TCell<bool>,
    /// Which class most recently failed to allocate (rebalance receiver).
    pub needy_class: TCell<u64>,
}

impl std::fmt::Debug for SlabArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabArena")
            .field("classes", &self.classes.len())
            .field("pages", &self.pages.len())
            .field("page_size", &self.cfg.page_size)
            .finish()
    }
}

impl SlabArena {
    /// Builds the arena: computes size classes and preallocates all pages.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero pages, growth factor ≤ 1, or
    /// more than 255 classes).
    pub fn new(cfg: SlabConfig) -> Self {
        assert!(cfg.growth_factor > 1.0, "growth factor must exceed 1");
        assert!(cfg.page_size.is_multiple_of(8) && cfg.chunk_min >= 96);
        let page_count = cfg.mem_limit / cfg.page_size;
        assert!(page_count > 0, "mem_limit smaller than one page");
        assert!(page_count <= u32::MAX as usize);

        let mut sizes = Vec::new();
        let mut sz = cfg.chunk_min;
        while sz < cfg.page_size {
            sizes.push(sz.div_ceil(8) * 8);
            let next = ((sz as f64) * cfg.growth_factor) as usize;
            sz = next.max(sz + 8);
        }
        sizes.push(cfg.page_size);
        assert!(sizes.len() <= 255, "too many slab classes");

        let classes = sizes
            .iter()
            .map(|&chunk_size| {
                let cpp = (cfg.page_size / chunk_size).min(u16::MAX as usize);
                SlabClass {
                    chunk_size,
                    chunks_per_page: cpp,
                    freelist_head: TCell::new(0),
                    free_count: TCell::new(0),
                    total_chunks: TCell::new(0),
                    page_count: TCell::new(0),
                    page_list: (0..page_count).map(|_| TCell::new(0u64)).collect(),
                }
            })
            .collect();

        SlabArena {
            classes,
            pages: (0..page_count).map(|_| TBytes::zeroed(cfg.page_size)).collect(),
            page_class: (0..page_count).map(|_| TCell::new(0u64)).collect(),
            page_free: (0..page_count).map(|_| TCell::new(0u64)).collect(),
            pool_next: TCell::new(0),
            rebalance_signal: TCell::new(0),
            rebalance_lock: TCell::new(false),
            needy_class: TCell::new(0),
            cfg,
        }
    }

    /// Number of size classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of pages in the pool.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Class metadata.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn class(&self, c: u8) -> &SlabClass {
        &self.classes[c as usize]
    }

    /// The smallest class whose chunks fit `ntotal` bytes
    /// (`slabs_clsid`). `None` if the object exceeds the largest chunk.
    pub fn class_for(&self, ntotal: usize) -> Option<u8> {
        self.classes
            .iter()
            .position(|cl| cl.chunk_size >= ntotal)
            .map(|i| i as u8)
    }

    /// Resolves a handle to its storage.
    ///
    /// # Panics
    ///
    /// Panics if the handle's coordinates are out of range.
    pub fn resolve(&self, h: ItemHandle) -> ItemRef<'_> {
        let cl = &self.classes[h.class as usize];
        let byte0 = h.chunk as usize * cl.chunk_size;
        assert!(byte0 + cl.chunk_size <= self.cfg.page_size);
        ItemRef {
            page: &self.pages[h.page as usize],
            word0: byte0 / 8,
            byte0,
            handle: h,
        }
    }

    /// Free chunks currently available in class `c`.
    pub fn free_chunks<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, c: u8) -> Result<u64, Abort> {
        ctx.get_word(self.classes[c as usize].free_count.word())
    }

    /// Pops a free chunk for class `c`, claiming and carving a fresh pool
    /// page if the free list is empty. `None` means the pool is exhausted
    /// (the caller evicts).
    ///
    /// Must run under the slabs lock / inside a slabs transaction.
    pub fn alloc_from<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        c: u8,
    ) -> Result<Option<ItemHandle>, Abort> {
        let cl = &self.classes[c as usize];
        loop {
            let head = ctx.get_word(cl.freelist_head.word())?;
            if head != 0 {
                let h = ItemHandle::from_word(head);
                let it = self.resolve(h);
                let next = it.hnext(ctx)?;
                ctx.put_word(
                    cl.freelist_head.word(),
                    crate::item::encode_opt(next),
                )?;
                let fc = ctx.get_word(cl.free_count.word())?;
                ctx.assert_that(policy, fc > 0, "slab free_count underflow")?;
                ctx.put_word(cl.free_count.word(), fc - 1)?;
                let pf = ctx.get_word(self.page_free[h.page as usize].word())?;
                ctx.put_word(self.page_free[h.page as usize].word(), pf - 1)?;
                it.update_flags(ctx, 0, ITEM_SLABBED)?;
                it.set_hnext(ctx, None)?;
                return Ok(Some(h));
            }
            // Free list dry: claim a pool page.
            let pn = ctx.get_word(self.pool_next.word())?;
            if pn as usize >= self.pages.len() {
                return Ok(None);
            }
            ctx.put_word(self.pool_next.word(), pn + 1)?;
            self.assign_page(ctx, c, pn as u32)?;
        }
    }

    /// Assigns pool page `p` to class `c` and carves it onto the free
    /// list.
    fn assign_page<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, c: u8, p: u32) -> Result<(), Abort> {
        let cl = &self.classes[c as usize];
        ctx.put_word(self.page_class[p as usize].word(), c as u64 + 1)?;
        let pc = ctx.get_word(cl.page_count.word())?;
        ctx.put_word(cl.page_list[pc as usize].word(), p as u64 + 1)?;
        ctx.put_word(cl.page_count.word(), pc + 1)?;
        self.carve(ctx, c, p)
    }

    /// Chains every chunk of page `p` onto class `c`'s free list.
    fn carve<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, c: u8, p: u32) -> Result<(), Abort> {
        let cl = &self.classes[c as usize];
        let mut head = crate::item::decode_opt(ctx.get_word(cl.freelist_head.word())?);
        for chunk in 0..cl.chunks_per_page as u16 {
            let h = ItemHandle { class: c, page: p, chunk };
            let it = self.resolve(h);
            it.set_hnext(ctx, head)?;
            it.set_flags(ctx, ITEM_SLABBED | ((c as u64) << 8))?;
            it.set_refcount(ctx, 0)?;
            head = Some(h);
        }
        ctx.put_word(
            cl.freelist_head.word(),
            crate::item::encode_opt(head),
        )?;
        let fc = ctx.get_word(cl.free_count.word())?;
        ctx.put_word(cl.free_count.word(), fc + cl.chunks_per_page as u64)?;
        let tc = ctx.get_word(cl.total_chunks.word())?;
        ctx.put_word(cl.total_chunks.word(), tc + cl.chunks_per_page as u64)?;
        ctx.put_word(
            self.page_free[p as usize].word(),
            cl.chunks_per_page as u64,
        )?;
        Ok(())
    }

    /// Pops up to `n` free chunks of class `c` into `out` — the magazine
    /// refill primitive. One call inside one transaction amortizes the
    /// freelist-head and free-count traffic across the whole batch instead
    /// of paying it once per SET. Chunks come out exactly as from
    /// [`SlabArena::alloc_from`] and are accounted *allocated*
    /// (`free_count` and `page_free` both drop), so a magazine-held chunk
    /// can never be swept up by [`SlabArena::rebalance_step`]'s
    /// fully-free-page scan. Returns how many chunks were popped; fewer
    /// than `n` means the pool ran dry (the caller evicts or flushes).
    pub fn alloc_batch<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        c: u8,
        n: usize,
        out: &mut Vec<ItemHandle>,
    ) -> Result<usize, Abort> {
        let mut got = 0;
        while got < n {
            match self.alloc_from(ctx, policy, c)? {
                Some(h) => {
                    out.push(h);
                    got += 1;
                }
                None => break,
            }
        }
        Ok(got)
    }

    /// Returns a batch of chunks to their free lists — the magazine flush
    /// primitive (one transaction per flush instead of one per chunk).
    pub fn free_batch<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        hs: &[ItemHandle],
    ) -> Result<(), Abort> {
        for &h in hs {
            self.free(ctx, h)?;
        }
        Ok(())
    }

    /// Returns a chunk to its class's free list (`slabs_free`).
    pub fn free<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, h: ItemHandle) -> Result<(), Abort> {
        let cl = &self.classes[h.class as usize];
        let it = self.resolve(h);
        let head = crate::item::decode_opt(ctx.get_word(cl.freelist_head.word())?);
        it.set_hnext(ctx, head)?;
        it.set_flags(ctx, ITEM_SLABBED | ((h.class as u64) << 8))?;
        it.set_refcount(ctx, 0)?;
        ctx.put_word(cl.freelist_head.word(), h.to_word())?;
        let fc = ctx.get_word(cl.free_count.word())?;
        ctx.put_word(cl.free_count.word(), fc + 1)?;
        let pf = ctx.get_word(self.page_free[h.page as usize].word())?;
        ctx.put_word(self.page_free[h.page as usize].word(), pf + 1)?;
        Ok(())
    }

    /// One slab-rebalance round: move a fully-free page from `donor` to
    /// `receiver`, filtering the donor's free list. Returns `true` if a
    /// page moved. Must run under the slabs lock / inside a transaction.
    pub fn rebalance_step<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        donor: u8,
        receiver: u8,
    ) -> Result<bool, Abort> {
        if donor == receiver {
            return Ok(false);
        }
        let dcl = &self.classes[donor as usize];
        let cpp = dcl.chunks_per_page as u64;
        let pc = ctx.get_word(dcl.page_count.word())?;
        // Find a fully-free page.
        let mut slot = None;
        for i in 0..pc as usize {
            let pw = ctx.get_word(dcl.page_list[i].word())?;
            if pw == 0 {
                continue;
            }
            let p = (pw - 1) as usize;
            if ctx.get_word(self.page_free[p].word())? == cpp {
                slot = Some((i, p as u32));
                break;
            }
        }
        let Some((slot, p)) = slot else {
            return Ok(false);
        };
        // Unchain the page's chunks from the donor free list.
        let mut prev: Option<ItemHandle> = None;
        let mut cur = crate::item::decode_opt(ctx.get_word(dcl.freelist_head.word())?);
        let mut removed = 0u64;
        let mut steps = 0usize;
        while let Some(h) = cur {
            steps += 1;
            ctx.assert_that(policy, steps <= 1_000_000, "freelist cycle detected")?;
            let it = self.resolve(h);
            let next = it.hnext(ctx)?;
            if h.page == p {
                match prev {
                    None => ctx.put_word(
                        dcl.freelist_head.word(),
                        crate::item::encode_opt(next),
                    )?,
                    Some(ph) => self.resolve(ph).set_hnext(ctx, next)?,
                }
                removed += 1;
            } else {
                prev = Some(h);
            }
            cur = next;
        }
        ctx.assert_that(policy, removed == cpp, "rebalanced page was not fully free")?;
        let fc = ctx.get_word(dcl.free_count.word())?;
        ctx.put_word(dcl.free_count.word(), fc - removed)?;
        let tc = ctx.get_word(dcl.total_chunks.word())?;
        ctx.put_word(dcl.total_chunks.word(), tc - removed)?;
        // Drop the page from the donor's page list (swap with last).
        let last = ctx.get_word(dcl.page_list[pc as usize - 1].word())?;
        ctx.put_word(dcl.page_list[slot].word(), last)?;
        ctx.put_word(dcl.page_list[pc as usize - 1].word(), 0)?;
        ctx.put_word(dcl.page_count.word(), pc - 1)?;
        // Hand it to the receiver.
        self.assign_page(ctx, receiver, p)?;
        Ok(true)
    }

    /// The donor class for a rebalance: the one with the most free chunks
    /// (at least one full page's worth).
    pub fn pick_donor<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<Option<u8>, Abort> {
        let mut best: Option<(u8, u64)> = None;
        for (i, cl) in self.classes.iter().enumerate() {
            let free = ctx.get_word(cl.free_count.word())?;
            if free >= cl.chunks_per_page as u64
                && best.is_none_or(|(_, bf)| free > bf)
            {
                best = Some((i as u8, free));
            }
        }
        Ok(best.map(|(c, _)| c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Branch;

    fn small_arena() -> SlabArena {
        SlabArena::new(SlabConfig {
            mem_limit: 64 << 10,
            page_size: 8 << 10,
            chunk_min: 96,
            growth_factor: 2.0,
            ..Default::default()
        })
    }

    #[test]
    fn geometry() {
        let a = small_arena();
        assert_eq!(a.page_count(), 8);
        assert!(a.class_count() >= 4);
        // Classes strictly increase and are 8-aligned.
        for w in 0..a.class_count() - 1 {
            assert!(a.class(w as u8).chunk_size < a.class(w as u8 + 1).chunk_size);
            assert_eq!(a.class(w as u8).chunk_size % 8, 0);
        }
    }

    #[test]
    fn class_for_sizes() {
        let a = small_arena();
        assert_eq!(a.class_for(50), Some(0));
        assert_eq!(a.class_for(97), Some(1));
        assert_eq!(a.class_for(a.cfg.page_size), Some(a.class_count() as u8 - 1));
        assert_eq!(a.class_for(a.cfg.page_size + 1), None);
    }

    #[test]
    fn alloc_and_free_roundtrip() {
        let a = small_arena();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let h = a.alloc_from(&mut ctx, &p, 0).unwrap().expect("first alloc");
        let free_after = a.free_chunks(&mut ctx, 0).unwrap();
        assert_eq!(free_after, a.class(0).chunks_per_page as u64 - 1);
        a.free(&mut ctx, h).unwrap();
        assert_eq!(
            a.free_chunks(&mut ctx, 0).unwrap(),
            a.class(0).chunks_per_page as u64
        );
        // Chunk comes back SLABBED.
        let it = a.resolve(h);
        assert_ne!(it.flags(&mut ctx).unwrap() & ITEM_SLABBED, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let a = small_arena();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        // Last class takes a whole page per chunk: 8 pages then dry.
        let big = a.class_count() as u8 - 1;
        let mut got = 0;
        while a.alloc_from(&mut ctx, &p, big).unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, 8);
        assert!(a.alloc_from(&mut ctx, &p, 0).unwrap().is_none(), "pool shared");
    }

    #[test]
    fn handles_are_distinct_and_resolvable() {
        let a = small_arena();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let h = a.alloc_from(&mut ctx, &p, 0).unwrap().unwrap();
            assert!(seen.insert(h.to_word()), "duplicate chunk handed out");
            let it = a.resolve(h);
            it.set_cas(&mut ctx, h.to_word()).unwrap();
        }
    }

    #[test]
    fn rebalance_moves_a_free_page() {
        let a = small_arena();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        // Give class 0 one page by allocating once, then free it back.
        let h = a.alloc_from(&mut ctx, &p, 0).unwrap().unwrap();
        a.free(&mut ctx, h).unwrap();
        let donor_free = a.free_chunks(&mut ctx, 0).unwrap();
        assert_eq!(donor_free, a.class(0).chunks_per_page as u64);
        let moved = a.rebalance_step(&mut ctx, &p, 0, 2).unwrap();
        assert!(moved);
        assert_eq!(a.free_chunks(&mut ctx, 0).unwrap(), 0);
        assert_eq!(
            a.free_chunks(&mut ctx, 2).unwrap(),
            a.class(2).chunks_per_page as u64
        );
        // And the receiver can allocate from the moved page.
        assert!(a.alloc_from(&mut ctx, &p, 2).unwrap().is_some());
    }

    #[test]
    fn rebalance_skips_partial_pages() {
        let a = small_arena();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let _held = a.alloc_from(&mut ctx, &p, 0).unwrap().unwrap();
        // Page is not fully free: no move.
        assert!(!a.rebalance_step(&mut ctx, &p, 0, 2).unwrap());
    }

    #[test]
    fn pick_donor_prefers_most_free() {
        let a = small_arena();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        assert_eq!(a.pick_donor(&mut ctx).unwrap(), None);
        let h = a.alloc_from(&mut ctx, &p, 1).unwrap().unwrap();
        a.free(&mut ctx, h).unwrap();
        assert_eq!(a.pick_donor(&mut ctx).unwrap(), Some(1));
    }
}
