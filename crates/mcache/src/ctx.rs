//! [`Ctx`]: the execution context a critical section runs under.
//!
//! Every piece of cache logic is written once, generic over how it touches
//! shared memory — under a held lock (direct access), inside an atomic
//! transaction, or inside a relaxed transaction. The context also carries
//! the paper's serialization sites: [`Ctx::unsafe_op`] is a call into
//! uninstrumented code (forcing an in-flight switch in a relaxed
//! transaction), and [`Ctx::defer_or_run`] is the onCommit-handler pattern
//! of §3.5, including the "check whether we are in a transaction" test the
//! paper had to expose from GCC's runtime.

use tm::{Abort, AtomicTx, RelaxedTx, TBytes, TWord, Transaction};
use tmstd::ByteAccess;

use crate::policy::{Category, Policy};

/// How the current critical section touches shared memory.
#[derive(Debug)]
pub enum Ctx<'a, 'e> {
    /// Locks are held (baseline branches, or IP-privatized item data):
    /// uninstrumented access.
    Direct,
    /// Inside a `__transaction_atomic` block.
    Atomic(&'a mut AtomicTx<'e>),
    /// Inside a `__transaction_relaxed` block.
    Relaxed(&'a mut RelaxedTx<'e>),
}

impl<'a, 'e> Ctx<'a, 'e> {
    /// Whether the section is running inside a transaction (GCC's
    /// `_ITM_inTransaction`, which the paper "made visible to the
    /// program").
    pub fn in_transaction(&self) -> bool {
        !matches!(self, Ctx::Direct)
    }

    /// Performs an *unsafe operation*: runs `f` uninstrumented. Under a
    /// relaxed transaction this forces the in-flight switch to
    /// serial-irrevocable mode; under direct access it just runs.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if the in-flight switch fails validation.
    ///
    /// # Panics
    ///
    /// Panics inside an atomic transaction: the branch policy must never
    /// route an unsafe operation into an atomic section (this is the
    /// type-level analogue of a `transaction_safe` violation, which GCC
    /// reports at compile time).
    pub fn unsafe_op<R>(&mut self, f: impl FnOnce() -> R) -> Result<R, Abort> {
        match self {
            Ctx::Direct => Ok(f()),
            Ctx::Relaxed(tx) => tx.unsafe_op(f),
            Ctx::Atomic(_) => panic!(
                "unsafe operation reached an atomic transaction: branch \
                 policy bug (would be a compile error under GCC)"
            ),
        }
    }

    /// The §3.5 pattern: defer `f` to an onCommit handler when inside a
    /// transaction, or run it immediately otherwise.
    pub fn defer_or_run(&mut self, f: impl FnOnce() + 'e) {
        match self {
            Ctx::Direct => f(),
            Ctx::Atomic(tx) => tx.on_commit(f),
            Ctx::Relaxed(tx) => tx.on_commit(f),
        }
    }

    /// Reads a maintenance flag that memcached declares `volatile`.
    /// Unsafe until [`crate::Stage::Max`] re-declares it transactional.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict or failed switch.
    pub fn volatile_read(&mut self, policy: &Policy, w: &'e TWord) -> Result<u64, Abort> {
        if !self.in_transaction() || policy.is_safe(Category::VolatileFlag) {
            self.get_word(w)
        } else {
            self.unsafe_op(|| w.load_direct())
        }
    }

    /// Writes a `volatile` maintenance flag; see [`Ctx::volatile_read`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict or failed switch.
    pub fn volatile_write(&mut self, policy: &Policy, w: &'e TWord, v: u64) -> Result<(), Abort> {
        if !self.in_transaction() || policy.is_safe(Category::VolatileFlag) {
            self.put_word(w, v)
        } else {
            self.unsafe_op(|| w.store_direct(v))
        }
    }

    /// A `lock incr`-style reference-count adjustment (delta is signed via
    /// wrapping arithmetic). Returns the previous value. Unsafe until
    /// [`crate::Stage::Max`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] on conflict or failed switch.
    pub fn refcount_add(
        &mut self,
        policy: &Policy,
        w: &'e TWord,
        delta: u64,
    ) -> Result<u64, Abort> {
        if !self.in_transaction() || policy.is_safe(Category::RefcountRmw) {
            match self {
                // Privatized / lock-held data keeps the real fetch-add: the
                // x86 `lock incr` memcached uses.
                Ctx::Direct => Ok(w.fetch_add_direct(delta)),
                _ => {
                    let old = self.get_word(w)?;
                    self.put_word(w, old.wrapping_add(delta))?;
                    Ok(old)
                }
            }
        } else {
            self.unsafe_op(|| w.fetch_add_direct(delta))
        }
    }

    /// Read-modify-write add on a word. Direct contexts use a real atomic
    /// fetch-add (memcached bumps its CAS id outside any single lock);
    /// transactional contexts use an instrumented read/write pair.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    pub fn fetch_add_word(&mut self, w: &'e TWord, delta: u64) -> Result<u64, Abort> {
        match self {
            Ctx::Direct => Ok(w.fetch_add_direct(delta)),
            _ => {
                let old = self.get_word(w)?;
                self.put_word(w, old.wrapping_add(delta))?;
                Ok(old)
            }
        }
    }

    /// memcached's `assert`: evaluates the condition inline; the
    /// terminating branch is the unsafe part and never runs in a correct
    /// execution. From [`crate::Stage::OnCommit`] the terminator is a
    /// `transaction_pure` wrapper (§3.5: safe because the program ends and
    /// no `atexit` observer can see partial state).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if the failing path forces a switch that fails.
    ///
    /// # Panics
    ///
    /// Panics (terminates) when `cond` is false.
    pub fn assert_that(
        &mut self,
        policy: &Policy,
        cond: bool,
        msg: &'static str,
    ) -> Result<(), Abort> {
        if cond {
            return Ok(());
        }
        if !self.in_transaction() || policy.is_safe(Category::AssertAbort) {
            tmstd::pure(|| panic!("assertion failed: {msg}"))
        } else {
            self.unsafe_op(|| panic!("assertion failed: {msg}"))?;
            unreachable!()
        }
    }
}

impl<'e> ByteAccess<'e> for Ctx<'_, 'e> {
    fn get(&mut self, b: &'e TBytes, i: usize) -> Result<u8, Abort> {
        match self {
            Ctx::Direct => Ok(b.load_byte_direct(i)),
            Ctx::Atomic(tx) => tx.read_byte(b, i),
            Ctx::Relaxed(tx) => tx.read_byte(b, i),
        }
    }

    fn put(&mut self, b: &'e TBytes, i: usize, v: u8) -> Result<(), Abort> {
        match self {
            Ctx::Direct => {
                b.store_byte_direct(i, v);
                Ok(())
            }
            Ctx::Atomic(tx) => tx.write_byte(b, i, v),
            Ctx::Relaxed(tx) => tx.write_byte(b, i, v),
        }
    }

    fn get_range(&mut self, b: &'e TBytes, off: usize, dst: &mut [u8]) -> Result<(), Abort> {
        match self {
            Ctx::Direct => {
                b.load_slice_direct(off, dst);
                Ok(())
            }
            Ctx::Atomic(tx) => tx.read_bytes(b, off, dst),
            Ctx::Relaxed(tx) => tx.read_bytes(b, off, dst),
        }
    }

    fn put_range(&mut self, b: &'e TBytes, off: usize, src: &[u8]) -> Result<(), Abort> {
        match self {
            Ctx::Direct => {
                b.store_slice_direct(off, src);
                Ok(())
            }
            Ctx::Atomic(tx) => tx.write_bytes(b, off, src),
            Ctx::Relaxed(tx) => tx.write_bytes(b, off, src),
        }
    }

    fn get_word(&mut self, w: &'e TWord) -> Result<u64, Abort> {
        match self {
            Ctx::Direct => Ok(w.load_direct()),
            Ctx::Atomic(tx) => tx.read_word(w),
            Ctx::Relaxed(tx) => tx.read_word(w),
        }
    }

    fn put_word(&mut self, w: &'e TWord, v: u64) -> Result<(), Abort> {
        match self {
            Ctx::Direct => {
                w.store_direct(v);
                Ok(())
            }
            Ctx::Atomic(tx) => tx.write_word(w, v),
            Ctx::Relaxed(tx) => tx.write_word(w, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Branch, Stage};
    use tm::{RelaxedPlan, TCell, TmRuntime};

    #[test]
    fn direct_ctx_word_ops() {
        let w = TWord::new(5);
        let mut ctx = Ctx::Direct;
        assert_eq!(ctx.get_word(&w).unwrap(), 5);
        ctx.put_word(&w, 9).unwrap();
        assert_eq!(w.load_direct(), 9);
        assert!(!ctx.in_transaction());
    }

    #[test]
    fn volatile_read_serializes_pre_max() {
        let rt = TmRuntime::default_runtime();
        let flag = TCell::new(1u64);
        let policy = Branch::It(Stage::Plain).policy();
        let v = rt.relaxed(RelaxedPlan::new(), |tx| {
            let mut ctx = Ctx::Relaxed(tx);
            ctx.volatile_read(&policy, flag.word())
        });
        assert_eq!(v, 1);
        assert_eq!(rt.stats().in_flight_switch, 1, "volatile must serialize pre-Max");
    }

    #[test]
    fn volatile_read_is_safe_at_max() {
        let rt = TmRuntime::default_runtime();
        let flag = TCell::new(1u64);
        let policy = Branch::It(Stage::Max).policy();
        rt.relaxed(RelaxedPlan::new(), |tx| {
            let mut ctx = Ctx::Relaxed(tx);
            ctx.volatile_read(&policy, flag.word())
        });
        assert_eq!(rt.stats().in_flight_switch, 0);
    }

    #[test]
    fn refcount_safe_at_max_is_transactional() {
        let rt = TmRuntime::default_runtime();
        let rc = TCell::new(2u64);
        let policy = Branch::It(Stage::Max).policy();
        let old = rt.atomic(|tx| {
            let mut ctx = Ctx::Atomic(tx);
            ctx.refcount_add(&policy, rc.word(), 1)
        });
        assert_eq!(old, 2);
        assert_eq!(rc.load_direct(), 3);
    }

    #[test]
    #[should_panic(expected = "branch policy bug")]
    fn unsafe_op_in_atomic_panics() {
        let rt = TmRuntime::default_runtime();
        rt.atomic(|tx| {
            let mut ctx = Ctx::Atomic(tx);
            ctx.unsafe_op(|| ()).map(|_| ())
        });
    }

    #[test]
    fn defer_or_run_defers_in_tx() {
        let rt = TmRuntime::default_runtime();
        let hits = std::sync::atomic::AtomicU32::new(0);
        rt.atomic(|tx| {
            let mut ctx = Ctx::Atomic(tx);
            ctx.defer_or_run(|| {
                hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 0);
            Ok(())
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1);
        let mut d = Ctx::Direct;
        d.defer_or_run(|| {
            hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn assert_that_passes_quietly() {
        let policy = Branch::It(Stage::OnCommit).policy();
        let mut ctx = Ctx::Direct;
        ctx.assert_that(&policy, true, "fine").unwrap();
    }

    #[test]
    #[should_panic(expected = "assertion failed: boom")]
    fn assert_that_terminates() {
        let policy = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let _ = ctx.assert_that(&policy, false, "boom");
    }
}
