//! `items.c` logic: allocation with LRU eviction, link/unlink, get,
//! arithmetic — composed from the slab arena, hash table, and LRU lists,
//! and generic over the execution context so every branch shares one
//! implementation.

use tm::{Abort, TCell};
use tmstd::ByteAccess;

use crate::assoc::AssocTable;
use crate::ctx::Ctx;
use crate::item::{ItemHandle, ItemSizes, ITEM_FETCHED, ITEM_LINKED};
use crate::lru::LruList;
use crate::policy::{Category, ItemMode, Policy};
use crate::slabs::{SlabArena, SlabConfig};
use crate::stats::GlobalStats;

use lockprof::{ProfiledGuard, ProfiledMutex, Profiler};

/// Striped item locks, in both physical forms: real mutexes for the
/// lock-based branches, transactional booleans for IP (§3.1: "we could
/// make the lock acquire and release into mini-transactions on a
/// boolean"). IT has neither — its item critical sections are
/// transactions.
pub struct ItemLocks {
    mutexes: Vec<ProfiledMutex<()>>,
    cells: Vec<TCell<bool>>,
    mask: u32,
}

impl std::fmt::Debug for ItemLocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ItemLocks")
            .field("stripes", &self.cells.len())
            .finish()
    }
}

/// A held victim item lock during eviction (Figure 1a's `tm_trylock`).
#[derive(Debug)]
pub enum VictimLock<'a> {
    /// Lock-branch mutex guard.
    Mutex(ProfiledGuard<'a, ()>),
    /// IP: the boolean was CASed true inside the current transaction and
    /// must be written false before the transaction ends.
    TxBool(usize),
    /// IT, or the victim shares the stripe we already hold.
    None,
}

impl ItemLocks {
    /// Creates `2^power` stripes.
    pub fn new(power: u32, profiler: &Profiler) -> Self {
        let n = 1usize << power;
        ItemLocks {
            mutexes: (0..n)
                .map(|i| ProfiledMutex::new(&format!("item_lock[{i}]"), (), profiler))
                .collect(),
            cells: (0..n).map(|_| TCell::new(false)).collect(),
            mask: n as u32 - 1,
        }
    }

    /// The stripe index for a key hash.
    pub fn stripe(&self, hv: u32) -> usize {
        (hv & self.mask) as usize
    }

    /// The lock-branch mutex for a stripe.
    pub fn mutex(&self, stripe: usize) -> &ProfiledMutex<()> {
        &self.mutexes[stripe]
    }

    /// The IP-branch boolean for a stripe.
    pub fn cell(&self, stripe: usize) -> &TCell<bool> {
        &self.cells[stripe]
    }

    /// Attempts to take a *victim's* stripe while other locks are held —
    /// the lock-order violation memcached performs with `trylock` (§3.1).
    /// `held` is the stripe the calling worker already owns (or
    /// `usize::MAX` for maintenance threads that hold none).
    pub fn try_lock_victim<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        stripe: usize,
        held: usize,
    ) -> Result<Option<VictimLock<'e>>, Abort> {
        match policy.item_mode {
            ItemMode::Transactional => Ok(Some(VictimLock::None)),
            ItemMode::Lock => {
                if stripe == held {
                    return Ok(Some(VictimLock::None));
                }
                Ok(self.mutexes[stripe].try_lock().map(VictimLock::Mutex))
            }
            ItemMode::Privatize => {
                if stripe == held {
                    return Ok(Some(VictimLock::None));
                }
                let cell = &self.cells[stripe];
                if ctx.get_word(cell.word())? != 0 {
                    return Ok(None); // held by someone: skip this victim
                }
                ctx.put_word(cell.word(), 1)?;
                Ok(Some(VictimLock::TxBool(stripe)))
            }
        }
    }

    /// Releases a victim lock taken by [`ItemLocks::try_lock_victim`].
    pub fn unlock_victim<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        guard: VictimLock<'e>,
    ) -> Result<(), Abort> {
        match guard {
            VictimLock::Mutex(g) => drop(g),
            VictimLock::TxBool(stripe) => ctx.put_word(self.cells[stripe].word(), 0)?,
            VictimLock::None => {}
        }
        Ok(())
    }
}

/// A successful `get`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetHit {
    /// The item found.
    pub handle: ItemHandle,
    /// A copy of the value.
    pub value: Vec<u8>,
    /// Client flags stored with the item.
    pub flags: u32,
    /// The item's CAS id.
    pub cas: u64,
    /// Relative expiry (0 = never) — carried so hot-key repopulation can
    /// preserve the TTL.
    pub exp: u32,
    /// Whether the LRU position is stale enough to bump.
    pub needs_bump: bool,
}

/// Why an allocation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The object exceeds the largest chunk (`SERVER_ERROR object too
    /// large for cache`).
    TooLarge,
    /// Memory exhausted and no evictable victim was found.
    OutOfMemory,
}

/// A successful allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Allocation {
    /// The freshly initialized (still private) item.
    pub handle: ItemHandle,
    /// How many items were evicted on the way.
    pub evicted: u32,
}

/// The shared cache state and its single-source operation logic.
pub struct CacheCore {
    /// Slab arena.
    pub arena: SlabArena,
    /// Hash table.
    pub assoc: AssocTable,
    /// One LRU list per slab class.
    pub lrus: Vec<LruList>,
    /// Striped item locks.
    pub item_locks: ItemLocks,
    /// `stats_lock`-guarded counters.
    pub global: GlobalStats,
    cas_counter: TCell<u64>,
    /// `flush_all` watermark: items last touched at or before this die.
    pub oldest_live: TCell<u64>,
    /// Write-nonce for the durability log: operations whose engine commit
    /// would otherwise be fully read-only (an elided silent touch) bump
    /// this so the commit mints a fresh stamp for its redo record.
    pub dur_nonce: TCell<u64>,
}

impl std::fmt::Debug for CacheCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheCore")
            .field("arena", &self.arena)
            .field("assoc", &self.assoc)
            .finish_non_exhaustive()
    }
}

/// How many LRU tail candidates an allocation will consider before giving
/// up (memcached tries 50; scaled to our smaller LRUs).
const EVICTION_TRIES: usize = 10;

impl CacheCore {
    /// Builds the core from slab geometry and hash-table powers.
    pub fn new(
        slab_cfg: SlabConfig,
        hash_power: u32,
        hash_power_max: u32,
        item_lock_power: u32,
        profiler: &Profiler,
    ) -> Self {
        let arena = SlabArena::new(slab_cfg);
        let lrus = (0..arena.class_count()).map(|_| LruList::new()).collect();
        CacheCore {
            assoc: AssocTable::new(hash_power, hash_power_max),
            lrus,
            item_locks: ItemLocks::new(item_lock_power, profiler),
            global: GlobalStats::default(),
            cas_counter: TCell::new(0),
            oldest_live: TCell::new(0),
            dur_nonce: TCell::new(0),
            arena,
        }
    }

    /// Raises the CAS allocator to at least `floor`. Recovery calls this
    /// before replaying logged items so every post-restart CAS id is
    /// strictly above any id a pre-crash client observed.
    pub fn set_cas_floor<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, floor: u64) -> Result<(), Abort> {
        let cur = ctx.get_word(self.cas_counter.word())?;
        if cur < floor {
            ctx.put_word(self.cas_counter.word(), floor)?;
        }
        Ok(())
    }

    /// Whether the item is still alive at `now` (expiry + `flush_all`).
    fn is_live<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        h: ItemHandle,
        now: u32,
    ) -> Result<bool, Abort> {
        let it = self.arena.resolve(h);
        let (exp, last) = it.times(ctx)?;
        if exp != 0 && exp <= now {
            return Ok(false);
        }
        let watermark = ctx.get_word(self.oldest_live.word())?;
        Ok(watermark == 0 || last as u64 > watermark)
    }

    #[allow(clippy::too_many_arguments)]
    /// `do_item_get`: find, expiry-check, take a reference, copy the value
    /// out, release. `bump_hint` models the 60-second `item_update`
    /// rate-limit (the driver derives it from its op counter; wall-clock
    /// seconds barely advance in a benchmark run).
    ///
    /// `elide_refcount` is the §5 future-work optimization the paper
    /// credits to transactionalization ("it might be possible to replace
    /// the modifications of the reference count with a simple read",
    /// citing Dragojević et al.): inside a transaction the whole get is
    /// atomic, so the incr/decr pair can become a plain read. Only valid
    /// when item access is fully transactional (IT branches).
    pub fn item_get<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        key: &[u8],
        hv: u32,
        now: u32,
        bump_hint: bool,
        elide_refcount: bool,
    ) -> Result<Option<GetHit>, Abort> {
        let Some(h) = self.assoc.find(ctx, policy, &self.arena, key, hv)? else {
            return Ok(None);
        };
        if !self.is_live(ctx, h, now)? {
            // Lazy expiry: unlink now.
            self.unlink_item(ctx, policy, h, hv)?;
            return Ok(None);
        }
        let it = self.arena.resolve(h);
        if elide_refcount {
            let rc = it.refcount(ctx, policy)?;
            // The read still participates in conflict detection, which is
            // exactly what makes the elision sound under TM.
            ctx.assert_that(policy, rc != u64::MAX, "impossible refcount")?;
        } else {
            let rc = it.ref_incr(ctx, policy)?;
            ctx.assert_that(policy, rc >= 1, "get raised refcount from garbage")?;
        }
        // Set-if-unset: a steady-state hit has ITEM_FETCHED already, and
        // skipping the redundant store keeps a refcount-elided GET free of
        // writes — i.e. on the read-only fast lane end to end.
        if it.flags(ctx)? & ITEM_FETCHED == 0 {
            it.update_flags(ctx, ITEM_FETCHED, 0)?;
        }
        let sizes = it.sizes(ctx)?;
        let value = it.read_value(ctx, policy, sizes)?;
        let flags = it.client_flags(ctx)?;
        let cas = it.cas(ctx)?;
        let (exp, _) = it.times(ctx)?;
        if !elide_refcount {
            self.item_release(ctx, policy, h)?;
        }
        Ok(Some(GetHit {
            handle: h,
            value,
            flags,
            cas,
            exp,
            needs_bump: bump_hint,
        }))
    }

    /// Releases one reference; frees the chunk when the item is dead
    /// (`do_item_remove`).
    pub fn item_release<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        h: ItemHandle,
    ) -> Result<(), Abort> {
        let it = self.arena.resolve(h);
        let rc = it.ref_decr(ctx, policy)?;
        if rc == 0 && it.flags(ctx)? & ITEM_LINKED == 0 {
            self.arena.free(ctx, h)?;
        }
        Ok(())
    }

    /// `do_item_unlink`: drop from hash table and LRU; free if unreferenced.
    pub fn unlink_item<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        h: ItemHandle,
        hv: u32,
    ) -> Result<(), Abort> {
        let it = self.arena.resolve(h);
        if it.flags(ctx)? & ITEM_LINKED == 0 {
            return Ok(());
        }
        it.update_flags(ctx, 0, ITEM_LINKED)?;
        self.assoc.remove(ctx, policy, &self.arena, h, hv)?;
        self.lrus[h.class as usize].unlink(ctx, &self.arena, h)?;
        let cur = ctx.get_word(self.global.curr_items.word())?;
        ctx.put_word(self.global.curr_items.word(), cur.saturating_sub(1))?;
        if it.refcount(ctx, policy)? == 0 {
            self.arena.free(ctx, h)?;
        }
        Ok(())
    }

    /// `do_item_alloc`: pick a class, allocate (evicting from the class's
    /// LRU tail if the pool is dry), and initialize the header, key, and
    /// suffix. The returned item is private (refcount 1, unlinked) until
    /// [`CacheCore::link_item`]. `held_stripe` is the item-lock stripe the
    /// caller owns (for the trylock lock-order violation on victims).
    #[allow(clippy::too_many_arguments)]
    pub fn alloc_item<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        key: &[u8],
        client_flags: u32,
        exptime: u32,
        nbytes: u32,
        now: u32,
        held_stripe: usize,
    ) -> Result<Result<Allocation, AllocError>, Abort> {
        let Some((sizes, class)) = self.size_item(key, client_flags, nbytes) else {
            return Ok(Err(AllocError::TooLarge));
        };
        let mut evicted = 0u32;
        let handle = loop {
            if let Some(h) = self.arena.alloc_from(ctx, policy, class)? {
                break h;
            }
            if evicted as usize >= EVICTION_TRIES
                || !self.evict_one(ctx, policy, class, held_stripe)?
            {
                // Ask the rebalancer for a page (raise the volatile signal
                // and record the starving class) before failing the store.
                ctx.put_word(self.arena.needy_class.word(), class as u64)?;
                ctx.volatile_write(policy, self.arena.rebalance_signal.word(), 1)?;
                return Ok(Err(AllocError::OutOfMemory));
            }
            evicted += 1;
        };
        if evicted > 0 {
            // Eviction pressure: same request, softer form.
            ctx.put_word(self.arena.needy_class.word(), class as u64)?;
            ctx.volatile_write(policy, self.arena.rebalance_signal.word(), 1)?;
        }
        self.init_item(ctx, policy, handle, key, client_flags, exptime, sizes, now)?;
        Ok(Ok(Allocation { handle, evicted }))
    }

    /// Sizing half of `do_item_alloc` (memcached's `item_make_header`):
    /// the suffix is rendered to find its length, then the smallest
    /// fitting class is picked. `None` means the object exceeds the
    /// largest chunk.
    pub fn size_item(
        &self,
        key: &[u8],
        client_flags: u32,
        nbytes: u32,
    ) -> Option<(ItemSizes, u8)> {
        let nsuffix = tmstd::item_suffix_len(client_flags, nbytes) as u8;
        let sizes = ItemSizes {
            nkey: key.len() as u8,
            nsuffix,
            nbytes,
        };
        self.arena.class_for(sizes.total()).map(|class| (sizes, class))
    }

    /// Initialization half of `do_item_alloc`: header, key, and suffix of
    /// a freshly allocated, still-private chunk (refcount 1, unlinked).
    /// The magazine store path calls this directly on a cached chunk,
    /// skipping the slab transaction entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn init_item<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        handle: ItemHandle,
        key: &[u8],
        client_flags: u32,
        exptime: u32,
        sizes: ItemSizes,
        now: u32,
    ) -> Result<(), Abort> {
        let it = self.arena.resolve(handle);
        it.set_refcount(ctx, 1)?;
        it.set_flags(ctx, (handle.class as u64) << 8)?;
        it.set_times(ctx, exptime, now)?;
        it.set_sizes(ctx, sizes)?;
        it.set_cas(ctx, 0)?;
        it.set_client_flags(ctx, client_flags)?;
        it.write_key(ctx, key)?;
        it.write_suffix(ctx, policy, sizes, client_flags)
    }

    /// Magazine refill: pop up to `n` chunks of `class` in one call —
    /// meant to run inside ONE short transaction — evicting from the
    /// class's LRU when the pool runs dry. Eviction write-backs thereby
    /// batch into the refill instead of costing one slab transaction per
    /// SET. Returns `(chunks_popped, items_evicted)`; zero chunks means
    /// the pool is exhausted and nothing was evictable (the caller
    /// flushes magazines and/or raises the rebalance signal).
    pub fn refill_batch<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        class: u8,
        n: usize,
        out: &mut Vec<ItemHandle>,
    ) -> Result<(usize, usize), Abort> {
        let mut got = 0usize;
        let mut evicted = 0usize;
        while got < n {
            got += self.arena.alloc_batch(ctx, policy, class, n - got, out)?;
            if got >= n {
                break;
            }
            if evicted >= EVICTION_TRIES || !self.evict_one(ctx, policy, class, usize::MAX)? {
                break;
            }
            evicted += 1;
        }
        Ok((got, evicted))
    }

    /// Evicts one unreferenced item from the class's LRU tail, honoring
    /// the victim's item lock via `trylock` (Figure 1a). Returns whether a
    /// chunk was freed.
    fn evict_one<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        class: u8,
        held_stripe: usize,
    ) -> Result<bool, Abort> {
        let lru = &self.lrus[class as usize];
        let mut cur = lru.tail(ctx)?;
        for _ in 0..EVICTION_TRIES {
            let Some(h) = cur else { return Ok(false) };
            let it = self.arena.resolve(h);
            let prev = it.lru_prev(ctx)?;
            if it.refcount(ctx, policy)? == 0 {
                let sizes = it.sizes(ctx)?;
                let key = it.read_key(ctx, sizes.nkey)?;
                let hv = crate::hashes::jenkins_hash(&key, 0);
                let stripe = self.item_locks.stripe(hv);
                match self
                    .item_locks
                    .try_lock_victim(ctx, policy, stripe, held_stripe)?
                {
                    Some(guard) => {
                        self.unlink_item(ctx, policy, h, hv)?;
                        let ev = ctx.get_word(self.global.evictions.word())?;
                        ctx.put_word(self.global.evictions.word(), ev + 1)?;
                        self.item_locks.unlock_victim(ctx, guard)?;
                        return Ok(true);
                    }
                    None => {
                        // Figure 1a's save_for_later path: skip the busy
                        // victim and try the next-oldest.
                    }
                }
            }
            cur = prev;
        }
        Ok(false)
    }

    /// `do_item_link`: publish a private item under `key`'s hash. Returns
    /// `true` when this insert crossed the load factor and an expansion
    /// was started (the caller signals the maintenance thread).
    pub fn link_item<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        h: ItemHandle,
        hv: u32,
    ) -> Result<bool, Abort> {
        let it = self.arena.resolve(h);
        it.update_flags(ctx, ITEM_LINKED, 0)?;
        let cas = ctx.fetch_add_word(self.cas_counter.word(), 1)? + 1;
        it.set_cas(ctx, cas)?;
        let wants_expansion = self.assoc.insert(ctx, policy, &self.arena, h, hv)?;
        self.lrus[h.class as usize].link_head(ctx, &self.arena, h)?;
        let cur = ctx.get_word(self.global.curr_items.word())?;
        ctx.put_word(self.global.curr_items.word(), cur + 1)?;
        let tot = ctx.get_word(self.global.total_items.word())?;
        ctx.put_word(self.global.total_items.word(), tot + 1)?;
        if wants_expansion {
            // May be a no-op at maximum size; the maintainer still gets
            // woken (and finds nothing to do), as in Figure 2.
            self.assoc.start_expansion(ctx, policy)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Replaces any existing item under `key` with `new_h` (the second
    /// half of `do_store_item` for `set`).
    pub fn replace_existing<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        key: &[u8],
        hv: u32,
        new_h: ItemHandle,
    ) -> Result<bool, Abort> {
        if let Some(old) = self.assoc.find(ctx, policy, &self.arena, key, hv)? {
            if old != new_h {
                self.unlink_item(ctx, policy, old, hv)?;
            }
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// `do_item_update`: re-position in the LRU and refresh last-access.
    pub fn update_item<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        h: ItemHandle,
        now: u32,
    ) -> Result<(), Abort> {
        let it = self.arena.resolve(h);
        if it.flags(ctx)? & ITEM_LINKED == 0 {
            return Ok(()); // raced with an unlink; nothing to do
        }
        let _ = policy;
        self.lrus[h.class as usize].bump(ctx, &self.arena, h)?;
        let (exp, _) = it.times(ctx)?;
        it.set_times(ctx, exp, now)
    }

    #[allow(clippy::too_many_arguments)]
    /// `do_add_delta`: parse the stored decimal value (libc `strtoull`
    /// until Lib), apply the delta, and rewrite in place (libc `snprintf`
    /// until Lib). `None` = key missing; `Err(())` in the inner result =
    /// the stored value is not a number; `Ok((new, cas))` carries the new
    /// value and the CAS id this rewrite assigned (for the redo log).
    pub fn arith<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        key: &[u8],
        hv: u32,
        delta: u64,
        incr: bool,
        now: u32,
    ) -> Result<Option<Result<(u64, u64), ()>>, Abort> {
        let Some(h) = self.assoc.find(ctx, policy, &self.arena, key, hv)? else {
            return Ok(None);
        };
        if !self.is_live(ctx, h, now)? {
            self.unlink_item(ctx, policy, h, hv)?;
            return Ok(None);
        }
        let it = self.arena.resolve(h);
        let mut sizes = it.sizes(ctx)?;
        let voff = it.value_off(sizes);
        let n = sizes.nbytes as usize;
        // memcached's safe_strtoull: the whole value must be a number,
        // modulo surrounding whitespace.
        let marshal = |buf: &[u8]| -> Option<u64> {
            let (v, used) = tmstd::parse_u64(buf)?;
            buf[used..]
                .iter()
                .all(|&b| b == 0 || tmstd::isspace(b))
                .then_some(v)
        };
        let parsed = if n > 40 {
            None // not a plausible decimal; memcached fails the parse
        } else if !ctx.in_transaction() || policy.is_safe(Category::Libc) {
            let mut buf = vec![0u8; n];
            tmstd::memcpy_to_slice(ctx, it.page, voff, &mut buf)?;
            tmstd::pure(|| marshal(&buf))
        } else {
            let page = it.page;
            ctx.unsafe_op(move || {
                let mut buf = vec![0u8; n];
                page.load_slice_direct(voff, &mut buf);
                marshal(&buf)
            })?
        };
        let Some(old) = parsed else {
            return Ok(Some(Err(())));
        };
        let new = if incr {
            old.wrapping_add(delta)
        } else {
            old.saturating_sub(delta)
        };
        let text = tmstd::pure(|| new.to_string().into_bytes());
        let capacity = self.arena.class(h.class).chunk_size
            - crate::item::HDR_BYTES
            - sizes.nkey as usize
            - sizes.nsuffix as usize;
        if text.len() > capacity {
            return Ok(Some(Err(())));
        }
        if !ctx.in_transaction() || policy.is_safe(Category::Libc) {
            tmstd::memcpy_from_slice(ctx, it.page, voff, &text)?;
        } else {
            let page = it.page;
            let t = text.clone();
            ctx.unsafe_op(move || page.store_slice_direct(voff, &t))?;
        }
        sizes.nbytes = text.len() as u32;
        it.set_sizes(ctx, sizes)?;
        let cas = ctx.fetch_add_word(self.cas_counter.word(), 1)? + 1;
        it.set_cas(ctx, cas)?;
        Ok(Some(Ok((new, cas))))
    }

    /// `flush_all`: everything last touched at or before `now` dies
    /// lazily.
    pub fn flush_all<'e>(&'e self, ctx: &mut Ctx<'_, 'e>, now: u32) -> Result<(), Abort> {
        ctx.put_word(self.oldest_live.word(), now as u64)?;
        let f = ctx.get_word(self.global.flush_cmds.word())?;
        ctx.put_word(self.global.flush_cmds.word(), f + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Branch;

    fn core() -> CacheCore {
        CacheCore::new(
            SlabConfig {
                mem_limit: 256 << 10,
                page_size: 16 << 10,
                chunk_min: 96,
                growth_factor: 1.5,
            },
            6,
            10,
            4,
            &Profiler::new(),
        )
    }

    fn set(
        core: &CacheCore,
        policy: &Policy,
        key: &[u8],
        value: &[u8],
        exptime: u32,
        now: u32,
    ) -> ItemHandle {
        let mut ctx = Ctx::Direct;
        let hv = crate::hashes::jenkins_hash(key, 0);
        let a = core
            .alloc_item(&mut ctx, policy, key, 0, exptime, value.len() as u32, now, usize::MAX)
            .unwrap()
            .unwrap();
        let it = core.arena.resolve(a.handle);
        let sizes = it.sizes(&mut ctx).unwrap();
        it.write_value(&mut ctx, policy, sizes, value).unwrap();
        core.replace_existing(&mut ctx, policy, key, hv, a.handle)
            .unwrap();
        core.link_item(&mut ctx, policy, a.handle, hv).unwrap();
        core.item_release(&mut ctx, policy, a.handle).unwrap();
        a.handle
    }

    fn get(core: &CacheCore, policy: &Policy, key: &[u8], now: u32) -> Option<Vec<u8>> {
        let mut ctx = Ctx::Direct;
        let hv = crate::hashes::jenkins_hash(key, 0);
        core.item_get(&mut ctx, policy, key, hv, now, false, false)
            .unwrap()
            .map(|h| h.value)
    }

    #[test]
    fn set_get_roundtrip() {
        let c = core();
        let p = Branch::Baseline.policy();
        set(&c, &p, b"hello", b"world", 0, 1);
        assert_eq!(get(&c, &p, b"hello", 1), Some(b"world".to_vec()));
        assert_eq!(get(&c, &p, b"missing", 1), None);
    }

    #[test]
    fn overwrite_replaces_value_and_bumps_cas() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        set(&c, &p, b"k", b"v1", 0, 1);
        let hv = crate::hashes::jenkins_hash(b"k", 0);
        let cas1 = c
            .item_get(&mut ctx, &p, b"k", hv, 1, false, false)
            .unwrap()
            .unwrap()
            .cas;
        set(&c, &p, b"k", b"v2-longer", 0, 2);
        let hit = c.item_get(&mut ctx, &p, b"k", hv, 2, false, false).unwrap().unwrap();
        assert_eq!(hit.value, b"v2-longer");
        assert!(hit.cas > cas1);
        assert_eq!(c.global.snapshot_direct().curr_items, 1);
    }

    #[test]
    fn expiry_is_lazy_but_effective() {
        let c = core();
        let p = Branch::Baseline.policy();
        set(&c, &p, b"ttl", b"v", 5, 1);
        assert!(get(&c, &p, b"ttl", 4).is_some());
        assert!(get(&c, &p, b"ttl", 5).is_none(), "expired at its exptime");
        assert!(get(&c, &p, b"ttl", 6).is_none());
        assert_eq!(c.global.snapshot_direct().curr_items, 0, "lazy unlink ran");
    }

    #[test]
    fn flush_all_kills_older_items() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        set(&c, &p, b"old", b"v", 0, 1);
        c.flush_all(&mut ctx, 3).unwrap();
        assert!(get(&c, &p, b"old", 4).is_none());
        set(&c, &p, b"new", b"v", 0, 5);
        assert!(get(&c, &p, b"new", 6).is_some());
    }

    #[test]
    fn delete_frees_chunk() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let h = set(&c, &p, b"gone", b"v", 0, 1);
        let class = h.class;
        let free_before = c.arena.free_chunks(&mut ctx, class).unwrap();
        let hv = crate::hashes::jenkins_hash(b"gone", 0);
        c.unlink_item(&mut ctx, &p, h, hv).unwrap();
        assert_eq!(get(&c, &p, b"gone", 1), None);
        assert_eq!(c.arena.free_chunks(&mut ctx, class).unwrap(), free_before + 1);
    }

    #[test]
    fn eviction_reclaims_lru_tail() {
        let c = core();
        let p = Branch::Baseline.policy();
        // Fill the cache with large values until eviction must occur.
        let value = vec![7u8; 4000];
        for i in 0..200 {
            let key = format!("evict-{i}");
            set(&c, &p, key.as_bytes(), &value, 0, 1);
        }
        let s = c.global.snapshot_direct();
        assert!(s.evictions > 0, "expected evictions, got {s:?}");
        // The most recent key must still be there.
        assert!(get(&c, &p, b"evict-199", 1).is_some());
    }

    #[test]
    fn arith_incr_decr() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        set(&c, &p, b"n", b"41", 0, 1);
        let hv = crate::hashes::jenkins_hash(b"n", 0);
        let r = c.arith(&mut ctx, &p, b"n", hv, 1, true, 1).unwrap();
        assert!(matches!(r, Some(Ok((42, _)))), "got {r:?}");
        let cas1 = r.unwrap().unwrap().1;
        assert_eq!(get(&c, &p, b"n", 1), Some(b"42".to_vec()));
        let r = c.arith(&mut ctx, &p, b"n", hv, 50, false, 1).unwrap();
        assert!(
            matches!(r, Some(Ok((0, _)))),
            "decr saturates at zero like memcached: {r:?}"
        );
        assert!(r.unwrap().unwrap().1 > cas1, "each arith assigns a fresh cas");
        assert_eq!(
            c.arith(&mut ctx, &p, b"nope", hv, 1, true, 1).unwrap(),
            None
        );
        set(&c, &p, b"s", b"abc", 0, 1);
        let hv2 = crate::hashes::jenkins_hash(b"s", 0);
        assert_eq!(
            c.arith(&mut ctx, &p, b"s", hv2, 1, true, 1).unwrap(),
            Some(Err(())),
            "non-numeric value"
        );
    }

    #[test]
    fn update_bumps_lru() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let a = set(&c, &p, b"a", b"v", 0, 1);
        let b = set(&c, &p, b"b", b"v", 0, 1);
        assert_eq!(a.class, b.class);
        let lru = &c.lrus[a.class as usize];
        assert_eq!(lru.tail(&mut ctx).unwrap(), Some(a));
        c.update_item(&mut ctx, &p, a, 2).unwrap();
        assert_eq!(lru.tail(&mut ctx).unwrap(), Some(b));
        assert_eq!(lru.head(&mut ctx).unwrap(), Some(a));
    }

    #[test]
    fn too_large_rejected() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let r = c
            .alloc_item(&mut ctx, &p, b"big", 0, 0, 1 << 20, 1, usize::MAX)
            .unwrap();
        assert_eq!(r, Err(AllocError::TooLarge));
    }

    #[test]
    fn refcounted_item_survives_unlink_until_release() {
        let c = core();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let h = set(&c, &p, b"held", b"v", 0, 1);
        let it = c.arena.resolve(h);
        // A reader takes a reference...
        it.ref_incr(&mut ctx, &p).unwrap();
        let hv = crate::hashes::jenkins_hash(b"held", 0);
        c.unlink_item(&mut ctx, &p, h, hv).unwrap();
        // ...chunk not freed yet (reader still holds it).
        assert_eq!(it.flags(&mut ctx).unwrap() & crate::item::ITEM_SLABBED, 0);
        c.item_release(&mut ctx, &p, h).unwrap();
        assert_ne!(it.flags(&mut ctx).unwrap() & crate::item::ITEM_SLABBED, 0);
    }
}
