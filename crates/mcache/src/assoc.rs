//! The hash table (`assoc.c`): chained buckets with incremental expansion
//! driven by a maintenance thread — the `cache_lock` category of §3.1 and
//! one of the two condition-synchronization patterns of §3.2.
//!
//! memcached keeps a primary table and, while `expanding` (a `volatile`
//! flag — a paper serialization site), the previous table; lookups route by
//! comparing the item's old bucket against `expand_bucket`, the migration
//! frontier. Because transactional cells must have stable addresses, every
//! generation's bucket array is preallocated at construction and the table
//! "grows" by advancing the active generation.

use tm::{Abort, TCell, Word};
use tmstd::ByteAccess;

use crate::ctx::Ctx;
use crate::item::{decode_opt, encode_opt, ItemHandle};
use crate::policy::Policy;
use crate::slabs::SlabArena;

/// The chained hash table.
pub struct AssocTable {
    generations: Vec<Box<[TCell<u64>]>>,
    start_power: u32,
    gen: TCell<u64>,
    /// The `volatile` expansion flag (serialization site pre-Max).
    expanding: TCell<bool>,
    /// Migration frontier: old buckets below this index have moved.
    expand_bucket: TCell<u64>,
    hash_items: TCell<u64>,
}

impl std::fmt::Debug for AssocTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssocTable")
            .field("start_power", &self.start_power)
            .field("max_power", &(self.start_power + self.generations.len() as u32 - 1))
            .finish()
    }
}

impl AssocTable {
    /// Creates a table with `2^start_power` buckets, expandable up to
    /// `2^max_power`.
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= start_power <= max_power <= 24`.
    pub fn new(start_power: u32, max_power: u32) -> Self {
        assert!((4..=24).contains(&start_power) && start_power <= max_power && max_power <= 24);
        let generations = (start_power..=max_power)
            .map(|p| (0..1usize << p).map(|_| TCell::new(0u64)).collect())
            .collect();
        AssocTable {
            generations,
            start_power,
            gen: TCell::new(0),
            expanding: TCell::new(false),
            expand_bucket: TCell::new(0),
            hash_items: TCell::new(0),
        }
    }

    fn mask(&self, gen: usize) -> u32 {
        (1u32 << (self.start_power + gen as u32)) - 1
    }

    /// Total buckets in the active generation (diagnostic).
    pub fn bucket_count<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<usize, Abort> {
        let g = ctx.get_word(self.gen.word())? as usize;
        Ok(self.generations[g].len())
    }

    /// Items currently linked.
    pub fn item_count<'e>(&'e self, ctx: &mut Ctx<'_, 'e>) -> Result<u64, Abort> {
        ctx.get_word(self.hash_items.word())
    }

    /// Whether an expansion is in progress. Reads the `volatile` flag, so
    /// this is a serialization site before the Max stage.
    pub fn is_expanding<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
    ) -> Result<bool, Abort> {
        Ok(ctx.volatile_read(policy, self.expanding.word())? != 0)
    }

    /// The bucket cell a key with hash `hv` lives in right now, honoring
    /// the expansion frontier (memcached's `assoc_find` routing).
    fn bucket_cell<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        hv: u32,
    ) -> Result<&'e TCell<u64>, Abort> {
        let g = ctx.get_word(self.gen.word())? as usize;
        if self.is_expanding(ctx, policy)? {
            let old = g - 1;
            let ob = hv & self.mask(old);
            let frontier = ctx.volatile_read(policy, self.expand_bucket.word())?;
            if (ob as u64) >= frontier {
                return Ok(&self.generations[old][ob as usize]);
            }
        }
        Ok(&self.generations[g][(hv & self.mask(g)) as usize])
    }

    /// Finds the linked item with this key (`assoc_find` + key compare).
    /// The per-item comparison is libc `memcmp` until the Lib stage.
    pub fn find<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        arena: &'e SlabArena,
        key: &[u8],
        hv: u32,
    ) -> Result<Option<ItemHandle>, Abort> {
        let cell = self.bucket_cell(ctx, policy, hv)?;
        let mut cur = decode_opt(ctx.get_word(cell.word())?);
        let mut depth = 0;
        while let Some(h) = cur {
            depth += 1;
            ctx.assert_that(policy, depth <= 100_000, "hash chain cycle")?;
            let it = arena.resolve(h);
            let sizes = it.sizes(ctx)?;
            if it.key_eq(ctx, policy, key, sizes.nkey)? {
                return Ok(Some(h));
            }
            cur = it.hnext(ctx)?;
        }
        Ok(None)
    }

    /// Links an item into its bucket (`assoc_insert`). Returns `true` when
    /// the load factor says an expansion should start — the caller decides
    /// whether to begin one and signal the maintenance thread.
    pub fn insert<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        arena: &'e SlabArena,
        h: ItemHandle,
        hv: u32,
    ) -> Result<bool, Abort> {
        let cell = self.bucket_cell(ctx, policy, hv)?;
        let head = decode_opt(ctx.get_word(cell.word())?);
        let it = arena.resolve(h);
        it.set_hnext(ctx, head)?;
        ctx.put_word(cell.word(), h.to_word())?;
        let n = ctx.get_word(self.hash_items.word())? + 1;
        ctx.put_word(self.hash_items.word(), n)?;
        let g = ctx.get_word(self.gen.word())? as usize;
        // memcached's mx_needed() check runs on every insert; once the
        // table is saturated (or mid-expansion) every set keeps asking for
        // the maintainer — the per-set sem_post site of §3.5.
        let wants_expansion = n > (self.generations[g].len() as u64 * 3) / 2
            && !self.is_expanding(ctx, policy)?;
        Ok(wants_expansion)
    }

    /// Unlinks an item from its bucket (`assoc_delete`). Returns `true` if
    /// it was found.
    pub fn remove<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        arena: &'e SlabArena,
        h: ItemHandle,
        hv: u32,
    ) -> Result<bool, Abort> {
        let cell = self.bucket_cell(ctx, policy, hv)?;
        let mut prev: Option<ItemHandle> = None;
        let mut cur = decode_opt(ctx.get_word(cell.word())?);
        let mut depth = 0;
        while let Some(c) = cur {
            depth += 1;
            ctx.assert_that(policy, depth <= 100_000, "hash chain cycle")?;
            let it = arena.resolve(c);
            let next = it.hnext(ctx)?;
            if c == h {
                match prev {
                    None => ctx.put_word(cell.word(), encode_opt(next))?,
                    Some(p) => arena.resolve(p).set_hnext(ctx, next)?,
                }
                it.set_hnext(ctx, None)?;
                let n = ctx.get_word(self.hash_items.word())?;
                ctx.assert_that(policy, n > 0, "hash_items underflow")?;
                ctx.put_word(self.hash_items.word(), n - 1)?;
                return Ok(true);
            }
            prev = Some(c);
            cur = next;
        }
        Ok(false)
    }

    /// Begins an expansion (`assoc_expand`): advances the generation and
    /// raises the `expanding` flag. The maintenance thread then migrates.
    /// Returns `false` if the table is already at maximum size or already
    /// expanding.
    pub fn start_expansion<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
    ) -> Result<bool, Abort> {
        let g = ctx.get_word(self.gen.word())? as usize;
        if self.is_expanding(ctx, policy)? || g + 1 >= self.generations.len() {
            return Ok(false);
        }
        ctx.put_word(self.gen.word(), g as u64 + 1)?;
        ctx.volatile_write(policy, self.expand_bucket.word(), 0)?;
        ctx.volatile_write(policy, self.expanding.word(), 1)?;
        Ok(true)
    }

    /// Migrates up to `batch` old buckets into the new generation
    /// (`assoc_maintenance_thread`'s inner loop). Returns `true` when the
    /// expansion completed in this call.
    pub fn migrate_step<'e>(
        &'e self,
        ctx: &mut Ctx<'_, 'e>,
        policy: &Policy,
        arena: &'e SlabArena,
        batch: usize,
    ) -> Result<bool, Abort> {
        if !self.is_expanding(ctx, policy)? {
            return Ok(false);
        }
        let g = ctx.get_word(self.gen.word())? as usize;
        let old = g - 1;
        let old_len = self.generations[old].len() as u64;
        let mut frontier = ctx.volatile_read(policy, self.expand_bucket.word())?;
        for _ in 0..batch {
            if frontier >= old_len {
                break;
            }
            let cell = &self.generations[old][frontier as usize];
            let mut cur = decode_opt(ctx.get_word(cell.word())?);
            while let Some(h) = cur {
                let it = arena.resolve(h);
                let next = it.hnext(ctx)?;
                let sizes = it.sizes(ctx)?;
                // Re-hash from the stored key (libc strlen/memcmp-adjacent
                // work in real memcached; reading the key is instrumented).
                let key = it.read_key(ctx, sizes.nkey)?;
                let hv = crate::hashes::jenkins_hash(&key, 0);
                let nb = (hv & self.mask(g)) as usize;
                let ncell = &self.generations[g][nb];
                let nhead = decode_opt(ctx.get_word(ncell.word())?);
                it.set_hnext(ctx, nhead)?;
                ctx.put_word(ncell.word(), h.to_word())?;
                cur = next;
            }
            ctx.put_word(cell.word(), 0)?;
            frontier += 1;
        }
        ctx.volatile_write(policy, self.expand_bucket.word(), frontier)?;
        if frontier >= old_len {
            ctx.volatile_write(policy, self.expanding.word(), 0)?;
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemSizes;
    use crate::policy::Branch;
    use crate::slabs::{SlabArena, SlabConfig};

    fn setup() -> (SlabArena, AssocTable) {
        let arena = SlabArena::new(SlabConfig {
            mem_limit: 256 << 10,
            page_size: 16 << 10,
            chunk_min: 96,
            growth_factor: 2.0,
        });
        (arena, AssocTable::new(4, 8))
    }

    fn put_item(arena: &SlabArena, key: &[u8]) -> (ItemHandle, u32) {
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let h = arena.alloc_from(&mut ctx, &p, 0).unwrap().unwrap();
        let it = arena.resolve(h);
        it.set_sizes(
            &mut ctx,
            ItemSizes {
                nkey: key.len() as u8,
                nsuffix: 0,
                nbytes: 0,
            },
        )
        .unwrap();
        it.write_key(&mut ctx, key).unwrap();
        (h, crate::hashes::jenkins_hash(key, 0))
    }

    #[test]
    fn insert_find_remove() {
        let (arena, t) = setup();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let (h, hv) = put_item(&arena, b"alpha");
        t.insert(&mut ctx, &p, &arena, h, hv).unwrap();
        assert_eq!(t.find(&mut ctx, &p, &arena, b"alpha", hv).unwrap(), Some(h));
        assert_eq!(t.find(&mut ctx, &p, &arena, b"beta", hv).unwrap(), None);
        assert!(t.remove(&mut ctx, &p, &arena, h, hv).unwrap());
        assert_eq!(t.find(&mut ctx, &p, &arena, b"alpha", hv).unwrap(), None);
        assert!(!t.remove(&mut ctx, &p, &arena, h, hv).unwrap());
        assert_eq!(t.item_count(&mut ctx).unwrap(), 0);
    }

    #[test]
    fn chains_handle_collisions() {
        let (arena, t) = setup();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        // Force same bucket by using the same hv for distinct keys.
        let (h1, _) = put_item(&arena, b"key-one");
        let (h2, _) = put_item(&arena, b"key-two");
        let hv = 0x42;
        t.insert(&mut ctx, &p, &arena, h1, hv).unwrap();
        t.insert(&mut ctx, &p, &arena, h2, hv).unwrap();
        assert_eq!(t.find(&mut ctx, &p, &arena, b"key-one", hv).unwrap(), Some(h1));
        assert_eq!(t.find(&mut ctx, &p, &arena, b"key-two", hv).unwrap(), Some(h2));
        assert!(t.remove(&mut ctx, &p, &arena, h1, hv).unwrap());
        assert_eq!(t.find(&mut ctx, &p, &arena, b"key-two", hv).unwrap(), Some(h2));
    }

    #[test]
    fn expansion_migrates_and_finds() {
        let (arena, t) = setup();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let mut items = Vec::new();
        let mut wanted = false;
        for i in 0..40 {
            let key = format!("exp-key-{i}");
            let (h, hv) = put_item(&arena, key.as_bytes());
            wanted |= t.insert(&mut ctx, &p, &arena, h, hv).unwrap();
            items.push((key, h, hv));
        }
        assert!(wanted, "40 items in 16 buckets must request expansion");
        assert!(t.start_expansion(&mut ctx, &p).unwrap());
        assert!(t.is_expanding(&mut ctx, &p).unwrap());
        // Everything findable mid-expansion.
        for (key, h, hv) in &items {
            assert_eq!(
                t.find(&mut ctx, &p, &arena, key.as_bytes(), *hv).unwrap(),
                Some(*h),
                "lost {key} mid-expansion"
            );
        }
        // Migrate in small steps.
        let mut done = false;
        for _ in 0..100 {
            if t.migrate_step(&mut ctx, &p, &arena, 2).unwrap() {
                done = true;
                break;
            }
        }
        assert!(done, "expansion never completed");
        assert!(!t.is_expanding(&mut ctx, &p).unwrap());
        assert_eq!(t.bucket_count(&mut ctx).unwrap(), 32);
        for (key, h, hv) in &items {
            assert_eq!(
                t.find(&mut ctx, &p, &arena, key.as_bytes(), *hv).unwrap(),
                Some(*h),
                "lost {key} after expansion"
            );
        }
    }

    #[test]
    fn insert_routes_to_old_generation_behind_frontier() {
        let (arena, t) = setup();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        t.start_expansion(&mut ctx, &p).unwrap();
        let (h, hv) = put_item(&arena, b"mid-expansion");
        t.insert(&mut ctx, &p, &arena, h, hv).unwrap();
        assert_eq!(
            t.find(&mut ctx, &p, &arena, b"mid-expansion", hv).unwrap(),
            Some(h)
        );
        // Finish migration; still findable.
        while !t.migrate_step(&mut ctx, &p, &arena, 8).unwrap() {}
        assert_eq!(
            t.find(&mut ctx, &p, &arena, b"mid-expansion", hv).unwrap(),
            Some(h)
        );
    }

    #[test]
    fn remove_works_mid_expansion() {
        let (arena, t) = setup();
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        let mut items = Vec::new();
        for i in 0..30 {
            let key = format!("rm-{i}");
            let (h, hv) = put_item(&arena, key.as_bytes());
            t.insert(&mut ctx, &p, &arena, h, hv).unwrap();
            items.push((key, h, hv));
        }
        t.start_expansion(&mut ctx, &p).unwrap();
        // Migrate half, then remove items on both sides of the frontier.
        t.migrate_step(&mut ctx, &p, &arena, 8).unwrap();
        for (key, h, hv) in &items {
            assert!(
                t.remove(&mut ctx, &p, &arena, *h, *hv).unwrap(),
                "failed to remove {key} mid-expansion"
            );
            assert_eq!(t.find(&mut ctx, &p, &arena, key.as_bytes(), *hv).unwrap(), None);
        }
        assert_eq!(t.item_count(&mut ctx).unwrap(), 0);
        // Finish the migration over the now-empty remainder.
        while !t.migrate_step(&mut ctx, &p, &arena, 8).unwrap() {}
        assert!(!t.is_expanding(&mut ctx, &p).unwrap());
    }

    #[test]
    fn expansion_stops_at_max_power() {
        let (arena, t) = setup();
        let _ = arena;
        let p = Branch::Baseline.policy();
        let mut ctx = Ctx::Direct;
        for _ in 0..4 {
            if t.start_expansion(&mut ctx, &p).unwrap() {
                // complete it instantly (no items linked)
                while !t.migrate_step(&mut ctx, &p, &arena, 64).unwrap() {}
            }
        }
        assert!(!t.start_expansion(&mut ctx, &p).unwrap(), "must stop at 2^8");
    }
}
