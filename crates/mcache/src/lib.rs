//! # mcache — a memcached-1.4.15-like cache with every branch from
//! "Transactionalizing Legacy Code" (ASPLOS 2014)
//!
//! This crate rebuilds the system the paper modified: a slab-allocated,
//! LRU-evicting, chained-hash in-memory cache with memcached 1.4.15's
//! four-level lock hierarchy (item locks, `cache_lock`, `slabs_lock`,
//! `stats_lock` — acquired in that order, with the documented `trylock`
//! order violations), per-thread statistics, reference-counted items, a
//! hash-expansion maintenance thread, and a slab rebalancer.
//!
//! Every point of the paper's transactionalization history is selectable
//! as a [`Branch`]:
//!
//! | branch | meaning |
//! |---|---|
//! | `Baseline` | pthread-style locks + condition variables |
//! | `Semaphore` | condvars replaced by semaphores (§3.2) |
//! | `Ip(stage)` / `It(stage)` | locks replaced by transactions, item locks privatized (IP) or transactionalized (IT), at stage `Plain`/`Callable`/`Max`/`Lib`/`OnCommit` (§3.3–§3.5) |
//! | `IpNoLock` / `ItNoLock` | onCommit stage on a runtime without the global serial lock (§4) |
//!
//! ```
//! use mcache::{Branch, McCache, McConfig, Stage};
//!
//! let cache = McCache::start(McConfig {
//!     branch: Branch::Ip(Stage::OnCommit),
//!     workers: 2,
//!     ..Default::default()
//! });
//! assert_eq!(
//!     cache.set(0, b"greeting", b"hello", 0, 0),
//!     mcache::StoreStatus::Stored
//! );
//! let v = cache.get(1, b"greeting").expect("just stored");
//! assert_eq!(v.data, b"hello");
//! // Serialization accounting for the paper's tables:
//! let tm = cache.tm_stats();
//! assert_eq!(tm.start_serial + tm.in_flight_switch, 0, "onCommit stage never serializes");
//! ```

#![warn(missing_docs)]

pub mod assoc;
pub mod cache;
pub mod core;
pub mod ctx;
pub mod dur;
pub mod hashes;
mod hot;
pub mod item;
pub mod lru;
pub mod net;
pub mod policy;
pub mod proto;
pub mod sem;
pub mod slabs;
pub mod stats;

pub use cache::{
    ArithStatus, CacheStats, GetValue, McCache, McConfig, McHandle, StoreMode, StoreOp,
    StoreStatus, KEY_MAX,
};
pub use dur::{DurFsync, DurSnapshot};
pub use net::{EventLoop, NetConfig, NetSnapshot, Server};
pub use policy::{Branch, Category, ItemMode, Policy, SectionKind, Stage};
pub use slabs::SlabConfig;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small_config(branch: Branch) -> McConfig {
        McConfig {
            branch,
            workers: 4,
            slab: SlabConfig {
                mem_limit: 4 << 20,
                page_size: 64 << 10,
                chunk_min: 96,
                growth_factor: 1.5,
            },
            hash_power: 8,
            hash_power_max: 12,
            item_lock_power: 6,
            ..Default::default()
        }
    }

    #[test]
    fn every_branch_does_basic_ops() {
        for branch in Branch::all() {
            let c = McCache::start(small_config(branch));
            assert_eq!(c.set(0, b"k1", b"v1", 7, 0), StoreStatus::Stored, "{branch}");
            let v = c.get(0, b"k1").unwrap_or_else(|| panic!("{branch}: lost k1"));
            assert_eq!(v.data, b"v1");
            assert_eq!(v.flags, 7);
            assert_eq!(c.add(0, b"k1", b"x", 0, 0), StoreStatus::NotStored, "{branch}");
            assert_eq!(c.add(0, b"k2", b"v2", 0, 0), StoreStatus::Stored, "{branch}");
            assert_eq!(c.replace(0, b"k2", b"v2b", 0, 0), StoreStatus::Stored);
            assert_eq!(c.replace(0, b"nope", b"x", 0, 0), StoreStatus::NotStored);
            assert!(c.delete(0, b"k2"), "{branch}");
            assert!(!c.delete(0, b"k2"), "{branch}");
            assert!(c.get(0, b"k2").is_none(), "{branch}");
        }
    }

    #[test]
    fn cas_semantics_per_branch() {
        for branch in [Branch::Baseline, Branch::Ip(Stage::Lib), Branch::ItNoLock] {
            let c = McCache::start(small_config(branch));
            c.set(0, b"k", b"v1", 0, 0);
            let cas = c.get(0, b"k").unwrap().cas;
            assert_eq!(c.cas(0, b"k", b"v2", 0, 0, cas), StoreStatus::Stored, "{branch}");
            assert_eq!(c.cas(0, b"k", b"v3", 0, 0, cas), StoreStatus::Exists, "{branch}");
            assert_eq!(
                c.cas(0, b"missing", b"v", 0, 0, cas),
                StoreStatus::NotFound,
                "{branch}"
            );
            assert_eq!(c.get(0, b"k").unwrap().data, b"v2");
        }
    }

    #[test]
    fn incr_decr_per_branch() {
        for branch in [Branch::Semaphore, Branch::It(Stage::Plain), Branch::IpNoLock] {
            let c = McCache::start(small_config(branch));
            c.set(0, b"n", b"10", 0, 0);
            assert_eq!(c.arith(0, b"n", 5, true), ArithStatus::Ok(15), "{branch}");
            assert_eq!(c.arith(0, b"n", 20, false), ArithStatus::Ok(0), "{branch}");
            assert_eq!(c.arith(0, b"missing", 1, true), ArithStatus::NotFound);
            c.set(0, b"s", b"word", 0, 0);
            assert_eq!(c.arith(0, b"s", 1, true), ArithStatus::NonNumeric, "{branch}");
        }
    }

    #[test]
    fn append_prepend() {
        let c = McCache::start(small_config(Branch::Baseline));
        c.set(0, b"k", b"mid", 0, 0);
        assert_eq!(c.append(0, b"k", b"-end"), StoreStatus::Stored);
        assert_eq!(c.prepend(0, b"k", b"start-"), StoreStatus::Stored);
        assert_eq!(c.get(0, b"k").unwrap().data, b"start-mid-end");
        assert_eq!(c.append(0, b"missing", b"x"), StoreStatus::NotStored);
    }

    #[test]
    fn expired_items_die_lazily() {
        let c = McCache::start(small_config(Branch::It(Stage::OnCommit)));
        // exptime=1 is in the past (rel_time starts at 2): dead on arrival.
        c.set(0, b"k", b"v", 0, 1);
        assert!(c.get(0, b"k").is_none());
        // A future exptime stays alive.
        c.set(0, b"k2", b"v", 0, 1_000_000);
        assert!(c.get(0, b"k2").is_some());
    }

    #[test]
    fn touch_extends_lifetime() {
        let c = McCache::start(small_config(Branch::Ip(Stage::Max)));
        c.set(0, b"k", b"v", 0, 0);
        assert!(c.touch(0, b"k", 0));
        assert!(!c.touch(0, b"missing", 0));
        assert!(c.get(0, b"k").is_some());
    }

    #[test]
    fn flush_all_clears_visibility() {
        let c = McCache::start(small_config(Branch::Ip(Stage::Plain)));
        c.set(0, b"k", b"v", 0, 0);
        c.flush_all(0);
        std::thread::sleep(std::time::Duration::from_millis(1100));
        assert!(c.get(0, b"k").is_none(), "flushed item must die");
        c.set(0, b"k2", b"v2", 0, 0);
        // rel_time advanced past the watermark for the new item? The
        // watermark kills items whose last access <= flush time; a store
        // in the same second is an edge we avoid by sleeping above.
        assert!(c.get(0, b"k2").is_some());
    }

    #[test]
    fn concurrent_workers_all_branches_smoke() {
        for branch in Branch::all() {
            let handle = McCache::start(small_config(branch));
            let c = handle.cache().clone();
            let mut threads = vec![];
            for w in 0..4 {
                let c = Arc::clone(&c);
                threads.push(std::thread::spawn(move || {
                    for i in 0..120u32 {
                        let key = format!("k{}", (w * 37 + i as usize) % 50);
                        match i % 4 {
                            0 => {
                                c.set(w, key.as_bytes(), format!("val-{i}").as_bytes(), 0, 0);
                            }
                            3 if i % 12 == 3 => {
                                c.delete(w, key.as_bytes());
                            }
                            _ => {
                                if let Some(v) = c.get(w, key.as_bytes()) {
                                    assert!(
                                        v.data.starts_with(b"val-"),
                                        "{branch}: corrupt value {:?}",
                                        v.data
                                    );
                                }
                            }
                        }
                    }
                }));
            }
            for t in threads {
                t.join().unwrap_or_else(|_| panic!("worker died on {branch}"));
            }
            let s = handle.stats();
            assert_eq!(s.threads.total_cmds(), 480, "{branch}");
        }
    }

    #[test]
    fn multiget_all_branches_matches_per_key_gets() {
        for branch in Branch::all() {
            let c = McCache::start(small_config(branch));
            c.set(0, b"a", b"va", 1, 0);
            c.set(0, b"b", b"vb", 2, 0);
            let vals = c.get_multi(0, &[b"a", b"missing", b"b", b"a"]);
            assert_eq!(vals.len(), 4, "{branch}");
            assert_eq!(vals[0].as_ref().unwrap().data, b"va", "{branch}");
            assert!(vals[1].is_none(), "{branch}");
            assert_eq!(vals[2].as_ref().unwrap().data, b"vb", "{branch}");
            assert_eq!(vals[3].as_ref().unwrap().data, b"va", "{branch}");
            let s = c.stats();
            assert_eq!(s.threads.get_cmds, 4, "{branch}");
            assert_eq!(s.threads.get_hits, 3, "{branch}");
            assert_eq!(s.threads.get_misses, 1, "{branch}");
            assert_eq!(
                s.global.cmd_total,
                s.threads.total_cmds(),
                "{branch}: shards must fold into cmd_total"
            );
        }
    }

    #[test]
    fn transactional_get_path_rides_the_fast_lane() {
        // IT-onCommit with refcount elision: a warm GET hit writes nothing,
        // so every one must commit on the runtime's read-only fast lane.
        let mut cfg = small_config(Branch::It(Stage::OnCommit));
        cfg.refcount_elision = true;
        cfg.lru_bump_every = 0; // no LRU-bump writes on this profile
        let c = McCache::start(cfg);
        c.set(0, b"k", b"v", 0, 0);
        c.get(0, b"k"); // first fetch sets ITEM_FETCHED (a promotion)
        let before = c.tm_stats();
        for _ in 0..50 {
            assert!(c.get(0, b"k").is_some());
        }
        let after = c.tm_stats();
        assert!(
            after.ro_fast_commits >= before.ro_fast_commits + 50,
            "warm elided GETs must all commit fast-lane: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn elided_readers_survive_concurrent_frees() {
        // Privatization safety at the cache level: with refcount elision a
        // fast-lane GET holds no reference, so a concurrent delete+reset
        // (the paper's item_free hazard) must be fenced by the STM alone.
        // Values are uniform byte-runs — any torn read would mix rounds.
        let mut cfg = small_config(Branch::It(Stage::OnCommit));
        cfg.refcount_elision = true;
        cfg.lru_bump_every = 0;
        let handle = McCache::start(cfg);
        let c = handle.cache().clone();
        let keys: Vec<Vec<u8>> = (0..4).map(|i| format!("rk{i}").into_bytes()).collect();

        std::thread::scope(|s| {
            {
                let (c, keys) = (Arc::clone(&c), keys.clone());
                s.spawn(move || {
                    for round in 0..400u32 {
                        let k = &keys[round as usize % keys.len()];
                        if round % 5 == 4 {
                            c.delete(0, k);
                        } else {
                            let fill = vec![b'a' + (round % 23) as u8; 64];
                            c.set(0, k, &fill, 0, 0);
                        }
                    }
                });
            }
            for w in 1..3usize {
                let (c, keys) = (Arc::clone(&c), keys.clone());
                s.spawn(move || {
                    for i in 0..400usize {
                        let check = |v: &crate::GetValue| {
                            assert_eq!(v.data.len(), 64, "torn length");
                            assert!(
                                v.data.iter().all(|&b| b == v.data[0]),
                                "torn value: a reader mixed two rounds: {:?}",
                                &v.data[..8]
                            );
                        };
                        if i % 3 == 0 {
                            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                            for v in c.get_multi(w, &refs).iter().flatten() {
                                check(v);
                            }
                        } else if let Some(v) = c.get(w, &keys[i % keys.len()]) {
                            check(&v);
                        }
                    }
                });
            }
        });
        let s = handle.stats();
        assert_eq!(
            s.global.cmd_total,
            s.threads.total_cmds(),
            "shards must fold exactly even under concurrency"
        );
    }

    #[test]
    fn serialization_stats_shape_follows_stages() {
        // The qualitative content of Tables 1-4: serialization causes
        // shrink monotonically as the stages progress, and vanish at
        // onCommit.
        let run = |branch: Branch| {
            let c = McCache::start(small_config(branch));
            for i in 0..300u32 {
                let key = format!("key-{}", i % 40);
                if i % 10 == 0 {
                    c.set(0, key.as_bytes(), b"some-value-payload", 0, 0);
                } else {
                    c.get(0, key.as_bytes());
                }
            }
            c.tm_stats()
        };
        let plain = run(Branch::It(Stage::Plain));
        assert!(
            plain.start_serial > 0,
            "IT-Plain item sections must start serial: {plain:?}"
        );
        let max = run(Branch::It(Stage::Max));
        assert!(
            max.in_flight_switch > 0,
            "IT-Max must switch in flight on libc: {max:?}"
        );
        let oncommit = run(Branch::It(Stage::OnCommit));
        assert_eq!(oncommit.start_serial, 0, "{oncommit:?}");
        assert_eq!(oncommit.in_flight_switch, 0, "{oncommit:?}");
        assert!(oncommit.commit_handlers_run > 0 || oncommit.commits > 0);
        let ip_plain = run(Branch::Ip(Stage::Plain));
        assert!(
            ip_plain.transactions() > plain.transactions(),
            "IP multiplies transaction count vs IT (lock/unlock mini-txns): {} vs {}",
            ip_plain.transactions(),
            plain.transactions()
        );
    }

    #[test]
    fn lock_branch_contention_shows_in_profiler() {
        let handle = McCache::start(small_config(Branch::Baseline));
        let c = handle.cache().clone();
        let mut threads = vec![];
        for w in 0..4 {
            let c = Arc::clone(&c);
            threads.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let key = format!("x{}", i % 10);
                    if i % 3 == 0 {
                        c.set(w, key.as_bytes(), b"v", 0, 0);
                    } else {
                        c.get(w, key.as_bytes());
                    }
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let report = handle.lock_report();
        assert!(report.contains("cache_lock"), "{report}");
        assert!(report.contains("stats_lock"), "{report}");
    }

    #[test]
    fn verbose_logging_is_counted_and_oncommit_defers() {
        let mut cfg = small_config(Branch::It(Stage::OnCommit));
        cfg.verbose = true;
        let c = McCache::start(cfg);
        c.set(0, b"k", b"v", 0, 0);
        c.get(0, b"k");
        let s = c.stats();
        assert!(s.log_lines >= 2, "verbose ops must log: {s:?}");
        assert!(c.tm_stats().commit_handlers_run > 0, "logs deferred to onCommit");
        assert_eq!(c.tm_stats().in_flight_switch, 0);
    }

    #[test]
    fn eviction_under_memory_pressure() {
        let mut cfg = small_config(Branch::Ip(Stage::OnCommit));
        cfg.slab.mem_limit = 512 << 10;
        let c = McCache::start(cfg);
        let value = vec![3u8; 2048];
        for i in 0..600 {
            let key = format!("pressure-{i}");
            let st = c.set(0, key.as_bytes(), &value, 0, 0);
            assert_eq!(st, StoreStatus::Stored, "at {i}");
        }
        let s = c.stats();
        assert!(s.global.evictions > 0, "{s:?}");
        assert!(c.get(0, b"pressure-599").is_some());
    }

    #[test]
    fn refcount_elision_preserves_semantics() {
        // §5 future-work: on IT, get's refcount RMW pair becomes a plain
        // transactional read; results must be indistinguishable.
        let mut cfg = small_config(Branch::ItNoLock);
        cfg.refcount_elision = true;
        let c = McCache::start(cfg);
        c.set(0, b"k", b"v", 3, 0);
        let v = c.get(0, b"k").unwrap();
        assert_eq!((v.data.as_slice(), v.flags), (b"v".as_slice(), 3));
        assert!(c.delete(0, b"k"));
        assert!(c.get(0, b"k").is_none());
        // Elision is a no-op on IP (privatized readers need refcounts).
        let mut cfg = small_config(Branch::IpNoLock);
        cfg.refcount_elision = true;
        let c = McCache::start(cfg);
        c.set(0, b"k", b"v", 0, 0);
        assert!(c.get(0, b"k").is_some());
    }

    #[test]
    fn magazine_store_semantics_match_plain() {
        // The magazine fast lane must be observably identical to the plain
        // 3-transaction IT store — only the transaction count changes.
        let mut cfg = small_config(Branch::It(Stage::OnCommit));
        cfg.magazine = 16;
        let c = McCache::start(cfg);
        assert!(c.magazines_on());
        assert_eq!(c.set(0, b"k1", b"v1", 7, 0), StoreStatus::Stored);
        let v = c.get(0, b"k1").unwrap();
        assert_eq!((v.data.as_slice(), v.flags), (b"v1".as_slice(), 7));
        assert_eq!(c.add(0, b"k1", b"x", 0, 0), StoreStatus::NotStored);
        assert_eq!(c.add(0, b"k2", b"v2", 0, 0), StoreStatus::Stored);
        assert_eq!(c.replace(0, b"k2", b"v2b", 0, 0), StoreStatus::Stored);
        assert_eq!(c.replace(0, b"nope", b"x", 0, 0), StoreStatus::NotStored);
        let cas = c.get(0, b"k2").unwrap().cas;
        assert_eq!(c.cas(0, b"k2", b"v2c", 0, 0, cas), StoreStatus::Stored);
        assert_eq!(c.cas(0, b"k2", b"v2d", 0, 0, cas), StoreStatus::Exists);
        assert_eq!(c.cas(0, b"gone", b"v", 0, 0, cas), StoreStatus::NotFound);
        assert!(c.delete(0, b"k2"));
        assert!(c.get(0, b"k2").is_none());
        let s = c.stats();
        assert!(s.global.magazine_refills > 0, "allocations came from refills: {s:?}");
        // An overwrite-heavy run recycles its chunk inside the worker: one
        // initial refill covers the whole loop.
        let before = c.stats().global.magazine_refills;
        for i in 0..100u32 {
            let val = format!("val-{i}");
            assert_eq!(c.set(0, b"hot", val.as_bytes(), 0, 0), StoreStatus::Stored);
        }
        let after = c.stats().global.magazine_refills;
        assert!(
            after - before <= 1,
            "overwrites must recycle via the magazine, not refill: {before} -> {after}"
        );
        assert_eq!(c.get(0, b"hot").unwrap().data, b"val-99");
        // flush_all drains every magazine back to the arena.
        c.flush_all(0);
        assert!(c.stats().global.magazine_flushes > 0);
    }

    #[test]
    fn magazine_readers_never_see_torn_values() {
        // The soundness argument for keeping magazine writes instrumented:
        // invisible fast-lane readers racing overwrites of recycled chunks
        // must never observe bytes from two different rounds.
        let mut cfg = small_config(Branch::It(Stage::OnCommit));
        cfg.magazine = 8;
        cfg.refcount_elision = true;
        cfg.lru_bump_every = 0;
        let handle = McCache::start(cfg);
        let c = handle.cache().clone();
        let keys: Vec<Vec<u8>> = (0..4).map(|i| format!("mk{i}").into_bytes()).collect();
        std::thread::scope(|s| {
            for w in 0..2usize {
                let (c, keys) = (Arc::clone(&c), keys.clone());
                s.spawn(move || {
                    for round in 0..400u32 {
                        let k = &keys[(round as usize + w) % keys.len()];
                        if round % 7 == 6 {
                            c.delete(w, k);
                        } else {
                            let fill = vec![b'a' + (round % 23) as u8; 64];
                            c.set(w, k, &fill, 0, 0);
                        }
                    }
                });
            }
            for w in 2..4usize {
                let (c, keys) = (Arc::clone(&c), keys.clone());
                s.spawn(move || {
                    for i in 0..600usize {
                        if let Some(v) = c.get(w, &keys[i % keys.len()]) {
                            assert_eq!(v.data.len(), 64, "torn length");
                            assert!(
                                v.data.iter().all(|&b| b == v.data[0]),
                                "torn value: reader mixed two rounds"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn magazine_survives_eviction_pressure_and_rebalance() {
        // Magazine-held chunks look *allocated* to the rebalancer's
        // fully-free-page scan; this exercises refill-driven eviction and
        // page moves with magazines interposed on every store.
        let mut cfg = small_config(Branch::It(Stage::OnCommit));
        cfg.magazine = 16;
        cfg.slab.mem_limit = 512 << 10;
        let c = McCache::start(cfg);
        // Give the small class its page first: once memory is exhausted by
        // the large class, a brand-new class can only OOM (eviction is
        // per-class), magazines or not.
        for i in 0..200 {
            let key = format!("small-{i}");
            assert_eq!(c.set(0, key.as_bytes(), b"tiny", 0, 0), StoreStatus::Stored);
        }
        let value = vec![3u8; 2048];
        for i in 0..600 {
            let key = format!("pressure-{i}");
            assert_eq!(c.set(0, key.as_bytes(), &value, 0, 0), StoreStatus::Stored, "at {i}");
        }
        let s = c.stats();
        assert!(s.global.evictions > 0, "{s:?}");
        assert!(c.get(0, b"pressure-599").is_some());
        // The small class keeps serving stores (refills from its own page
        // or evicting within the class) with magazines interposed.
        for i in 0..200 {
            let key = format!("small2-{i}");
            assert_eq!(c.set(0, key.as_bytes(), b"tiny", 0, 0), StoreStatus::Stored);
        }
        assert!(c.get(0, b"small2-199").is_some());
    }

    #[test]
    fn store_batch_matches_singles() {
        for magazine in [0, 8] {
            let mut cfg = small_config(Branch::It(Stage::OnCommit));
            cfg.magazine = magazine;
            let c = McCache::start(cfg);
            c.set(0, b"seed", b"old", 0, 0);
            let cas = c.get(0, b"seed").unwrap().cas;
            let ops = [
                StoreOp { mode: StoreMode::Set, key: b"a", value: b"va", flags: 1, exptime: 0 },
                StoreOp { mode: StoreMode::Add, key: b"a", value: b"xx", flags: 0, exptime: 0 },
                StoreOp { mode: StoreMode::Replace, key: b"miss", value: b"x", flags: 0, exptime: 0 },
                StoreOp { mode: StoreMode::Cas(cas), key: b"seed", value: b"new", flags: 0, exptime: 0 },
                StoreOp { mode: StoreMode::Cas(cas), key: b"seed", value: b"zzz", flags: 0, exptime: 0 },
                StoreOp { mode: StoreMode::Set, key: b"b", value: b"vb", flags: 2, exptime: 0 },
            ];
            let st = c.store_batch(0, &ops);
            assert_eq!(
                st,
                vec![
                    StoreStatus::Stored,
                    StoreStatus::NotStored,
                    StoreStatus::NotStored,
                    StoreStatus::Stored,
                    StoreStatus::Exists,
                    StoreStatus::Stored,
                ],
                "magazine={magazine}"
            );
            assert_eq!(c.get(0, b"a").unwrap().data, b"va");
            assert_eq!(c.get(0, b"seed").unwrap().data, b"new");
            assert_eq!(c.get(0, b"b").unwrap().data, b"vb");
            let s = c.stats();
            assert_eq!(s.threads.set_cmds, 7, "every batched op counted");
            assert_eq!(s.global.cmd_total, s.threads.total_cmds() + s.global.flush_cmds);
        }
        // Lock branches fall back to per-op stores with identical results.
        let c = McCache::start(small_config(Branch::Baseline));
        let ops = [
            StoreOp { mode: StoreMode::Set, key: b"a", value: b"va", flags: 0, exptime: 0 },
            StoreOp { mode: StoreMode::Add, key: b"a", value: b"x", flags: 0, exptime: 0 },
        ];
        assert_eq!(
            c.store_batch(0, &ops),
            vec![StoreStatus::Stored, StoreStatus::NotStored]
        );
    }

    #[test]
    fn arith_wraparound_and_saturation_edges() {
        // memcached semantics at the numeric rim: incr wraps modulo 2^64,
        // decr saturates at zero.
        for branch in [Branch::Baseline, Branch::It(Stage::OnCommit)] {
            let c = McCache::start(small_config(branch));
            let max = u64::MAX.to_string();
            c.set(0, b"n", max.as_bytes(), 0, 0);
            assert_eq!(c.arith(0, b"n", 1, true), ArithStatus::Ok(0), "{branch}: wrap");
            assert_eq!(c.arith(0, b"n", 5, true), ArithStatus::Ok(5), "{branch}");
            assert_eq!(c.arith(0, b"n", 100, false), ArithStatus::Ok(0), "{branch}: saturate");
            assert_eq!(c.arith(0, b"n", u64::MAX, true), ArithStatus::Ok(u64::MAX), "{branch}");
            assert_eq!(
                c.arith(0, b"n", u64::MAX, true),
                ArithStatus::Ok(u64::MAX - 1),
                "{branch}: wrap by delta"
            );
        }
    }

    #[test]
    fn expansion_triggers_and_completes() {
        let mut cfg = small_config(Branch::Semaphore);
        cfg.hash_power = 6;
        let c = McCache::start(cfg);
        for i in 0..400 {
            let key = format!("grow-{i}");
            c.set(0, key.as_bytes(), b"v", 0, 0);
        }
        // Give the maintenance thread time to migrate.
        std::thread::sleep(std::time::Duration::from_millis(300));
        for i in 0..400 {
            let key = format!("grow-{i}");
            assert!(c.get(0, key.as_bytes()).is_some(), "lost {key} in expansion");
        }
        assert!(c.stats().global.maintenance_signals > 0);
    }
}
