//! # tmstd — transaction-safe standard-library replacements
//!
//! The paper's §3.4 ("Making Libraries Safe") identifies the unsafe libc
//! calls that kept memcached transactions serializing, and removes them in
//! two ways, both reproduced here:
//!
//! 1. **Safety via reimplementation** — `memcmp`, `memcpy`, `strlen`,
//!    `strncmp`, `strncpy`, `strchr`, and a naive `realloc` rewritten as
//!    `transaction_safe` functions. The spec requires both the
//!    transactional and non-transactional clones of a safe function to come
//!    from the same source; this crate enforces that literally by writing
//!    each function once, generic over [`ByteAccess`], instantiated with
//!    [`TxAccess`] (instrumented clone) or [`DirectAccess`]
//!    (uninstrumented clone).
//! 2. **Safety via marshaling** — `isspace`, `strtol`, `strtoull`, `atoi`,
//!    `snprintf`, and `htons` wrapped in [`pure`] calls operating on
//!    explicitly marshaled private copies ([`marshal`] module; the paper's
//!    Figure 7 pattern). Variable-argument `snprintf` appears as one
//!    hand-cloned function per call-site signature, as in the paper.
//!
//! ```
//! use tm::{TBytes, TmRuntime};
//! use tmstd::{strlen, DirectAccess, TxAccess};
//!
//! let rt = TmRuntime::default_runtime();
//! let s = TBytes::from_slice(b"some key\0");
//!
//! // Instrumented clone, inside a transaction:
//! let n = rt.atomic(|tx| strlen(&mut TxAccess::new(tx), &s, 0));
//!
//! // Uninstrumented clone, same source:
//! assert_eq!(n, strlen(&mut DirectAccess, &s, 0)?);
//! # Ok::<(), tm::Abort>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
pub mod marshal;
mod mem;
mod str;

pub use access::{ByteAccess, DirectAccess, TxAccess};
pub use marshal::{
    atoi, dec_len, htonl, htons, isdigit, isspace, item_suffix_len, parse_i64, parse_u64, pure,
    snprintf_item_suffix, snprintf_str, snprintf_u64_crlf, strtol, strtoull, GENEROUS_INPUT_BUF,
    GENEROUS_OUTPUT_BUF,
};
pub use mem::{
    memcmp, memcmp_slice, memcpy, memcpy_from_slice, memcpy_to_slice, memmove, memset, realloc,
};
pub use str::{strchr, strlen, strncmp, strncpy, strnlen};

#[cfg(test)]
mod proptests {
    use super::*;
    use testkit::prop::gen;
    use testkit::rng::{Rng, SmallRng};
    use testkit::{prop_assert_eq, prop_assume, proptest};
    use tm::{TBytes, TmRuntime};

    fn nonzero_byte() -> impl Fn(&mut SmallRng) -> u8 + Clone {
        |rng| rng.gen_range(1u32..256) as u8
    }

    proptest! {
        #![cases(64)]

        /// The two clones of each reimplemented function agree on arbitrary
        /// inputs — the property the single-source requirement exists for.
        #[test]
        fn clones_agree_memcmp(x in gen::bytes(1..64), y in gen::bytes(1..64)) {
            let n = x.len().min(y.len());
            let xb = TBytes::from_slice(&x);
            let yb = TBytes::from_slice(&y);
            let rt = TmRuntime::default_runtime();
            let tx_result = rt.atomic(|tx| memcmp(&mut TxAccess::new(tx), &xb, 0, &yb, 0, n));
            let direct = memcmp(&mut DirectAccess, &xb, 0, &yb, 0, n).unwrap();
            prop_assert_eq!(tx_result.signum(), direct.signum());
            prop_assert_eq!(direct.signum(), x[..n].cmp(&y[..n]) as i32);
        }

        #[test]
        fn clones_agree_strlen(s in gen::bytes(1..64), nul_at in gen::index()) {
            let pos = nul_at.index(s.len());
            s[pos] = 0;
            let b = TBytes::from_slice(&s);
            let rt = TmRuntime::default_runtime();
            let tx_len = rt.atomic(|tx| strlen(&mut TxAccess::new(tx), &b, 0));
            prop_assert_eq!(tx_len, strlen(&mut DirectAccess, &b, 0).unwrap());
            prop_assert_eq!(tx_len, s.iter().position(|&c| c == 0).unwrap());
        }

        #[test]
        fn memcpy_roundtrip(data in gen::bytes(0..256), pad in gen::range(0usize..16)) {
            let src = TBytes::from_slice(&data);
            let dst = TBytes::zeroed(data.len() + pad);
            let rt = TmRuntime::default_runtime();
            rt.atomic(|tx| memcpy(&mut TxAccess::new(tx), &dst, 0, &src, 0, data.len()));
            prop_assert_eq!(&dst.to_vec_direct()[..data.len()], &data[..]);
        }

        #[test]
        fn parse_u64_matches_std(v in gen::any_u64(), ws in gen::range(0usize..4)) {
            let s = format!("{}{}", " ".repeat(ws), v);
            let parsed = parse_u64(s.as_bytes());
            prop_assert_eq!(parsed, Some((v, s.len())));
        }

        #[test]
        fn parse_i64_matches_std(v in gen::any_i64()) {
            // i64::MIN saturates (parser is magnitude-then-negate).
            prop_assume!(v != i64::MIN);
            let s = v.to_string();
            prop_assert_eq!(parse_i64(s.as_bytes()), Some((v, s.len())));
        }

        #[test]
        fn strncpy_matches_c_model(src in gen::vec(nonzero_byte(), 0..16),
                                   n in gen::range(0usize..24)) {
            let dst = TBytes::from_slice(&[0xEE; 24]);
            strncpy(&mut DirectAccess, &dst, 0, &src, n).unwrap();
            let out = dst.to_vec_direct();
            for k in 0..n {
                let expect = src.get(k).copied().unwrap_or(0);
                prop_assert_eq!(out[k], expect);
            }
            for k in n..24 {
                prop_assert_eq!(out[k], 0xEE);
            }
        }
    }
}
