//! Transaction-safe reimplementations of the untyped-memory functions the
//! paper lists in §3.4: `memcmp`, `memcpy` (plus `memmove`/`memset` for
//! completeness), and the "naive" `realloc`.

use tm::{Abort, TBytes};

use crate::access::ByteAccess;

/// `memcmp(x + xoff, y + yoff, n)`: byte-wise three-way comparison.
/// Returns negative, zero, or positive like the libc function.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
///
/// # Panics
///
/// Panics if either range exceeds its buffer.
pub fn memcmp<'e, A: ByteAccess<'e>>(
    a: &mut A,
    x: &'e TBytes,
    xoff: usize,
    y: &'e TBytes,
    yoff: usize,
    n: usize,
) -> Result<i32, Abort> {
    // Chunked bulk reads keep both operands word-granular (one log entry
    // per 8 bytes under transactional access); the byte loop only decides
    // the sign at the first differing chunk.
    let mut bx = [0u8; 32];
    let mut by = [0u8; 32];
    let mut k = 0;
    while k < n {
        let m = (n - k).min(bx.len());
        a.get_range(x, xoff + k, &mut bx[..m])?;
        a.get_range(y, yoff + k, &mut by[..m])?;
        if bx[..m] != by[..m] {
            for j in 0..m {
                if bx[j] != by[j] {
                    return Ok(i32::from(bx[j]) - i32::from(by[j]));
                }
            }
        }
        k += m;
    }
    Ok(0)
}

/// `memcmp` where the second operand is thread-local (a key the worker is
/// looking up — the common shape in memcached's `assoc_find`).
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn memcmp_slice<'e, A: ByteAccess<'e>>(
    a: &mut A,
    x: &'e TBytes,
    xoff: usize,
    y: &[u8],
) -> Result<i32, Abort> {
    // Chunked bulk reads keep the instrumented clone word-wise.
    let mut buf = [0u8; 32];
    let mut k = 0;
    while k < y.len() {
        let n = (y.len() - k).min(buf.len());
        a.get_range(x, xoff + k, &mut buf[..n])?;
        for j in 0..n {
            let xb = buf[j];
            let yb = y[k + j];
            if xb != yb {
                return Ok(xb as i32 - yb as i32);
            }
        }
        k += n;
    }
    Ok(0)
}

/// `memcpy(dst + doff, src + soff, n)` between two (non-overlapping uses
/// of) buffers.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn memcpy<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    src: &'e TBytes,
    soff: usize,
    n: usize,
) -> Result<(), Abort> {
    // The bounce buffer is moved with word-granular get_range/put_range
    // (one orec + one log entry per 8 bytes; byte merging only at the
    // unaligned edges), so a 1KB value costs ~128 log entries instead of
    // 1024 — the redo-log tax the paper's §4 measures.
    let mut buf = [0u8; 256];
    let mut k = 0;
    while k < n {
        let m = (n - k).min(buf.len());
        a.get_range(src, soff + k, &mut buf[..m])?;
        a.put_range(dst, doff + k, &buf[..m])?;
        k += m;
    }
    Ok(())
}

/// `memmove`: like [`memcpy`] but correct for overlapping ranges within the
/// same buffer (copies through a full temporary).
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn memmove<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    src: &'e TBytes,
    soff: usize,
    n: usize,
) -> Result<(), Abort> {
    let mut tmp = vec![0u8; n];
    a.get_range(src, soff, &mut tmp)?;
    a.put_range(dst, doff, &tmp)?;
    Ok(())
}

/// Copies a thread-local slice into shared memory (the store path of a
/// memcached `set`).
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn memcpy_from_slice<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    src: &[u8],
) -> Result<(), Abort> {
    a.put_range(dst, doff, src)
}

/// Copies shared memory into a thread-local slice (the read path of a
/// memcached `get` building its response).
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn memcpy_to_slice<'e, A: ByteAccess<'e>>(
    a: &mut A,
    src: &'e TBytes,
    soff: usize,
    dst: &mut [u8],
) -> Result<(), Abort> {
    a.get_range(src, soff, dst)
}

/// `memset(dst + doff, byte, n)`.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn memset<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    byte: u8,
    n: usize,
) -> Result<(), Abort> {
    let chunk = [byte; 64];
    let mut k = 0;
    while k < n {
        let m = (n - k).min(chunk.len());
        a.put_range(dst, doff + k, &chunk[..m])?;
        k += m;
    }
    Ok(())
}

/// The paper's naive transaction-safe `realloc`: "always allocating a new
/// buffer and using memcpy". The new buffer is transaction-local until
/// published by the caller, so allocation itself needs no instrumentation.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn realloc<'e, A: ByteAccess<'e>>(
    a: &mut A,
    old: &'e TBytes,
    new_len: usize,
) -> Result<TBytes, Abort> {
    let new = TBytes::zeroed(new_len);
    let n = old.len().min(new_len);
    let mut tmp = vec![0u8; n];
    a.get_range(old, 0, &mut tmp)?;
    new.store_slice_direct(0, &tmp); // private until published
    Ok(new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{DirectAccess, TxAccess};
    use tm::TmRuntime;

    #[test]
    fn memcmp_matches_libc_semantics() {
        let x = TBytes::from_slice(b"abcdef");
        let y = TBytes::from_slice(b"abcxef");
        let mut a = DirectAccess;
        assert_eq!(memcmp(&mut a, &x, 0, &y, 0, 3).unwrap(), 0);
        assert!(memcmp(&mut a, &x, 0, &y, 0, 6).unwrap() < 0);
        assert!(memcmp(&mut a, &y, 0, &x, 0, 6).unwrap() > 0);
        assert_eq!(memcmp(&mut a, &x, 4, &y, 4, 2).unwrap(), 0);
    }

    #[test]
    fn memcmp_slice_long_keys_chunked() {
        let key: Vec<u8> = (0..100u8).collect();
        let x = TBytes::from_slice(&key);
        let mut a = DirectAccess;
        assert_eq!(memcmp_slice(&mut a, &x, 0, &key).unwrap(), 0);
        let mut other = key.clone();
        other[63] ^= 0xFF;
        assert_ne!(memcmp_slice(&mut a, &x, 0, &other).unwrap(), 0);
    }

    #[test]
    fn memcpy_between_buffers() {
        let src = TBytes::from_slice(b"the quick brown fox");
        let dst = TBytes::zeroed(19);
        let mut a = DirectAccess;
        memcpy(&mut a, &dst, 0, &src, 0, 19).unwrap();
        assert_eq!(dst.to_vec_direct(), b"the quick brown fox");
    }

    #[test]
    fn memcpy_transactional_clone() {
        let rt = TmRuntime::default_runtime();
        let src = TBytes::from_slice(&[7u8; 100]);
        let dst = TBytes::zeroed(100);
        rt.atomic(|tx| {
            let mut a = TxAccess::new(tx);
            memcpy(&mut a, &dst, 0, &src, 0, 100)
        });
        assert_eq!(dst.to_vec_direct(), vec![7u8; 100]);
    }

    #[test]
    fn memmove_overlapping_forward() {
        let b = TBytes::from_slice(b"1234567890");
        let mut a = DirectAccess;
        memmove(&mut a, &b, 2, &b, 0, 8).unwrap();
        assert_eq!(b.to_vec_direct(), b"1212345678");
    }

    #[test]
    fn memset_fills() {
        let b = TBytes::zeroed(100);
        let mut a = DirectAccess;
        memset(&mut a, &b, 10, 0xEE, 80).unwrap();
        let v = b.to_vec_direct();
        assert_eq!(v[9], 0);
        assert!(v[10..90].iter().all(|&x| x == 0xEE));
        assert_eq!(v[90], 0);
    }

    #[test]
    fn realloc_grows_and_shrinks() {
        let old = TBytes::from_slice(b"data");
        let mut a = DirectAccess;
        let grown = realloc(&mut a, &old, 8).unwrap();
        assert_eq!(grown.to_vec_direct(), b"data\0\0\0\0");
        let shrunk = realloc(&mut a, &old, 2).unwrap();
        assert_eq!(shrunk.to_vec_direct(), b"da");
    }

    #[test]
    fn slice_copies() {
        let b = TBytes::zeroed(8);
        let mut a = DirectAccess;
        memcpy_from_slice(&mut a, &b, 1, b"abc").unwrap();
        let mut out = [0u8; 3];
        memcpy_to_slice(&mut a, &b, 1, &mut out).unwrap();
        assert_eq!(&out, b"abc");
    }
}
