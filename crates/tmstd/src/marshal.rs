//! Safety via marshaling (paper §3.4, Figure 7).
//!
//! Functions that were not worth reimplementing transactionally —
//! `isspace`, `strtol`, `strtoull`, `atoi`, `snprintf`, `htons` — were made
//! callable from transactions by *marshaling*: copy the shared-memory
//! arguments onto the stack with instrumented reads, invoke a
//! `transaction_pure` wrapper around the library function on the private
//! copy, and marshal any output back with instrumented writes.
//!
//! The pure computations here are honest reimplementations (no libc), but
//! the structure is the paper's: [`pure`] marks the uninstrumented call,
//! and every entry point performs explicit marshal-in / marshal-out around
//! it. Variable-argument `snprintf` is handled the way the paper did —
//! "manually clone and replace every variable-argument function with a
//! unique version for every combination of parameters that appeared in the
//! program": see [`snprintf_item_suffix`] and [`snprintf_u64_crlf`].

use tm::{Abort, TBytes};

use crate::access::ByteAccess;

/// The size used when a marshaling buffer's bound could not be inferred —
/// the paper "used a generous 4KB buffer for the input".
pub const GENEROUS_INPUT_BUF: usize = 4096;

/// ... and 8KB for the output.
pub const GENEROUS_OUTPUT_BUF: usize = 8192;

/// Marks an uninstrumented call from transactional context — the
/// `[[transaction_pure]]` extension. The closure must be genuinely pure
/// with respect to shared memory: it may only touch the thread-local data
/// marshaled for it.
///
/// # Examples
///
/// ```
/// let n = tmstd::pure(|| b"123".iter().filter(|b| b.is_ascii_digit()).count());
/// assert_eq!(n, 3);
/// ```
#[inline]
pub fn pure<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// `isspace` from `<ctype.h>` (C locale). Pure: a byte predicate needs no
/// marshaling at all.
#[inline]
pub fn isspace(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// `isdigit` from `<ctype.h>` (C locale).
#[inline]
pub fn isdigit(b: u8) -> bool {
    b.is_ascii_digit()
}

/// `htons`: host to network (big-endian) short. "Did not require any
/// marshaling, since its input and return values are both integers."
#[inline]
pub fn htons(v: u16) -> u16 {
    v.to_be()
}

/// `htonl`: host to network (big-endian) long.
#[inline]
pub fn htonl(v: u32) -> u32 {
    v.to_be()
}

/// The pure core of `strtoull` (base 10): parses leading whitespace then
/// digits from a private byte slice. Returns `(value, bytes_consumed)`, or
/// `None` if no digits were found. Saturates on overflow (memcached's
/// `incr` wraps separately; saturation keeps the parse total).
pub fn parse_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut i = 0;
    while i < buf.len() && isspace(buf[i]) {
        i += 1;
    }
    let start = i;
    let mut v: u64 = 0;
    while i < buf.len() && isdigit(buf[i]) {
        v = v
            .saturating_mul(10)
            .saturating_add((buf[i] - b'0') as u64);
        i += 1;
    }
    if i == start {
        None
    } else {
        Some((v, i))
    }
}

/// The pure core of `strtol` (base 10) with an optional sign.
pub fn parse_i64(buf: &[u8]) -> Option<(i64, usize)> {
    let mut i = 0;
    while i < buf.len() && isspace(buf[i]) {
        i += 1;
    }
    let mut neg = false;
    if i < buf.len() && (buf[i] == b'-' || buf[i] == b'+') {
        neg = buf[i] == b'-';
        i += 1;
    }
    let start = i;
    let mut v: i64 = 0;
    while i < buf.len() && isdigit(buf[i]) {
        v = v
            .saturating_mul(10)
            .saturating_add((buf[i] - b'0') as i64);
        i += 1;
    }
    if i == start {
        None
    } else {
        Some((if neg { -v } else { v }, i))
    }
}

/// `strtoull(s + off, ..., 10)` via marshaling: copies at most `maxlen`
/// bytes of the shared string onto the stack, then calls the pure parser.
/// The scalar result "needs no further marshaling".
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strtoull<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    maxlen: usize,
) -> Result<Option<(u64, usize)>, Abort> {
    let n = maxlen.min(s.len().saturating_sub(off)).min(40);
    let mut stack = [0u8; 40];
    a.get_range(s, off, &mut stack[..n])?; // marshal in
    Ok(pure(|| parse_u64(&stack[..n])))
}

/// `strtol(s + off, ..., 10)` via marshaling.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strtol<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    maxlen: usize,
) -> Result<Option<(i64, usize)>, Abort> {
    let n = maxlen.min(s.len().saturating_sub(off)).min(41);
    let mut stack = [0u8; 41];
    a.get_range(s, off, &mut stack[..n])?;
    Ok(pure(|| parse_i64(&stack[..n])))
}

/// `atoi(s + off)` via marshaling (0 when no digits are found, as in C).
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn atoi<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
) -> Result<i64, Abort> {
    Ok(strtol(a, s, off, 41)?.map_or(0, |(v, _)| v))
}

/// Writes `text` (formatted privately) into shared memory with C
/// `snprintf` truncation semantics: at most `cap - 1` bytes plus a NUL.
/// Returns the untruncated length, like C.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
///
/// # Panics
///
/// Panics if `doff + min(cap, text-len + 1)` exceeds the buffer, or if
/// `cap == 0` range writes exceed bounds (a zero `cap` writes nothing).
fn snprintf_out<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    cap: usize,
    text: &[u8],
) -> Result<usize, Abort> {
    if cap == 0 {
        return Ok(text.len());
    }
    let n = text.len().min(cap - 1);
    a.put_range(dst, doff, &text[..n])?; // marshal out
    a.put(dst, doff + n, 0)?;
    Ok(text.len())
}

/// `snprintf(dst, cap, "%s", s)` — the string-argument clone.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn snprintf_str<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    cap: usize,
    s: &str,
) -> Result<usize, Abort> {
    let text = pure(|| s.as_bytes().to_vec());
    snprintf_out(a, dst, doff, cap, &text)
}

/// Decimal digit count of `v` (1 for 0): the allocation-free length
/// computation the snprintf clones and `item_make_header` sizing share.
#[inline]
pub fn dec_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        v.ilog10() as usize + 1
    }
}

/// Renders `v` in decimal at the start of `out`, returning the length.
/// Stack-only on purpose: C's `snprintf` formats into caller storage
/// without touching the heap, and the clones must match — a hidden
/// allocation here would put a malloc on every store.
fn fmt_u64(mut v: u64, out: &mut [u8]) -> usize {
    let n = dec_len(v);
    let mut i = n;
    loop {
        i -= 1;
        out[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    n
}

/// Length `snprintf(.., " %u %u\r\n", flags, nbytes)` would produce —
/// the sizing half of `item_make_header`, computed without rendering.
#[inline]
pub fn item_suffix_len(flags: u32, nbytes: u32) -> usize {
    4 + dec_len(flags as u64) + dec_len(nbytes as u64)
}

/// `snprintf(dst, cap, " %u %u\r\n", flags, nbytes)` — the clone memcached
/// uses to build each item's cached response suffix at store time.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn snprintf_item_suffix<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    cap: usize,
    flags: u32,
    nbytes: u32,
) -> Result<usize, Abort> {
    // " " + 10 digits + " " + 10 digits + "\r\n" = 24 bytes max.
    let mut stack = [0u8; 24];
    let mut n = 0;
    stack[n] = b' ';
    n += 1;
    n += fmt_u64(flags as u64, &mut stack[n..]);
    stack[n] = b' ';
    n += 1;
    n += fmt_u64(nbytes as u64, &mut stack[n..]);
    stack[n] = b'\r';
    stack[n + 1] = b'\n';
    n += 2;
    snprintf_out(a, dst, doff, cap, &stack[..n])
}

/// `snprintf(dst, cap, "%llu\r\n", v)` — the clone memcached uses to write
/// `incr`/`decr` results back into the item.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn snprintf_u64_crlf<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    cap: usize,
    v: u64,
) -> Result<usize, Abort> {
    // 20 digits + "\r\n"; stack-only, like the suffix clone above.
    let mut stack = [0u8; 22];
    let mut n = fmt_u64(v, &mut stack);
    stack[n] = b'\r';
    stack[n + 1] = b'\n';
    n += 2;
    snprintf_out(a, dst, doff, cap, &stack[..n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::DirectAccess;

    #[test]
    fn ctype_predicates() {
        assert!(isspace(b' ') && isspace(b'\t') && isspace(b'\n'));
        assert!(!isspace(b'a') && !isspace(b'0'));
        assert!(isdigit(b'0') && isdigit(b'9'));
        assert!(!isdigit(b'a'));
    }

    #[test]
    fn network_byte_order() {
        assert_eq!(htons(0x1234), u16::from_be_bytes([0x12, 0x34]).to_be());
        assert_eq!(htons(11211).to_le_bytes(), 11211u16.to_be_bytes());
        assert_eq!(htonl(0x0102_0304).to_le_bytes(), [1, 2, 3, 4]);
    }

    #[test]
    fn parse_u64_cases() {
        assert_eq!(parse_u64(b"123"), Some((123, 3)));
        assert_eq!(parse_u64(b"  42xyz"), Some((42, 4)));
        assert_eq!(parse_u64(b"xyz"), None);
        assert_eq!(parse_u64(b""), None);
        assert_eq!(
            parse_u64(b"99999999999999999999999999"),
            Some((u64::MAX, 26)),
            "saturating overflow"
        );
    }

    #[test]
    fn parse_i64_signs() {
        assert_eq!(parse_i64(b"-17 "), Some((-17, 3)));
        assert_eq!(parse_i64(b"+8"), Some((8, 2)));
        assert_eq!(parse_i64(b"-"), None);
    }

    #[test]
    fn strtoull_from_shared_memory() {
        let s = TBytes::from_slice(b"  10055\r\n");
        let mut a = DirectAccess;
        assert_eq!(strtoull(&mut a, &s, 0, 9).unwrap(), Some((10055, 7)));
        assert_eq!(strtoull(&mut a, &s, 7, 2).unwrap(), None);
    }

    #[test]
    fn atoi_defaults_to_zero() {
        let s = TBytes::from_slice(b"nope");
        let mut a = DirectAccess;
        assert_eq!(atoi(&mut a, &s, 0).unwrap(), 0);
        let t = TBytes::from_slice(b"-5");
        assert_eq!(atoi(&mut a, &t, 0).unwrap(), -5);
    }

    #[test]
    fn snprintf_truncates_like_c() {
        let d = TBytes::zeroed(8);
        let mut a = DirectAccess;
        let full = snprintf_str(&mut a, &d, 0, 5, "hello world").unwrap();
        assert_eq!(full, 11, "returns untruncated length");
        assert_eq!(&d.to_vec_direct()[..5], b"hell\0");
    }

    #[test]
    fn snprintf_zero_cap_writes_nothing() {
        let d = TBytes::from_slice(&[9; 4]);
        let mut a = DirectAccess;
        assert_eq!(snprintf_str(&mut a, &d, 0, 0, "xy").unwrap(), 2);
        assert_eq!(d.to_vec_direct(), vec![9; 4]);
    }

    #[test]
    fn item_suffix_clone() {
        let d = TBytes::zeroed(32);
        let mut a = DirectAccess;
        let n = snprintf_item_suffix(&mut a, &d, 0, 32, 7, 1024).unwrap();
        assert_eq!(&d.to_vec_direct()[..n], b" 7 1024\r\n");
    }

    #[test]
    fn u64_crlf_clone() {
        let d = TBytes::zeroed(32);
        let mut a = DirectAccess;
        let n = snprintf_u64_crlf(&mut a, &d, 0, 32, 10056).unwrap();
        assert_eq!(&d.to_vec_direct()[..n], b"10056\r\n");
    }

    #[test]
    fn generous_buffer_constants() {
        assert_eq!(GENEROUS_INPUT_BUF, 4096);
        assert_eq!(GENEROUS_OUTPUT_BUF, 8192);
    }
}
