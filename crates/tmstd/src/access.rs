//! The [`ByteAccess`] abstraction: one function body, two "clones".
//!
//! The Draft C++ TM Specification requires the transactional and
//! non-transactional versions of a `transaction_safe` function to be
//! generated from the same source (the paper complains this forbids
//! hand-optimized assembly in either clone). This crate reproduces that
//! property literally: every string/memory function is written once,
//! generic over [`ByteAccess`], and monomorphizes into
//!
//! * an **instrumented clone** via [`TxAccess`] (every byte touched through
//!   the STM, logged and validated), and
//! * an **uninstrumented clone** via [`DirectAccess`] (plain atomic loads
//!   and stores, for lock-based baseline branches and privatized data).

use std::marker::PhantomData;

use tm::{Abort, TBytes, TWord, Transaction};

/// How a string/memory routine touches [`TBytes`] buffers.
///
/// The `'env` lifetime ties buffers to the enclosing transaction's
/// environment, exactly as in [`tm::Transaction`].
pub trait ByteAccess<'env> {
    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access; never for direct.
    fn get(&mut self, b: &'env TBytes, i: usize) -> Result<u8, Abort>;

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access; never for direct.
    fn put(&mut self, b: &'env TBytes, i: usize, v: u8) -> Result<(), Abort>;

    /// Bulk read; the default delegates to [`ByteAccess::get`], but
    /// implementations may move whole words.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    fn get_range(&mut self, b: &'env TBytes, off: usize, dst: &mut [u8]) -> Result<(), Abort> {
        for (k, d) in dst.iter_mut().enumerate() {
            *d = self.get(b, off + k)?;
        }
        Ok(())
    }

    /// Bulk write; see [`ByteAccess::get_range`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    fn put_range(&mut self, b: &'env TBytes, off: usize, src: &[u8]) -> Result<(), Abort> {
        for (k, &v) in src.iter().enumerate() {
            self.put(b, off + k, v)?;
        }
        Ok(())
    }

    /// Reads whole backing words of a [`TBytes`], starting at word index
    /// `wi` — the bulk primitive behind the word-granular
    /// `strlen`/`memcmp` clones (one orec/log entry per 8 bytes under
    /// transactional access). Padding bytes past `b.len()` read as zero.
    ///
    /// The default reconstructs words from byte reads; both built-in
    /// implementations override it.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    ///
    /// # Panics
    ///
    /// Panics if `wi + dst.len() > b.word_count()`.
    fn get_words(&mut self, b: &'env TBytes, wi: usize, dst: &mut [u64]) -> Result<(), Abort> {
        assert!(
            wi.checked_add(dst.len()).is_some_and(|e| e <= b.word_count()),
            "TBytes word range {wi}..{} out of bounds ({} words)",
            wi + dst.len(),
            b.word_count()
        );
        for (j, d) in dst.iter_mut().enumerate() {
            let base = (wi + j) * 8;
            let mut w = 0u64;
            for bi in 0..8usize.min(b.len().saturating_sub(base)) {
                w |= u64::from(self.get(b, base + bi)?) << (bi * 8);
            }
            *d = w;
        }
        Ok(())
    }

    /// Writes whole backing words of a [`TBytes`] starting at word index
    /// `wi`. The caller owns every byte of the covered words; padding
    /// bytes past `b.len()` must be written as zero.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    ///
    /// # Panics
    ///
    /// Panics if `wi + src.len() > b.word_count()`.
    fn put_words(&mut self, b: &'env TBytes, wi: usize, src: &[u64]) -> Result<(), Abort> {
        assert!(
            wi.checked_add(src.len()).is_some_and(|e| e <= b.word_count()),
            "TBytes word range {wi}..{} out of bounds ({} words)",
            wi + src.len(),
            b.word_count()
        );
        for (j, &w) in src.iter().enumerate() {
            let base = (wi + j) * 8;
            let bytes = w.to_le_bytes();
            let n = 8usize.min(b.len().saturating_sub(base));
            for bi in 0..n {
                self.put(b, base + bi, bytes[bi])?;
            }
        }
        Ok(())
    }

    /// Reads one whole [`TWord`] (header fields, pointers, counters).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    fn get_word(&mut self, w: &'env TWord) -> Result<u64, Abort>;

    /// Writes one whole [`TWord`].
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under transactional access.
    fn put_word(&mut self, w: &'env TWord, v: u64) -> Result<(), Abort>;
}

/// Instrumented access through a live transaction.
#[derive(Debug)]
pub struct TxAccess<'a, 'env, T> {
    tx: &'a mut T,
    _env: PhantomData<&'env ()>,
}

impl<'a, 'env, T: Transaction<'env>> TxAccess<'a, 'env, T> {
    /// Wraps a transaction for use with the string/memory routines.
    pub fn new(tx: &'a mut T) -> Self {
        TxAccess {
            tx,
            _env: PhantomData,
        }
    }
}

impl<'env, T: Transaction<'env>> ByteAccess<'env> for TxAccess<'_, 'env, T> {
    #[inline]
    fn get(&mut self, b: &'env TBytes, i: usize) -> Result<u8, Abort> {
        self.tx.read_byte(b, i)
    }

    #[inline]
    fn put(&mut self, b: &'env TBytes, i: usize, v: u8) -> Result<(), Abort> {
        self.tx.write_byte(b, i, v)
    }

    fn get_range(&mut self, b: &'env TBytes, off: usize, dst: &mut [u8]) -> Result<(), Abort> {
        self.tx.read_bytes(b, off, dst)
    }

    fn put_range(&mut self, b: &'env TBytes, off: usize, src: &[u8]) -> Result<(), Abort> {
        self.tx.write_bytes(b, off, src)
    }

    fn get_words(&mut self, b: &'env TBytes, wi: usize, dst: &mut [u64]) -> Result<(), Abort> {
        self.tx.read_words(b, wi, dst)
    }

    fn put_words(&mut self, b: &'env TBytes, wi: usize, src: &[u64]) -> Result<(), Abort> {
        self.tx.write_words(b, wi, src)
    }

    fn get_word(&mut self, w: &'env TWord) -> Result<u64, Abort> {
        self.tx.read_word(w)
    }

    fn put_word(&mut self, w: &'env TWord, v: u64) -> Result<(), Abort> {
        self.tx.write_word(w, v)
    }
}

/// Uninstrumented access: the "non-transactional clone". Infallible in
/// practice (every method returns `Ok`).
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectAccess;

impl<'env> ByteAccess<'env> for DirectAccess {
    #[inline]
    fn get(&mut self, b: &'env TBytes, i: usize) -> Result<u8, Abort> {
        Ok(b.load_byte_direct(i))
    }

    #[inline]
    fn put(&mut self, b: &'env TBytes, i: usize, v: u8) -> Result<(), Abort> {
        b.store_byte_direct(i, v);
        Ok(())
    }

    fn get_range(&mut self, b: &'env TBytes, off: usize, dst: &mut [u8]) -> Result<(), Abort> {
        b.load_slice_direct(off, dst);
        Ok(())
    }

    fn put_range(&mut self, b: &'env TBytes, off: usize, src: &[u8]) -> Result<(), Abort> {
        b.store_slice_direct(off, src);
        Ok(())
    }

    fn get_words(&mut self, b: &'env TBytes, wi: usize, dst: &mut [u64]) -> Result<(), Abort> {
        for (j, d) in dst.iter_mut().enumerate() {
            *d = b.load_word_direct(wi + j);
        }
        Ok(())
    }

    fn put_words(&mut self, b: &'env TBytes, wi: usize, src: &[u64]) -> Result<(), Abort> {
        for (j, &w) in src.iter().enumerate() {
            b.store_word_direct(wi + j, w);
        }
        Ok(())
    }

    fn get_word(&mut self, w: &'env TWord) -> Result<u64, Abort> {
        Ok(w.load_direct())
    }

    fn put_word(&mut self, w: &'env TWord, v: u64) -> Result<(), Abort> {
        w.store_direct(v);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm::TmRuntime;

    #[test]
    fn direct_access_roundtrip() {
        let b = TBytes::zeroed(8);
        let mut a = DirectAccess;
        a.put(&b, 0, 42).unwrap();
        assert_eq!(a.get(&b, 0).unwrap(), 42);
        a.put_range(&b, 2, b"abc").unwrap();
        let mut out = [0u8; 3];
        a.get_range(&b, 2, &mut out).unwrap();
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn tx_access_roundtrip() {
        let rt = TmRuntime::default_runtime();
        let b = TBytes::zeroed(8);
        rt.atomic(|tx| {
            let mut a = TxAccess::new(tx);
            a.put_range(&b, 1, b"xyz")?;
            let mut out = [0u8; 3];
            a.get_range(&b, 1, &mut out)?;
            assert_eq!(&out, b"xyz");
            Ok(())
        });
        assert_eq!(b.load_byte_direct(2), b'y');
    }
}
