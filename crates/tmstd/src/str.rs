//! Transaction-safe reimplementations of the basic string functions the
//! paper lists in §3.4: `strlen`, `strncmp`, `strncpy`, `strchr` (plus
//! `strnlen` as the bounded form every real use in memcached wants).
//!
//! The scanning functions are word-granular: one transactional access per
//! 8 bytes via [`ByteAccess::get_words`], with SWAR zero-byte detection on
//! the loaded words and byte-granularity handling of the unaligned head
//! and the sub-word tail. This is the half of the paper's `memcpy`-tax
//! argument that applies to *reads*: under the buffered-update algorithms
//! every byte access used to cost a redo-map probe plus a full word log
//! entry, eight times over per word of string.

use tm::{Abort, TBytes};

use crate::access::ByteAccess;

/// Position (0..8, little-endian byte order) of the first zero byte in
/// `w`, if any. The classic SWAR trick: `(w - 0x01..01) & !w & 0x80..80`
/// has the high bit set exactly at zero bytes at or below the first
/// borrow, and no false positive can precede the first true zero byte.
#[inline]
fn zero_byte_pos(w: u64) -> Option<usize> {
    let m = w.wrapping_sub(0x0101_0101_0101_0101) & !w & 0x8080_8080_8080_8080;
    if m == 0 {
        None
    } else {
        Some(m.trailing_zeros() as usize / 8)
    }
}

/// `strlen(s + off)`: bytes before the first NUL.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
///
/// Returns `Err`? No — a string with no NUL inside the buffer is a caller
/// bug in C; here the scan safely stops at the buffer end and the result is
/// `s.len() - off` (the bounded behavior of `strnlen`).
pub fn strlen<'e, A: ByteAccess<'e>>(a: &mut A, s: &'e TBytes, off: usize) -> Result<usize, Abort> {
    strnlen(a, s, off, s.len().saturating_sub(off))
}

/// `strnlen(s + off, maxlen)`.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strnlen<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    maxlen: usize,
) -> Result<usize, Abort> {
    let limit = maxlen.min(s.len().saturating_sub(off));
    let mut k = 0;
    // Byte-granularity head up to word alignment.
    while k < limit && (off + k) % 8 != 0 {
        if a.get(s, off + k)? == 0 {
            return Ok(k);
        }
        k += 1;
    }
    // Word-granular SWAR scan over the aligned middle.
    while limit - k >= 8 {
        let mut w = [0u64; 1];
        a.get_words(s, (off + k) / 8, &mut w)?;
        if let Some(p) = zero_byte_pos(w[0]) {
            return Ok(k + p);
        }
        k += 8;
    }
    // Byte-granularity tail.
    while k < limit {
        if a.get(s, off + k)? == 0 {
            return Ok(k);
        }
        k += 1;
    }
    Ok(limit)
}

/// `strncmp(s + off, t, n)` against a thread-local second operand, with C
/// semantics: comparison stops at a NUL in either string.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strncmp<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    t: &[u8],
    n: usize,
) -> Result<i32, Abort> {
    // Chunked word-granular reads of `s` (get_range handles unaligned
    // head/tail at byte granularity); the compare itself stays byte-wise
    // for the NUL-stop semantics.
    let mut buf = [0u8; 32];
    let mut k = 0;
    while k < n {
        let m = (n - k).min(buf.len()).min(s.len().saturating_sub(off + k));
        if m == 0 {
            // Past the buffer end `s` reads as NUL, which ends the
            // comparison either way.
            return Ok(-i32::from(t.get(k).copied().unwrap_or(0)));
        }
        a.get_range(s, off + k, &mut buf[..m])?;
        for j in 0..m {
            let sb = buf[j];
            let tb = t.get(k + j).copied().unwrap_or(0);
            if sb != tb {
                return Ok(i32::from(sb) - i32::from(tb));
            }
            if sb == 0 {
                return Ok(0);
            }
        }
        k += m;
    }
    Ok(0)
}

/// `strncpy(dst + doff, src, n)` with C semantics: copies at most `n`
/// bytes, stopping after a NUL and padding the remainder with NULs.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
///
/// # Panics
///
/// Panics if `doff + n` exceeds the destination buffer.
pub fn strncpy<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    src: &[u8],
    n: usize,
) -> Result<(), Abort> {
    // Bulk-copy up to the source NUL, then bulk-pad with NULs — both
    // word-granular through put_range instead of one put per byte.
    let copy = src
        .iter()
        .position(|&b| b == 0)
        .unwrap_or(src.len())
        .min(n);
    a.put_range(dst, doff, &src[..copy])?;
    let zeros = [0u8; 64];
    let mut k = copy;
    while k < n {
        let m = (n - k).min(zeros.len());
        a.put_range(dst, doff + k, &zeros[..m])?;
        k += m;
    }
    Ok(())
}

/// `strchr(s + off, c)` bounded by the buffer (and by a NUL, as in C):
/// index of the first occurrence of `c`, relative to `off`.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strchr<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    c: u8,
) -> Result<Option<usize>, Abort> {
    let limit = s.len().saturating_sub(off);
    let mut k = 0;
    // Byte-granularity head up to word alignment.
    while k < limit && (off + k) % 8 != 0 {
        let b = a.get(s, off + k)?;
        if b == c {
            return Ok(Some(k));
        }
        if b == 0 {
            // NUL terminates the search; NUL itself is findable (C allows
            // strchr(s, '\0')).
            return Ok(if c == 0 { Some(k) } else { None });
        }
        k += 1;
    }
    // Word-granular middle: SWAR-search each word for both `c` (xor with
    // the broadcast byte turns matches into zero bytes) and NUL.
    let broadcast = u64::from(c) * 0x0101_0101_0101_0101;
    while limit - k >= 8 {
        let mut w = [0u64; 1];
        a.get_words(s, (off + k) / 8, &mut w)?;
        let cpos = zero_byte_pos(w[0] ^ broadcast);
        let zpos = zero_byte_pos(w[0]);
        if let Some(cp) = cpos {
            if zpos.map_or(true, |z| cp <= z) {
                return Ok(Some(k + cp));
            }
        }
        if zpos.is_some() {
            return Ok(None); // NUL before any match (c == 0 hits cpos first)
        }
        k += 8;
    }
    // Byte-granularity tail.
    while k < limit {
        let b = a.get(s, off + k)?;
        if b == c {
            return Ok(Some(k));
        }
        if b == 0 {
            return Ok(if c == 0 { Some(k) } else { None });
        }
        k += 1;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{DirectAccess, TxAccess};
    use tm::TmRuntime;

    #[test]
    fn strlen_stops_at_nul() {
        let s = TBytes::from_slice(b"hello\0world");
        let mut a = DirectAccess;
        assert_eq!(strlen(&mut a, &s, 0).unwrap(), 5);
        assert_eq!(strlen(&mut a, &s, 6).unwrap(), 5);
    }

    #[test]
    fn strlen_without_nul_is_bounded() {
        let s = TBytes::from_slice(b"abc");
        let mut a = DirectAccess;
        assert_eq!(strlen(&mut a, &s, 0).unwrap(), 3);
    }

    #[test]
    fn strnlen_bounds() {
        let s = TBytes::from_slice(b"abcdef");
        let mut a = DirectAccess;
        assert_eq!(strnlen(&mut a, &s, 0, 4).unwrap(), 4);
        assert_eq!(strnlen(&mut a, &s, 4, 100).unwrap(), 2);
    }

    #[test]
    fn strncmp_c_semantics() {
        let s = TBytes::from_slice(b"get \0junk");
        let mut a = DirectAccess;
        assert_eq!(strncmp(&mut a, &s, 0, b"get ", 4).unwrap(), 0);
        assert!(strncmp(&mut a, &s, 0, b"gex ", 4).unwrap() < 0);
        // NUL stops comparison even when n is larger.
        assert_eq!(strncmp(&mut a, &s, 0, b"get \0zzz", 8).unwrap(), 0);
    }

    #[test]
    fn strncpy_pads_with_nuls() {
        let d = TBytes::from_slice(&[0xFF; 8]);
        let mut a = DirectAccess;
        strncpy(&mut a, &d, 0, b"ab\0cd", 6).unwrap();
        assert_eq!(d.to_vec_direct(), vec![b'a', b'b', 0, 0, 0, 0, 0xFF, 0xFF]);
    }

    #[test]
    fn strchr_finds_and_respects_nul() {
        let s = TBytes::from_slice(b"key=value\0garbage=");
        let mut a = DirectAccess;
        assert_eq!(strchr(&mut a, &s, 0, b'=').unwrap(), Some(3));
        assert_eq!(strchr(&mut a, &s, 4, b'=').unwrap(), None, "second '=' is past the NUL");
        assert_eq!(strchr(&mut a, &s, 0, 0).unwrap(), Some(9));
        assert_eq!(strchr(&mut a, &s, 0, b'!').unwrap(), None);
    }

    #[test]
    fn transactional_clone_agrees_with_direct() {
        let rt = TmRuntime::default_runtime();
        let s = TBytes::from_slice(b"stats items\0");
        let tx_len = rt.atomic(|tx| {
            let mut a = TxAccess::new(tx);
            strlen(&mut a, &s, 0)
        });
        let mut d = DirectAccess;
        assert_eq!(tx_len, strlen(&mut d, &s, 0).unwrap());
    }
}
