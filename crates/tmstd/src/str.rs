//! Transaction-safe reimplementations of the basic string functions the
//! paper lists in §3.4: `strlen`, `strncmp`, `strncpy`, `strchr` (plus
//! `strnlen` as the bounded form every real use in memcached wants).

use tm::{Abort, TBytes};

use crate::access::ByteAccess;

/// `strlen(s + off)`: bytes before the first NUL.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
///
/// Returns `Err`? No — a string with no NUL inside the buffer is a caller
/// bug in C; here the scan safely stops at the buffer end and the result is
/// `s.len() - off` (the bounded behavior of `strnlen`).
pub fn strlen<'e, A: ByteAccess<'e>>(a: &mut A, s: &'e TBytes, off: usize) -> Result<usize, Abort> {
    strnlen(a, s, off, s.len().saturating_sub(off))
}

/// `strnlen(s + off, maxlen)`.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strnlen<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    maxlen: usize,
) -> Result<usize, Abort> {
    let limit = maxlen.min(s.len().saturating_sub(off));
    for k in 0..limit {
        if a.get(s, off + k)? == 0 {
            return Ok(k);
        }
    }
    Ok(limit)
}

/// `strncmp(s + off, t, n)` against a thread-local second operand, with C
/// semantics: comparison stops at a NUL in either string.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strncmp<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    t: &[u8],
    n: usize,
) -> Result<i32, Abort> {
    for k in 0..n {
        let sb = if off + k < s.len() { a.get(s, off + k)? } else { 0 };
        let tb = t.get(k).copied().unwrap_or(0);
        if sb != tb {
            return Ok(sb as i32 - tb as i32);
        }
        if sb == 0 {
            return Ok(0);
        }
    }
    Ok(0)
}

/// `strncpy(dst + doff, src, n)` with C semantics: copies at most `n`
/// bytes, stopping after a NUL and padding the remainder with NULs.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
///
/// # Panics
///
/// Panics if `doff + n` exceeds the destination buffer.
pub fn strncpy<'e, A: ByteAccess<'e>>(
    a: &mut A,
    dst: &'e TBytes,
    doff: usize,
    src: &[u8],
    n: usize,
) -> Result<(), Abort> {
    let mut hit_nul = false;
    for k in 0..n {
        let b = if hit_nul {
            0
        } else {
            let b = src.get(k).copied().unwrap_or(0);
            if b == 0 {
                hit_nul = true;
            }
            b
        };
        a.put(dst, doff + k, b)?;
    }
    Ok(())
}

/// `strchr(s + off, c)` bounded by the buffer (and by a NUL, as in C):
/// index of the first occurrence of `c`, relative to `off`.
///
/// # Errors
///
/// [`Abort::Conflict`] under transactional access.
pub fn strchr<'e, A: ByteAccess<'e>>(
    a: &mut A,
    s: &'e TBytes,
    off: usize,
    c: u8,
) -> Result<Option<usize>, Abort> {
    for k in 0..s.len().saturating_sub(off) {
        let b = a.get(s, off + k)?;
        if b == c {
            return Ok(Some(k));
        }
        if b == 0 {
            // NUL terminates the search; NUL itself is findable (C allows
            // strchr(s, '\0')).
            return Ok(if c == 0 { Some(k) } else { None });
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{DirectAccess, TxAccess};
    use tm::TmRuntime;

    #[test]
    fn strlen_stops_at_nul() {
        let s = TBytes::from_slice(b"hello\0world");
        let mut a = DirectAccess;
        assert_eq!(strlen(&mut a, &s, 0).unwrap(), 5);
        assert_eq!(strlen(&mut a, &s, 6).unwrap(), 5);
    }

    #[test]
    fn strlen_without_nul_is_bounded() {
        let s = TBytes::from_slice(b"abc");
        let mut a = DirectAccess;
        assert_eq!(strlen(&mut a, &s, 0).unwrap(), 3);
    }

    #[test]
    fn strnlen_bounds() {
        let s = TBytes::from_slice(b"abcdef");
        let mut a = DirectAccess;
        assert_eq!(strnlen(&mut a, &s, 0, 4).unwrap(), 4);
        assert_eq!(strnlen(&mut a, &s, 4, 100).unwrap(), 2);
    }

    #[test]
    fn strncmp_c_semantics() {
        let s = TBytes::from_slice(b"get \0junk");
        let mut a = DirectAccess;
        assert_eq!(strncmp(&mut a, &s, 0, b"get ", 4).unwrap(), 0);
        assert!(strncmp(&mut a, &s, 0, b"gex ", 4).unwrap() < 0);
        // NUL stops comparison even when n is larger.
        assert_eq!(strncmp(&mut a, &s, 0, b"get \0zzz", 8).unwrap(), 0);
    }

    #[test]
    fn strncpy_pads_with_nuls() {
        let d = TBytes::from_slice(&[0xFF; 8]);
        let mut a = DirectAccess;
        strncpy(&mut a, &d, 0, b"ab\0cd", 6).unwrap();
        assert_eq!(d.to_vec_direct(), vec![b'a', b'b', 0, 0, 0, 0, 0xFF, 0xFF]);
    }

    #[test]
    fn strchr_finds_and_respects_nul() {
        let s = TBytes::from_slice(b"key=value\0garbage=");
        let mut a = DirectAccess;
        assert_eq!(strchr(&mut a, &s, 0, b'=').unwrap(), Some(3));
        assert_eq!(strchr(&mut a, &s, 4, b'=').unwrap(), None, "second '=' is past the NUL");
        assert_eq!(strchr(&mut a, &s, 0, 0).unwrap(), Some(9));
        assert_eq!(strchr(&mut a, &s, 0, b'!').unwrap(), None);
    }

    #[test]
    fn transactional_clone_agrees_with_direct() {
        let rt = TmRuntime::default_runtime();
        let s = TBytes::from_slice(b"stats items\0");
        let tx_len = rt.atomic(|tx| {
            let mut a = TxAccess::new(tx);
            strlen(&mut a, &s, 0)
        });
        let mut d = DirectAccess;
        assert_eq!(tx_len, strlen(&mut d, &s, 0).unwrap());
    }
}
