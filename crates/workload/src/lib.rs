//! # workload — a memslap-style load generator
//!
//! The paper drove memcached with `memslap --concurrency=x
//! --execute-number=625000 --binary` (libmemcached 0.31), co-located with
//! the server so that network overhead could not hide transaction latency.
//! This crate reproduces the generator side in-process: each worker thread
//! receives a deterministic stream of `get`/`set` operations over a shared
//! keyspace, with memslap's defaults (90% get / 10% set, 64-byte keys,
//! 1 KiB values) and an optional hot-key skew used by the ablation benches.
//!
//! ```
//! use workload::{Workload, Op};
//!
//! let w = Workload::builder()
//!     .key_count(100)
//!     .execute_number(1000)
//!     .value_size(64)
//!     .build();
//! let mut sets = 0usize;
//! for op in w.stream(0) {
//!     if let Op::Set(k) = op {
//!         assert!(k < 100);
//!         sets += 1;
//!     }
//! }
//! assert!(sets > 0 && sets < 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync::Arc;

use testkit::rng::{Rng, SmallRng};

/// One client operation, naming a key by index into the shared keyspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Retrieve the key's value.
    Get(usize),
    /// Store the key's (deterministic) value.
    Set(usize),
    /// Delete the key.
    Delete(usize),
    /// Increment a numeric value by the given delta.
    Incr(usize, u64),
}

impl Op {
    /// The key index this operation targets.
    pub fn key_index(&self) -> usize {
        match *self {
            Op::Get(k) | Op::Set(k) | Op::Delete(k) | Op::Incr(k, _) => k,
        }
    }
}

/// Relative operation weights. memslap's default division is 90% get /
/// 10% set; `delete` and `incr` default to zero but are exercised by the
/// integration tests and ablation benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpMix {
    /// Weight of [`Op::Get`].
    pub get: u32,
    /// Weight of [`Op::Set`].
    pub set: u32,
    /// Weight of [`Op::Delete`].
    pub delete: u32,
    /// Weight of [`Op::Incr`].
    pub incr: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            get: 9,
            set: 1,
            delete: 0,
            incr: 0,
        }
    }
}

impl OpMix {
    fn total(&self) -> u32 {
        self.get + self.set + self.delete + self.incr
    }
}

/// Builds a [`Workload`].
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    concurrency: usize,
    execute_number: usize,
    key_count: usize,
    key_size: usize,
    value_size: usize,
    /// Upper bound for uniform per-key value sizes; 0 = fixed
    /// `value_size` for every key.
    value_size_max: usize,
    mix: OpMix,
    hot_fraction: f64,
    hot_probability: f64,
    zipf_theta: f64,
    seed: u64,
    binary: bool,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        WorkloadBuilder {
            concurrency: 4,
            execute_number: 10_000,
            key_count: 10_000,
            key_size: 64,
            value_size: 1024,
            value_size_max: 0,
            mix: OpMix::default(),
            hot_fraction: 0.0,
            hot_probability: 0.0,
            zipf_theta: 0.0,
            seed: 0x6d656d736c6170, // "memslap"
            binary: true,
        }
    }
}

impl WorkloadBuilder {
    /// Number of client threads (memslap `--concurrency`).
    pub fn concurrency(mut self, n: usize) -> Self {
        self.concurrency = n;
        self
    }

    /// Operations per thread (memslap `--execute-number`; the paper used
    /// 625 000).
    pub fn execute_number(mut self, n: usize) -> Self {
        self.execute_number = n;
        self
    }

    /// Size of the shared keyspace.
    pub fn key_count(mut self, n: usize) -> Self {
        self.key_count = n.max(1);
        self
    }

    /// Key length in bytes (keys are a prefix plus a zero-padded index,
    /// padded to this length).
    pub fn key_size(mut self, n: usize) -> Self {
        self.key_size = n.clamp(16, 250);
        self
    }

    /// Value length in bytes.
    pub fn value_size(mut self, n: usize) -> Self {
        self.value_size = n.max(1);
        self.value_size_max = 0;
        self
    }

    /// Value length *distribution*: per-key sizes drawn uniformly (and
    /// deterministically — the size is a pure function of the key index)
    /// from `min..=max`, so a store mix spreads across several slab
    /// classes the way memslap's `--value-size-range` does.
    /// [`Self::value_size`] is the fixed special case.
    pub fn value_size_range(mut self, min: usize, max: usize) -> Self {
        self.value_size = min.max(1);
        self.value_size_max = max.max(self.value_size);
        self
    }

    /// Operation mix.
    pub fn mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Hot-key skew: with probability `probability` an operation targets
    /// the first `fraction` of the keyspace. `(0.0, 0.0)` (the default)
    /// gives memslap's uniform distribution.
    pub fn skew(mut self, fraction: f64, probability: f64) -> Self {
        self.hot_fraction = fraction.clamp(0.0, 1.0);
        self.hot_probability = probability.clamp(0.0, 1.0);
        self
    }

    /// Zipfian key popularity with exponent `theta` in `[0, 1)`: key
    /// index 0 is the hottest, index 1 the second-hottest, and so on
    /// (ranks are *not* scrambled, so tests and the hot-key benches know
    /// exactly which keys are hot). `theta = 0` restores the uniform
    /// distribution; YCSB's default skew is `0.99`. Overrides
    /// [`Self::skew`] when set.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `[0.0, 1.0)` (the Gray et al.
    /// generator below needs `theta < 1`; hotter skews than 0.99 are not
    /// meaningfully different for cache workloads).
    pub fn zipf(mut self, theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "zipf theta {theta} outside [0, 1)"
        );
        self.zipf_theta = theta;
        self
    }

    /// RNG seed; streams are deterministic in (seed, thread id).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// memslap `--binary`: whether clients speak the binary protocol.
    pub fn binary(mut self, binary: bool) -> Self {
        self.binary = binary;
        self
    }

    /// Builds the workload, pre-rendering the keyspace.
    ///
    /// # Panics
    ///
    /// Panics if the operation mix has zero total weight.
    pub fn build(self) -> Workload {
        assert!(self.mix.total() > 0, "operation mix must have nonzero weight");
        let keys: Vec<Arc<[u8]>> = (0..self.key_count)
            .map(|i| {
                let mut k = format!("memslap-{i:012}").into_bytes();
                while k.len() < self.key_size {
                    k.push(b'.');
                }
                k.truncate(self.key_size);
                Arc::from(k.into_boxed_slice())
            })
            .collect();
        let zipf = (self.zipf_theta > 0.0).then(|| Zipf::new(self.key_count, self.zipf_theta));
        Workload {
            keys,
            zipf,
            cfg: self,
        }
    }
}

/// Precomputed state for Zipfian(θ) rank draws over `0..n`, using the
/// analytic inversion from Gray et al., *Quickly Generating
/// Billion-Record Synthetic Databases* (SIGMOD '94) — the same generator
/// YCSB uses. Building is `O(n)` (one pass to sum the zeta series); each
/// draw is then `O(1)`, so streams stay cheap and, crucially for this
/// workspace, fully deterministic in the seed.
#[derive(Clone, Copy, Debug)]
struct Zipf {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: usize, theta: f64) -> Zipf {
        let n = n.max(1);
        let zetan = zeta(n, theta);
        let zeta2 = zeta(n.min(2), theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Draws a rank in `0..n`; rank 0 is the most popular.
    fn draw(&self, rng: &mut SmallRng) -> usize {
        // 53 random bits -> u uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize;
        r.min(self.n - 1)
    }
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// A fully-specified workload: configuration plus the rendered keyspace.
#[derive(Clone)]
pub struct Workload {
    cfg: WorkloadBuilder,
    keys: Vec<Arc<[u8]>>,
    zipf: Option<Zipf>,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("concurrency", &self.cfg.concurrency)
            .field("execute_number", &self.cfg.execute_number)
            .field("key_count", &self.keys.len())
            .field("value_size", &self.cfg.value_size)
            .finish()
    }
}

impl Workload {
    /// Starts building a workload with memslap defaults.
    pub fn builder() -> WorkloadBuilder {
        WorkloadBuilder::default()
    }

    /// Number of client threads.
    pub fn concurrency(&self) -> usize {
        self.cfg.concurrency
    }

    /// Operations per thread.
    pub fn execute_number(&self) -> usize {
        self.cfg.execute_number
    }

    /// Configured value size.
    pub fn value_size(&self) -> usize {
        self.cfg.value_size
    }

    /// Whether clients use the binary protocol.
    pub fn binary(&self) -> bool {
        self.cfg.binary
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// The rendered key for index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= key_count()`.
    pub fn key(&self, i: usize) -> &Arc<[u8]> {
        &self.keys[i]
    }

    /// The value length for key `i`: the fixed `value_size`, or a
    /// deterministic uniform draw from the configured range.
    pub fn value_len(&self, i: usize) -> usize {
        let min = self.cfg.value_size;
        let max = self.cfg.value_size_max;
        if max <= min {
            return min;
        }
        // SplitMix64 finalizer over the key index: size is a pure
        // function of the key, so every generation of a key has the same
        // length and readers can verify it.
        let mut h = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        min + (h % (max - min + 1) as u64) as usize
    }

    /// The deterministic value stored for key `i`: a repeating pattern
    /// derived from the index, so readers can verify payload integrity.
    pub fn value(&self, i: usize) -> Vec<u8> {
        let mut v = vec![0u8; self.value_len(i)];
        fill_value(i, &mut v);
        v
    }

    /// Verifies that `data` is a value produced by [`Workload::value`] for
    /// key `i` (any stored generation matches, since values depend only on
    /// the key).
    pub fn verify_value(&self, i: usize, data: &[u8]) -> bool {
        if data.len() != self.value_len(i) {
            return false;
        }
        let mut expect = vec![0u8; data.len()];
        fill_value(i, &mut expect);
        expect == data
    }

    /// The operation stream for one client thread. Streams are
    /// deterministic in (seed, `thread_id`) and independent across threads.
    pub fn stream(&self, thread_id: usize) -> OpStream {
        OpStream {
            rng: SmallRng::seed_from_u64(
                self.cfg
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(thread_id as u64 + 1),
            ),
            remaining: self.cfg.execute_number,
            key_count: self.keys.len(),
            mix: self.cfg.mix,
            hot_fraction: self.cfg.hot_fraction,
            hot_probability: self.cfg.hot_probability,
            zipf: self.zipf,
        }
    }

    /// The configured Zipfian exponent (0 = uniform keys).
    pub fn zipf_theta(&self) -> f64 {
        self.cfg.zipf_theta
    }
}

fn fill_value(key_index: usize, out: &mut [u8]) {
    let mut x = key_index as u64 ^ 0xA076_1D64_78BD_642F;
    for b in out.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *b = x as u8;
    }
}

/// Iterator over one thread's operations.
#[derive(Debug, Clone)]
pub struct OpStream {
    rng: SmallRng,
    remaining: usize,
    key_count: usize,
    mix: OpMix,
    hot_fraction: f64,
    hot_probability: f64,
    zipf: Option<Zipf>,
}

impl OpStream {
    fn pick_key(&mut self) -> usize {
        if let Some(z) = &self.zipf {
            z.draw(&mut self.rng)
        } else if self.hot_probability > 0.0 && self.rng.gen_bool(self.hot_probability) {
            let hot = ((self.key_count as f64 * self.hot_fraction) as usize).max(1);
            self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(0..self.key_count)
        }
    }
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let k = self.pick_key();
        let roll = self.rng.gen_range(0..self.mix.total());
        let op = if roll < self.mix.get {
            Op::Get(k)
        } else if roll < self.mix.get + self.mix.set {
            Op::Set(k)
        } else if roll < self.mix.get + self.mix.set + self.mix.delete {
            Op::Delete(k)
        } else {
            Op::Incr(k, 1)
        };
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for OpStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn streams_are_deterministic() {
        let w = Workload::builder().execute_number(500).build();
        let a: Vec<Op> = w.stream(3).collect();
        let b: Vec<Op> = w.stream(3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_across_threads() {
        let w = Workload::builder().execute_number(500).build();
        let a: Vec<Op> = w.stream(0).collect();
        let b: Vec<Op> = w.stream(1).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn default_mix_is_ninety_ten() {
        let w = Workload::builder().execute_number(20_000).build();
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for op in w.stream(0) {
            *counts
                .entry(match op {
                    Op::Get(_) => "get",
                    Op::Set(_) => "set",
                    Op::Delete(_) => "delete",
                    Op::Incr(..) => "incr",
                })
                .or_default() += 1;
        }
        let gets = counts["get"] as f64 / 20_000.0;
        assert!((0.88..0.92).contains(&gets), "get fraction {gets}");
        assert!(!counts.contains_key("delete"));
    }

    #[test]
    fn keys_have_fixed_size_and_are_distinct() {
        let w = Workload::builder().key_count(100).key_size(64).build();
        for i in 0..100 {
            assert_eq!(w.key(i).len(), 64);
        }
        assert_ne!(w.key(0), w.key(99));
        assert!(w.key(5).starts_with(b"memslap-"));
    }

    #[test]
    fn values_verify() {
        let w = Workload::builder().value_size(128).build();
        let v = w.value(7);
        assert_eq!(v.len(), 128);
        assert!(w.verify_value(7, &v));
        assert!(!w.verify_value(8, &v));
        assert!(!w.verify_value(7, &v[..100]));
    }

    #[test]
    fn skew_concentrates_traffic() {
        let w = Workload::builder()
            .key_count(1000)
            .execute_number(10_000)
            .skew(0.01, 0.9)
            .build();
        let hot_hits = w.stream(0).filter(|op| op.key_index() < 10).count();
        assert!(
            hot_hits > 8_000,
            "expected ~90% of ops on the hot 1%: {hot_hits}"
        );
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let w = Workload::builder()
            .key_count(1000)
            .execute_number(20_000)
            .zipf(0.99)
            .build();
        let mut counts = vec![0usize; 1000];
        for op in w.stream(0) {
            counts[op.key_index()] += 1;
        }
        // Under θ=0.99 the head dominates: rank 0 alone draws ~1/ζ(n) of
        // traffic (about 1/8 for n=1000), and the top 10 ranks well over
        // a third. Uniform would put 1% on the top 10.
        assert!(counts[0] > 1_000, "rank 0 drew only {}", counts[0]);
        let top10: usize = counts[..10].iter().sum();
        assert!(top10 > 20_000 / 3, "top-10 ranks drew only {top10}");
        assert!(
            counts[0] >= counts[500],
            "head rank colder than the tail: {} vs {}",
            counts[0],
            counts[500]
        );
    }

    #[test]
    fn zipf_streams_are_deterministic_and_cover_the_tail() {
        let w = Workload::builder()
            .key_count(100)
            .execute_number(5_000)
            .zipf(0.9)
            .build();
        let a: Vec<Op> = w.stream(1).collect();
        let b: Vec<Op> = w.stream(1).collect();
        assert_eq!(a, b);
        let max_key = a.iter().map(|op| op.key_index()).max().unwrap();
        assert!(max_key > 50, "tail never sampled (max key {max_key})");
        assert!(max_key < 100);
    }

    #[test]
    fn zipf_single_key_keyspace() {
        let w = Workload::builder()
            .key_count(1)
            .execute_number(100)
            .zipf(0.5)
            .build();
        assert!(w.stream(0).all(|op| op.key_index() == 0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn zipf_theta_one_rejected() {
        let _ = Workload::builder().zipf(1.0);
    }

    #[test]
    fn exact_size_stream() {
        let w = Workload::builder().execute_number(123).build();
        let s = w.stream(0);
        assert_eq!(s.len(), 123);
        assert_eq!(s.count(), 123);
    }

    #[test]
    #[should_panic(expected = "nonzero weight")]
    fn zero_mix_rejected() {
        let _ = Workload::builder()
            .mix(OpMix {
                get: 0,
                set: 0,
                delete: 0,
                incr: 0,
            })
            .build();
    }

    #[test]
    fn incr_ops_generated_when_weighted() {
        let w = Workload::builder()
            .mix(OpMix {
                get: 1,
                set: 1,
                delete: 1,
                incr: 1,
            })
            .execute_number(1000)
            .build();
        assert!(w.stream(0).any(|op| matches!(op, Op::Incr(_, 1))));
        assert!(w.stream(0).any(|op| matches!(op, Op::Delete(_))));
    }
}
