//! Adaptive-runtime benches: what the feedback-loop machinery costs and
//! what the hot-key privatized path buys (DESIGN.md §15).
//!
//! Groups:
//!
//! * `adaptpath_hot` — single-key GETs, two paired arms: the key armed
//!   in the hot set (served from the privatized copy, no transaction)
//!   vs the same GET on a hot-free cache (read-only fast-lane
//!   transaction). Interleaved via `bench_pair`, so the ratio is stable
//!   across host-noise epochs. A second pair measures the *unarmed*
//!   overhead: the probe + popularity-sketch cost a cold key pays when
//!   `hot_slots` is on but the key is not hot.
//! * `adaptpath_ctl` — the controller's own costs: one synchronous
//!   `adapt_tick` epoch over a populated cache (stat sweep + sketch
//!   drain + policy), and one full quiesce-and-swap `switch_config`
//!   round trip on a bare runtime.
//!
//! Gates: the armed arm must actually serve privatized hits and the
//! switch arm must count every switch — silent fall-through to the
//! transactional path would otherwise benchmark the wrong code.
//! Absolute drift is caught by the committed `BENCH_adaptpath_*.json`
//! baselines through the bench_compare gate; the hot-vs-tx ratio itself
//! is reported, not gated — on a single-core host the two paths are
//! close enough that a hard floor would flake.

use std::hint::black_box;

use mcache::{Branch, McCache, McConfig, McHandle, Stage};
use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};
use tm::{Algorithm, ContentionManager, TmRuntime};

const VALUE: &[u8] = &[0x5a; 100];
const HOT_KEY: &[u8] = b"adapt:hot:key";

fn cache(hot_slots: usize) -> McHandle {
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 1,
        hot_slots,
        // The §5 pure-read lane: the fair comparison point, since the
        // adaptive controller requires it to see read-only commits.
        refcount_elision: true,
        ..Default::default()
    });
    assert_eq!(
        handle.set(0, HOT_KEY, VALUE, 0, 0),
        mcache::StoreStatus::Stored
    );
    handle
}

fn bench_hot(c: &mut Criterion) {
    let plain = cache(0);
    let armed = cache(64);
    armed.hot_install_keys(&[HOT_KEY]);
    // Prime the privatized copy: the first GET after arming repopulates.
    assert!(armed.get(0, HOT_KEY).is_some());

    let cold = cache(64); // hot set on, HOT_KEY deliberately not armed

    let mut g = c.benchmark_group("adaptpath_hot");
    g.sample_size(20);
    g.bench_pair(
        "get/privatized",
        |b| b.iter(|| black_box(armed.get(0, HOT_KEY))),
        "get/transactional",
        |b| b.iter(|| black_box(plain.get(0, HOT_KEY))),
    );
    g.bench_pair(
        "get/unarmed_probe",
        |b| b.iter(|| black_box(cold.get(0, HOT_KEY))),
        "get/no_hot_set",
        |b| b.iter(|| black_box(plain.get(0, HOT_KEY))),
    );
    g.finish();

    let s = armed.stats();
    assert!(
        s.hot_hits > 0,
        "armed arm never served a privatized hit — it benchmarked the tx path"
    );
    assert_eq!(
        cold.stats().hot_hits,
        0,
        "unarmed arm served privatized hits — it benchmarked the wrong path"
    );
}

fn bench_ctl(c: &mut Criterion) {
    let h = cache(64);
    for i in 0..512u32 {
        let key = format!("adapt:ctl:{i}");
        h.set(0, key.as_bytes(), VALUE, 0, 0);
        h.get(0, key.as_bytes());
    }

    let rt = TmRuntime::builder().algorithm(Algorithm::Eager).build();

    let mut g = c.benchmark_group("adaptpath_ctl");
    g.sample_size(15);
    g.bench_function("controller/tick", |b| b.iter(|| black_box(h.adapt_tick())));
    let mut flip = false;
    g.bench_function("controller/switch_quiesce", |b| {
        b.iter(|| {
            flip = !flip;
            let algo = if flip { Algorithm::Norec } else { Algorithm::Eager };
            black_box(rt.switch_config(algo, ContentionManager::GCC_DEFAULT))
                .expect("rwlock runtime must accept switches")
        })
    });
    g.finish();

    assert!(
        rt.stats().config_switches > 0,
        "switch arm never actually switched"
    );
}

criterion_group!(benches, bench_hot, bench_ctl);
criterion_main!(benches);
