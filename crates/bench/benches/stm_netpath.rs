//! Net-path benches: what readiness notification buys at connection
//! scale. Each pair drives the SAME client workload against two
//! otherwise-identical servers — one on the epoll backend, one on the
//! portable polling loop:
//!
//! * `netpath_conn` — one full connection lifecycle per iteration:
//!   connect → set → get → `quit` → observe the server's FIN. This is
//!   the accept/register/teardown path, the churn-storm shape.
//! * `netpath_fanin` — a single-key GET roundtrip while the server
//!   holds 256 idle connections. The polling loop pays for every idle
//!   socket on every sweep; epoll pays only for the one that spoke.
//!
//! There is deliberately NO in-bench ratio gate: on a single-core host
//! the two backends time-slice each other and the gap narrows. The
//! committed `BENCH_netpath_*.json` baselines feed the bench_compare
//! regression gate instead, which catches either backend getting
//! slower against its own history.

use std::hint::black_box;

use bench::wire::WireConn;
use mcache::net::{EventLoop, NetConfig, Server};
use mcache::{Branch, McCache, McConfig, Stage};
use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};

const KEYS: usize = 64;
const VALUE: &[u8] = &[0x5a; 100];
const IDLE_CONNS: usize = 256;

fn key(i: usize) -> String {
    format!("netbench:{i:04}")
}

/// One cache + server on an ephemeral loopback port with the requested
/// readiness backend, warmed with the bench keyspace.
fn server(event_loop: EventLoop) -> Server {
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        magazine: 16,
        ..Default::default()
    });
    for i in 0..KEYS {
        assert_eq!(
            handle.set(0, key(i).as_bytes(), VALUE, 0, 0),
            mcache::StoreStatus::Stored
        );
    }
    Server::start(
        handle,
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            event_loop,
            ..Default::default()
        },
    )
    .expect("bind ephemeral loopback port")
}

/// One full connection lifecycle: connect, an oracle-checked set + get,
/// `quit`, and the server's FIN (so teardown is inside the measurement).
fn lifecycle(addr: &str, i: usize) {
    let mut conn = WireConn::connect(addr).expect("lifecycle connect");
    let mut set = format!("set {} 0 0 {}\r\n", key(i), VALUE.len()).into_bytes();
    set.extend_from_slice(VALUE);
    set.extend_from_slice(b"\r\n");
    assert_eq!(conn.ascii_line(&set).expect("set"), b"STORED");
    let k = key(i);
    let hits = conn.ascii_get(&[k.as_bytes()], false).expect("get");
    assert_eq!(hits.len(), 1, "warm key must hit");
    conn.send(b"quit\r\n").expect("quit");
    assert!(conn.read_line().is_err(), "server closes after quit");
}

fn bench_conn(c: &mut Criterion) {
    let epoll_srv = server(EventLoop::Epoll);
    let poll_srv = server(EventLoop::Poll);
    let epoll_addr = epoll_srv.local_addr().to_string();
    let poll_addr = poll_srv.local_addr().to_string();
    let (mut i, mut j) = (0usize, 0usize);

    let mut g = c.benchmark_group("netpath_conn");
    g.sample_size(20);
    g.bench_pair(
        "conn_lifecycle/epoll",
        |b| {
            b.iter(|| {
                i = (i + 1) % KEYS;
                black_box(lifecycle(&epoll_addr, i))
            })
        },
        "conn_lifecycle/poll",
        |b| {
            b.iter(|| {
                j = (j + 1) % KEYS;
                black_box(lifecycle(&poll_addr, j))
            })
        },
    );
    g.finish();
}

fn bench_fanin(c: &mut Criterion) {
    let epoll_srv = server(EventLoop::Epoll);
    let poll_srv = server(EventLoop::Poll);
    let epoll_addr = epoll_srv.local_addr().to_string();
    let poll_addr = poll_srv.local_addr().to_string();

    // The fan-in backdrop: IDLE_CONNS held-open, silent connections per
    // server. They exist purely so the readiness machinery has a crowd
    // to pick the one active socket out of.
    let hold = |addr: &str| -> Vec<WireConn> {
        (0..IDLE_CONNS)
            .map(|_| WireConn::connect(addr).expect("idle connect"))
            .collect()
    };
    let _epoll_idle = hold(&epoll_addr);
    let _poll_idle = hold(&poll_addr);

    let mut epoll_conn = WireConn::connect(&epoll_addr).expect("active connect");
    let mut poll_conn = WireConn::connect(&poll_addr).expect("active connect");
    let (mut i, mut j) = (0usize, 0usize);

    let mut g = c.benchmark_group("netpath_fanin");
    g.sample_size(20);
    g.bench_pair(
        "get_under_256_idle/epoll",
        |b| {
            b.iter(|| {
                i = (i + 1) % KEYS;
                let k = key(i);
                let hits = epoll_conn.ascii_get(&[k.as_bytes()], false).expect("get");
                assert_eq!(hits.len(), 1, "warm key must hit");
                black_box(hits)
            })
        },
        "get_under_256_idle/poll",
        |b| {
            b.iter(|| {
                j = (j + 1) % KEYS;
                let k = key(j);
                let hits = poll_conn.ascii_get(&[k.as_bytes()], false).expect("get");
                assert_eq!(hits.len(), 1, "warm key must hit");
                black_box(hits)
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench_conn, bench_fanin);
criterion_main!(benches);
