//! Write-path overdrive benches: the SET-shaped transaction of the paper's
//! §3.3 item path, measured before and after the mutation fast lane and
//! the per-worker slab magazines, per algorithm.
//!
//! * `setpath_mix` — two interleaved pairs over a small item table:
//!   - **set-heavy (90/10 SET/GET)**: the **fulltx** arm is the
//!     pre-overdrive store — THREE transactions per SET (freelist pop,
//!     item link with stats inline, freelist push of the displaced chunk),
//!     every commit ticking the global clock. The **fastlane** arm is the
//!     magazine store: ONE transaction carrying the item writes, with the
//!     chunk handed over by a thread-private magazine (plain pop/push
//!     outside the section) and the unchanged flags/link words written
//!     back verbatim so silent-store elision drops them from the write
//!     set. Must win ≥1.3x median on at least two of the three
//!     algorithms (the acceptance bar).
//!   - **50/50 mix**: same arms at an even GET/SET split; GETs ride the
//!     read-only fast lane in both arms so the pair isolates the write
//!     path. Gated at ≥1.15x on two of three.
//! * `setpath_batch` — 16 SETs as 16 transactions vs the same 16 SETs in
//!   ONE transaction (the shape `store_batch` gives pipelined ASCII
//!   storage commands and quiet binary SETQ bursts). Batching must not
//!   lose to singles.
//! * `setpath_magazine` — the real `McCache` end to end: overwrite SETs
//!   on the transactional-item branch with the magazine off (the
//!   3-transaction store) vs on (the single-transaction magazine store).
//!   The magazine must not lose; in practice it wins handily.
//!
//! Each arm prints the runtime's write-path counters afterwards
//! (`silent_store_elisions`, `clock_tick_elisions`, `clock_cas_retries`)
//! — the numbers quoted in EXPERIMENTS.md.

use std::hint::black_box;

use mcache::{Branch, McCache, McConfig, SlabConfig, Stage, StoreStatus};
use testkit::bench::{BenchStats, Criterion};
use testkit::{criterion_group, criterion_main};
use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};

const ITEMS: usize = 256;
/// Words per item: bucket link, key word, flags, refcount, value, cas.
const ITEM_WORDS: usize = 6;
/// Chunks on the modeled freelist (enough that the pop never bottoms out).
const CHUNKS: usize = 512;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

fn table() -> Vec<[TCell<u64>; ITEM_WORDS]> {
    (0..ITEMS)
        .map(|i| std::array::from_fn(|w| TCell::new((i * ITEM_WORDS + w) as u64)))
        .collect()
}

/// Deterministic 64-bit LCG; the bench must not depend on ambient entropy.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// The transactional freelist the pre-overdrive store pops from and
/// pushes to: a head cell, a per-chunk next word, and a count — the three
/// shared cells `do_slabs_alloc`/`do_slabs_free` RMW on every SET.
struct Freelist {
    head: TCell<u64>,
    next: Vec<TCell<u64>>,
    count: TCell<u64>,
}

fn freelist() -> Freelist {
    Freelist {
        head: TCell::new(1),
        next: (0..CHUNKS)
            .map(|i| TCell::new(((i + 1) % CHUNKS) as u64))
            .collect(),
        count: TCell::new(CHUNKS as u64),
    }
}

/// The item-link writes shared by every SET arm: value + cas move, the
/// unchanged flags and bucket-link words written back verbatim (silent
/// stores — elided from the write set, validated as reads), and the
/// three-cell stats block.
fn link_writes<'env, Tx: Transaction<'env>>(
    tx: &mut Tx,
    it: &'env [TCell<u64>; ITEM_WORDS],
    stats: &'env [TCell<u64>; 3],
    new_value: u64,
) -> Result<u64, tm::Abort> {
    // Unchanged on overwrite: silent by construction.
    let link = tx.read(&it[0])?;
    tx.write(&it[0], link)?;
    let flags = tx.read(&it[2])?;
    tx.write(&it[2], flags)?;
    // The real movement: value + cas.
    tx.write(&it[4], new_value)?;
    let cas = tx.read(&it[5])?;
    tx.write(&it[5], cas.wrapping_add(1))?;
    for s in stats {
        let v = tx.read(s)?;
        tx.write(s, v + 1)?;
    }
    Ok(link ^ flags ^ new_value)
}

/// The pre-overdrive SET: three transactions — freelist pop, link, free.
fn fulltx_set(
    rt: &TmRuntime,
    fl: &Freelist,
    it: &[TCell<u64>; ITEM_WORDS],
    stats: &[TCell<u64>; 3],
    new_value: u64,
) -> u64 {
    // Transaction 1: do_item_alloc — pop the class freelist.
    let chunk = rt.atomic(|tx| {
        let head = tx.read(&fl.head)?;
        let next = tx.read(&fl.next[(head % CHUNKS as u64) as usize])?;
        tx.write(&fl.head, next)?;
        let c = tx.read(&fl.count)?;
        tx.write(&fl.count, c.wrapping_sub(1))?;
        Ok(head)
    });
    // Transaction 2: item init + hash link + stats.
    let acc = rt.atomic(|tx| link_writes(tx, it, stats, new_value));
    // Transaction 3: free the displaced chunk back to the list.
    rt.atomic(|tx| {
        let head = tx.read(&fl.head)?;
        tx.write(&fl.next[(chunk % CHUNKS as u64) as usize], head)?;
        tx.write(&fl.head, chunk)?;
        let c = tx.read(&fl.count)?;
        tx.write(&fl.count, c.wrapping_add(1))
    });
    acc
}

/// The magazine SET: chunk from a thread-private stack (no transaction),
/// ONE transaction for the item writes, displaced chunk back to the
/// stack.
fn magazine_set(
    rt: &TmRuntime,
    mag: &mut Vec<u64>,
    it: &[TCell<u64>; ITEM_WORDS],
    stats: &[TCell<u64>; 3],
    new_value: u64,
) -> u64 {
    let chunk = mag.pop().expect("magazine warm");
    let acc = rt.atomic(|tx| link_writes(tx, it, stats, new_value));
    mag.push(chunk.wrapping_add(1));
    acc
}

/// The trimmed GET both mix arms share: read-only fast lane, reads only.
fn fast_get(rt: &TmRuntime, it: &[TCell<u64>; ITEM_WORDS]) -> u64 {
    rt.atomic_ro(|tx| {
        let mut acc = 0u64;
        for w in it {
            acc ^= tx.read(w)?;
        }
        Ok(acc)
    })
}

fn report(arm: &str, rt: &TmRuntime) {
    let s = rt.stats();
    println!(
        "    [{arm}] silent_store_elisions={} clock_tick_elisions={} clock_cas_retries={}",
        s.silent_store_elisions, s.clock_tick_elisions, s.clock_cas_retries
    );
}

fn bench_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("setpath_mix");
    g.sample_size(40);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        for (label, set_pct) in [("set_heavy_90_10", 9u64), ("mix_50_50", 5u64)] {
            let rt_full = runtime(algo);
            let items_full = table();
            let fl = freelist();
            let stats_full: [TCell<u64>; 3] = std::array::from_fn(|_| TCell::new(0));
            let mut seed_full = 0x9e3779b97f4a7c15u64;
            let rt_fast = runtime(algo);
            let items_fast = table();
            let mut mag: Vec<u64> = (0..64).collect();
            let stats_fast: [TCell<u64>; 3] = std::array::from_fn(|_| TCell::new(0));
            let mut seed_fast = 0x9e3779b97f4a7c15u64;
            g.bench_pair(
                format!("{algo}/fulltx_{label}"),
                |b| {
                    b.iter(|| {
                        let r = lcg(&mut seed_full);
                        let it = &items_full[(r % ITEMS as u64) as usize];
                        if r % 10 < set_pct {
                            fulltx_set(&rt_full, &fl, it, &stats_full, r)
                        } else {
                            fast_get(&rt_full, it)
                        }
                    })
                },
                format!("{algo}/fastlane_{label}"),
                |b| {
                    b.iter(|| {
                        let r = lcg(&mut seed_fast);
                        let it = &items_fast[(r % ITEMS as u64) as usize];
                        if r % 10 < set_pct {
                            magazine_set(&rt_fast, &mut mag, it, &stats_fast, r)
                        } else {
                            fast_get(&rt_fast, it)
                        }
                    })
                },
            );
            black_box(mag.len());
            report(&format!("fulltx_{label}"), &rt_full);
            report(&format!("fastlane_{label}"), &rt_fast);
        }
    }
    let stats = g.finish();
    // The acceptance bar: the single-transaction magazine SET beats the
    // 3-transaction freelist SET by ≥1.3x on the set-heavy arm on at
    // least two of the three algorithms. The 50/50 arm dilutes the write
    // share, so its floor is lower — it guards the shape, not the
    // headline.
    ratio_gate_majority(&stats, "fulltx_set_heavy_90_10", "fastlane_set_heavy_90_10", 1.3, 2);
    ratio_gate_majority(&stats, "fulltx_mix_50_50", "fastlane_mix_50_50", 1.15, 2);
}

/// Fails the bench run unless `slow`'s median is at least `floor` times
/// `fast`'s median on at least `need` of the algorithm prefixes present.
fn ratio_gate_majority(stats: &[BenchStats], slow: &str, fast: &str, floor: f64, need: usize) {
    let mut passed = 0usize;
    let mut total = 0usize;
    for s in stats {
        let Some(algo) = s.name.strip_suffix(&format!("/{slow}")) else {
            continue;
        };
        let fast_name = format!("{algo}/{fast}");
        let Some(f) = stats.iter().find(|b| b.name == fast_name) else {
            continue;
        };
        total += 1;
        let ratio = s.median_ns / f.median_ns.max(1e-9);
        if ratio >= floor {
            passed += 1;
            println!("    [gate] {algo}: {slow}/{fast} = {ratio:.2}x (floor {floor:.2}x)");
        } else {
            eprintln!(
                "    [gate] {algo}: {slow} {:.1}ns / {fast} {:.1}ns = {ratio:.2}x \
                 < floor {floor:.2}x",
                s.median_ns, f.median_ns
            );
        }
    }
    if total > 0 && passed < need.min(total) {
        eprintln!(
            "RATIO REGRESSION: {slow}/{fast} ≥ {floor:.2}x held on only {passed}/{total} \
             algorithms (need {need})"
        );
        std::process::exit(1);
    }
}

/// Strict per-algorithm gate, used where inversion is the only failure
/// mode.
fn ratio_gate(stats: &[BenchStats], slow: &str, fast: &str, floor: f64) {
    ratio_gate_majority(stats, slow, fast, floor, usize::MAX);
}

fn bench_batch(c: &mut Criterion) {
    const BATCH: usize = 16;
    let mut g = c.benchmark_group("setpath_batch");
    g.sample_size(40);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let items = table();
        let stats: [TCell<u64>; 3] = std::array::from_fn(|_| TCell::new(0));
        let mut mag: Vec<u64> = (0..64).collect();
        let mut mag2: Vec<u64> = (0..64).collect();
        let mut seed = 1u64;
        let mut seed2 = 1u64;

        // single — 16 magazine SETs, one transaction each. batched — the
        // same 16 SETs in ONE transaction: one begin, one commit fence,
        // one clock tick for the whole burst (the `store_batch` shape).
        g.bench_pair(
            format!("{algo}/single_x16"),
            |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..BATCH {
                        let r = lcg(&mut seed);
                        let it = &items[(r % ITEMS as u64) as usize];
                        acc ^= magazine_set(&rt, &mut mag, it, &stats, r);
                    }
                    acc
                })
            },
            format!("{algo}/batched_x16"),
            |b| {
                b.iter(|| {
                    let picks: [u64; BATCH] = std::array::from_fn(|_| lcg(&mut seed2));
                    let chunk = mag2.pop().expect("magazine warm");
                    let out = rt.atomic(|tx| {
                        let mut acc = 0u64;
                        for &r in &picks {
                            let it = &items[(r % ITEMS as u64) as usize];
                            acc ^= link_writes(tx, it, &stats, r)?;
                        }
                        Ok(acc)
                    });
                    mag2.push(chunk.wrapping_add(1));
                    out
                })
            },
        );
        report("batch", &rt);
    }
    let stats = g.finish();
    // Batching must never LOSE to one-transaction-per-SET; the win is
    // per-commit overhead amortized 16x, so anything under parity is a
    // regression.
    ratio_gate(&stats, "single_x16", "batched_x16", 0.95);
}

fn setpath_cache(magazine: usize) -> mcache::McHandle {
    McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 1,
        magazine,
        lru_bump_every: 0,
        hash_power: 8,
        hash_power_max: 8,
        item_lock_power: 6,
        slab: SlabConfig {
            mem_limit: 4 << 20,
            page_size: 64 << 10,
            chunk_min: 96,
            growth_factor: 1.5,
        },
        ..Default::default()
    })
}

fn bench_magazine(c: &mut Criterion) {
    let mut g = c.benchmark_group("setpath_magazine");
    g.sample_size(30);
    // The real cache, end to end: overwrite SETs on the transactional-item
    // branch. magoff — the 3-transaction store against the shared class
    // freelist. magon — the single-transaction magazine store. Interleaved
    // so the ratio survives noise epochs.
    let off = setpath_cache(0);
    let on = setpath_cache(32);
    let mut value_off = [7u8; 64];
    let mut value_on = [7u8; 64];
    let mut i = 0u32;
    let mut j = 0u32;
    // Warm both caches so steady state is overwrite + recycle.
    for _ in 0..64 {
        assert_eq!(off.set(0, b"bench-key", &value_off, 0, 0), StoreStatus::Stored);
        assert_eq!(on.set(0, b"bench-key", &value_on, 0, 0), StoreStatus::Stored);
    }
    g.bench_pair(
        "mcache/set_magoff",
        |b| {
            b.iter(|| {
                i = i.wrapping_add(1);
                value_off[0] = i as u8;
                off.set(0, b"bench-key", &value_off, 0, 0)
            })
        },
        "mcache/set_magon",
        |b| {
            b.iter(|| {
                j = j.wrapping_add(1);
                value_on[0] = j as u8;
                on.set(0, b"bench-key", &value_on, 0, 0)
            })
        },
    );
    let s = on.stats();
    println!(
        "    [magon] magazine_refills={} magazine_flushes={}",
        s.global.magazine_refills, s.global.magazine_flushes
    );
    let stats = g.finish();
    // The magazine must never lose to the freelist store on its home
    // turf (single worker, warm overwrites).
    ratio_gate(&stats, "set_magoff", "set_magon", 1.0);
}

/// One sample of the contended SET storm: `workers` threads each run
/// `iters` magazine-shaped single-transaction SETs over their **own**
/// slice of the item table, with per-worker stats blocks, so every write
/// set is disjoint — all the fighting happens at the commit point (clock
/// shards, orec stripes). The per-worker batch is floored so one sample
/// spans many scheduler quanta (short samples on small hosts measure
/// descheduling, not the payload); the barrier-to-join wall time is
/// scaled back to the requested `iters`.
fn contended_set_run(
    rt: &TmRuntime,
    items: &[[TCell<u64>; ITEM_WORDS]],
    stats: &[[TCell<u64>; 3]],
    workers: usize,
    iters: u64,
) -> std::time::Duration {
    const MIN_REPS: u64 = 8_000;
    let reps = iters.max(MIN_REPS);
    let block = ITEMS / workers;
    let barrier = std::sync::Barrier::new(workers + 1);
    let elapsed = std::thread::scope(|s| {
        for w in 0..workers {
            let barrier = &barrier;
            s.spawn(move || {
                let mut seed = 0x9e3779b97f4a7c15u64 ^ (w as u64) << 32;
                let mut mag: Vec<u64> = (0..64).collect();
                barrier.wait();
                let mut acc = 0u64;
                for _ in 0..reps {
                    let r = lcg(&mut seed);
                    let it = &items[w * block + (r % block as u64) as usize];
                    acc ^= magazine_set(rt, &mut mag, it, &stats[w], r);
                }
                black_box((acc, mag.len()));
                barrier.wait();
            });
        }
        barrier.wait();
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0.elapsed()
    });
    elapsed.mul_f64(iters as f64 / reps as f64)
}

/// Contended SET path: 2/4/8 workers hammering disjoint item slices with
/// the single-transaction magazine SET, single global clock vs the
/// 8-shard clock. Every transaction is a writer, so this is the purest
/// commit-clock contention the cache-shaped benches produce. The pair
/// feeds the bench_compare baseline gate; the shard-spread assert is the
/// structural check that holds on any host.
fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("setpath_contended");
    g.sample_size(15);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        for workers in [2usize, 4, 8] {
            let rt1 = TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .clock_shards(1)
                .build();
            let items1 = table();
            let stats1: Vec<[TCell<u64>; 3]> = (0..workers)
                .map(|_| std::array::from_fn(|_| TCell::new(0)))
                .collect();
            let rt8 = TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .clock_shards(8)
                .build();
            let items8 = table();
            let stats8: Vec<[TCell<u64>; 3]> = (0..workers)
                .map(|_| std::array::from_fn(|_| TCell::new(0)))
                .collect();
            g.bench_pair(
                format!("{algo}/shards1_w{workers}"),
                |b| {
                    b.iter_custom(|iters| {
                        contended_set_run(&rt1, &items1, &stats1, workers, iters)
                    })
                },
                format!("{algo}/shards8_w{workers}"),
                |b| {
                    b.iter_custom(|iters| {
                        contended_set_run(&rt8, &items8, &stats8, workers, iters)
                    })
                },
            );
            if !matches!(algo, Algorithm::Norec) {
                let ticked = rt8.clock_shard_stats().iter().filter(|s| s.ticks > 0).count();
                let want = workers.min(rt8.clock_shards());
                assert!(
                    ticked >= want,
                    "{algo}: {workers} disjoint writers ticked only {ticked} of \
                     {} clock shards (expected >= {want})",
                    rt8.clock_shards()
                );
            }
            report(&format!("contended_shards8_w{workers}"), &rt8);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_mix, bench_batch, bench_magazine, bench_contended);
criterion_main!(benches);
