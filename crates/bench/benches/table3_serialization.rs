//! Timed bench for the paper's table3: the 4-thread serialization
//! measurement. Prints the table once, then times each branch's run.
use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = bench::Scale::tiny();
    bench::print_table("table3 (bench preview)", &bench::figures::table3(), &scale);
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for cfg in bench::figures::table3() {
        let label = cfg.label.clone();
        g.bench_function(&label, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += Duration::from_secs_f64(bench::run_once(&cfg, &scale, 4).secs);
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
