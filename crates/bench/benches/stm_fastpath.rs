//! Micro-benches pinning the transaction fast path rebuilt by the arena /
//! write-map / word-granularity work:
//!
//! * `fastpath_copy1k` — a 1KB `TBytes` value copied into shared memory and
//!   read back inside one transaction, **byte-wise** (one log entry per
//!   byte: the pre-arena `tmstd` behavior) vs **word-wise** (one orec + one
//!   log entry per 8 bytes through `write_bytes`/`read_bytes`). The
//!   word-wise path must beat the byte-wise one by ≥2x median for Lazy and
//!   NOrec — the paper's §4 redo-log tax, paid down.
//! * `fastpath_smalltx` — tiny lock-acquire-shaped transactions (≤ 8
//!   writes) that must stay on the inline write-set scan, never touching
//!   the open-addressed map.
//! * steady-state allocation counts — with the counting allocator
//!   installed, each algorithm's per-commit allocation count after warmup
//!   is printed and written into `BENCH_fastpath_allocs.json`. The arena
//!   makes these zero.

use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};
use tm::{
    Algorithm, ContentionManager, SerialLockMode, TBytes, TCell, TmRuntime, Transaction,
};

#[global_allocator]
static COUNTING_ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

fn bench_copy1k(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastpath_copy1k");
    let payload = vec![0x5au8; 1024];
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let dst = TBytes::zeroed(1024);

        // Pre-PR shape: every byte is its own STM access — a redo-map
        // probe plus a full word log entry, eight times per word.
        g.bench_function(format!("{algo}/bytewise"), |b| {
            let mut out = vec![0u8; 1024];
            b.iter(|| {
                rt.atomic(|tx| {
                    for (i, &v) in payload.iter().enumerate() {
                        tx.write_byte(&dst, i, v)?;
                    }
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = tx.read_byte(&dst, i)?;
                    }
                    Ok(())
                })
            })
        });

        // Post-PR shape: bulk ops move whole words.
        g.bench_function(format!("{algo}/wordwise"), |b| {
            let mut out = vec![0u8; 1024];
            b.iter(|| {
                rt.atomic(|tx| {
                    tx.copy_from_slice(&dst, 0, &payload)?;
                    tx.read_bytes(&dst, 0, &mut out)?;
                    Ok(())
                })
            })
        });
    }
    g.finish();
}

fn bench_smalltx(c: &mut Criterion) {
    // The IP-mode shape: a transaction that "acquires" a couple of lock
    // words and touches a counter — few enough writes that the redo lookup
    // must stay on the inline scan of the write vector.
    let mut g = c.benchmark_group("fastpath_smalltx");
    // Small transactions are the noisiest group (the whole payload is a
    // few hundred ns, so scheduler hiccups dominate): take more samples
    // than the default so the median is taken over a stable population.
    // Calibration itself is pinned by the harness's min-of-warmup-passes
    // rule (see testkit::bench).
    g.sample_size(40);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let cells: Vec<TCell<u64>> = (0..4).map(TCell::new).collect();
        g.bench_function(format!("{algo}/w4"), |b| {
            b.iter(|| {
                rt.atomic(|tx| {
                    for c in &cells {
                        let v = tx.read(c)?;
                        tx.write(c, v + 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    g.finish();
}

fn bench_steady_state_allocs(c: &mut Criterion) {
    // Not a timing bench: counts heap allocations per steady-state commit
    // and reports them through the bench JSON (value in "nanoseconds" is
    // actually allocations x 1000, so a zero stays exactly zero).
    let mut g = c.benchmark_group("fastpath_allocs");
    let payload = [0x77u8; 64];
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let dst = TBytes::zeroed(64);
        let mut out = [0u8; 64];
        let run = |out: &mut [u8; 64]| {
            rt.atomic(|tx| {
                tx.write_bytes(&dst, 0, &payload)?;
                tx.read_bytes(&dst, 0, out)?;
                Ok(())
            });
        };
        // Warmup sizes the arena's buffers; afterwards the fast path must
        // not allocate at all.
        for _ in 0..100 {
            run(&mut out);
        }
        let before = testkit::alloc::thread_allocs();
        const TXNS: u64 = 1000;
        for _ in 0..TXNS {
            run(&mut out);
        }
        let per_txn = (testkit::alloc::thread_allocs() - before) as f64 / TXNS as f64;
        println!("fastpath_allocs/{algo}: {per_txn:.3} allocations per steady-state commit");
        g.bench_function(format!("{algo}/allocs_per_txn_x1000"), |b| {
            b.iter_custom(|iters| {
                std::time::Duration::from_nanos((per_txn * 1000.0) as u64 * iters)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_copy1k,
    bench_smalltx,
    bench_steady_state_allocs
);
criterion_main!(benches);
