//! Micro-benches pinning the transaction fast path rebuilt by the arena /
//! write-map / word-granularity work:
//!
//! * `fastpath_copy1k` — a 1KB `TBytes` value copied into shared memory and
//!   read back inside one transaction, **byte-wise** (one log entry per
//!   byte: the pre-arena `tmstd` behavior) vs **word-wise** (one orec + one
//!   log entry per 8 bytes through `write_bytes`/`read_bytes`). The
//!   word-wise path must beat the byte-wise one by ≥2x median for Lazy and
//!   NOrec — the paper's §4 redo-log tax, paid down.
//! * `fastpath_smalltx` — tiny lock-acquire-shaped transactions (≤ 8
//!   writes) that must stay on the inline write-set scan, never touching
//!   the open-addressed map.
//! * steady-state allocation counts — with the counting allocator
//!   installed, each algorithm's per-commit allocation count after warmup
//!   is printed and written into `BENCH_fastpath_allocs.json`. The arena
//!   makes these zero.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use testkit::bench::{BenchStats, Criterion};
use testkit::{criterion_group, criterion_main};
use tm::{
    Algorithm, ContentionManager, SerialLockMode, TBytes, TCell, TmRuntime, Transaction,
};

#[global_allocator]
static COUNTING_ALLOC: testkit::alloc::Counting = testkit::alloc::Counting;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

fn bench_copy1k(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastpath_copy1k");
    let payload = vec![0x5au8; 1024];
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let dst = TBytes::zeroed(1024);

        // Pre-PR shape: every byte is its own STM access — a redo-map
        // probe plus a full word log entry, eight times per word.
        g.bench_function(format!("{algo}/bytewise"), |b| {
            let mut out = vec![0u8; 1024];
            b.iter(|| {
                rt.atomic(|tx| {
                    for (i, &v) in payload.iter().enumerate() {
                        tx.write_byte(&dst, i, v)?;
                    }
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = tx.read_byte(&dst, i)?;
                    }
                    Ok(())
                })
            })
        });

        // Post-PR shape: bulk ops move whole words.
        g.bench_function(format!("{algo}/wordwise"), |b| {
            let mut out = vec![0u8; 1024];
            b.iter(|| {
                rt.atomic(|tx| {
                    tx.copy_from_slice(&dst, 0, &payload)?;
                    tx.read_bytes(&dst, 0, &mut out)?;
                    Ok(())
                })
            })
        });
    }
    g.finish();
}

fn bench_smalltx(c: &mut Criterion) {
    // The IP-mode shape: a transaction that "acquires" a couple of lock
    // words and touches a counter — few enough writes that the redo lookup
    // must stay on the inline scan of the write vector.
    let mut g = c.benchmark_group("fastpath_smalltx");
    // Small transactions are the noisiest group (the whole payload is a
    // few hundred ns, so scheduler hiccups dominate): take more samples
    // than the default so the median is taken over a stable population.
    // Calibration itself is pinned by the harness's min-of-warmup-passes
    // rule (see testkit::bench).
    g.sample_size(40);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let cells: Vec<TCell<u64>> = (0..4).map(TCell::new).collect();
        g.bench_function(format!("{algo}/w4"), |b| {
            b.iter(|| {
                rt.atomic(|tx| {
                    for c in &cells {
                        let v = tx.read(c)?;
                        tx.write(c, v + 1)?;
                    }
                    Ok(())
                })
            })
        });
    }
    g.finish();
}

fn bench_steady_state_allocs(c: &mut Criterion) {
    // Not a timing bench: counts heap allocations per steady-state commit
    // and reports them through the bench JSON (value in "nanoseconds" is
    // actually allocations x 1000, so a zero stays exactly zero).
    let mut g = c.benchmark_group("fastpath_allocs");
    let payload = [0x77u8; 64];
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let dst = TBytes::zeroed(64);
        let mut out = [0u8; 64];
        let run = |out: &mut [u8; 64]| {
            rt.atomic(|tx| {
                tx.write_bytes(&dst, 0, &payload)?;
                tx.read_bytes(&dst, 0, out)?;
                Ok(())
            });
        };
        // Warmup sizes the arena's buffers; afterwards the fast path must
        // not allocate at all.
        for _ in 0..100 {
            run(&mut out);
        }
        let before = testkit::alloc::thread_allocs();
        const TXNS: u64 = 1000;
        for _ in 0..TXNS {
            run(&mut out);
        }
        let per_txn = (testkit::alloc::thread_allocs() - before) as f64 / TXNS as f64;
        println!("fastpath_allocs/{algo}: {per_txn:.3} allocations per steady-state commit");
        g.bench_function(format!("{algo}/allocs_per_txn_x1000"), |b| {
            b.iter_custom(|iters| {
                std::time::Duration::from_nanos((per_txn * 1000.0) as u64 * iters)
            })
        });
    }
    g.finish();
}

/// One sample of the contended-commit payload: `workers` threads each run
/// a batch of tiny read-modify-write transactions over their **own** four
/// cells, so write sets are disjoint and the only shared state is the
/// commit machinery — the clock's cache line(s) and the orec stripes.
///
/// The batch is floored well above `iters`: a sample must span many
/// scheduler quanta, or on small hosts the wall time measures *which*
/// threads happened to be descheduled rather than the payload (observed
/// 10x sample-to-sample swings with ~1ms samples on one core). The
/// barrier-to-join wall time over the long batch is scaled back to the
/// requested `iters`, the usual batch-timing estimate.
fn contended_run(rt: &TmRuntime, workers: usize, iters: u64) -> Duration {
    const MIN_REPS: u64 = 16_000;
    let reps = iters.max(MIN_REPS);
    let cells: Vec<[TCell<u64>; 4]> = (0..workers)
        .map(|w| std::array::from_fn(|i| TCell::new((w * 4 + i) as u64)))
        .collect();
    let barrier = Barrier::new(workers + 1);
    let elapsed = std::thread::scope(|s| {
        for w in 0..workers {
            let rt = &rt;
            let cells = &cells;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..reps {
                    rt.atomic(|tx| {
                        for c in &cells[w] {
                            let v = tx.read(c)?;
                            tx.write(c, v.wrapping_add(i | 1))?;
                        }
                        Ok(())
                    });
                }
                barrier.wait();
            });
        }
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        t0.elapsed()
    });
    elapsed.mul_f64(iters as f64 / reps as f64)
}

/// Structural check, valid on any host: the per-shard clock stats must
/// attribute ticks to as many distinct shards as the workers can cover —
/// consecutively spawned workers take consecutive thread ordinals, so a
/// batch of `w` workers lands on `min(w, shards)` distinct shards.
fn assert_shard_spread(rt: &TmRuntime, algo: Algorithm, workers: usize) {
    if matches!(algo, Algorithm::Norec) {
        return; // NOrec commits through the seqlock, not the clock.
    }
    let stats = rt.clock_shard_stats();
    let ticked = stats.iter().filter(|s| s.ticks > 0).count();
    let want = workers.min(rt.clock_shards());
    assert!(
        ticked >= want,
        "{algo}: {workers} disjoint writers ticked only {ticked} of \
         {} clock shards (expected >= {want})",
        rt.clock_shards()
    );
    let retries: u64 = stats.iter().map(|s| s.cas_retries).sum();
    println!(
        "    [{algo}/w{workers}] shards_ticked={ticked}/{} clock_cas_retries={retries}",
        rt.clock_shards()
    );
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("fastpath_contended");
    // Thread spawn + barrier per sample makes these slower to take than
    // the single-threaded groups; fewer samples keep the group bounded.
    g.sample_size(15);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        for workers in [2usize, 4, 8] {
            let rt1 = TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .clock_shards(1)
                .build();
            let rt8 = TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .clock_shards(8)
                .build();
            g.bench_pair(
                format!("{algo}/shards1_w{workers}"),
                |b| b.iter_custom(|iters| contended_run(&rt1, workers, iters)),
                format!("{algo}/shards8_w{workers}"),
                |b| b.iter_custom(|iters| contended_run(&rt8, workers, iters)),
            );
            assert_shard_spread(&rt8, algo, workers);
        }
    }
    let stats = g.finish();
    contended_gate(&stats);
}

/// The contended acceptance bar: at 8 disjoint writers, the 8-shard clock
/// must beat the single global clock by ≥1.3x median on at least one
/// orec-based algorithm. Cache-line contention needs real parallelism to
/// materialize, so the hard floor only arms on hosts with ≥4 cores; on
/// smaller hosts the ratio is measured and reported but informational.
fn contended_gate(stats: &[BenchStats]) {
    let median = |name: &str| stats.iter().find(|b| b.name == name).map(|b| b.median_ns);
    let mut best = 0.0f64;
    for algo in [Algorithm::Eager, Algorithm::Lazy] {
        let (Some(one), Some(eight)) = (
            median(&format!("{algo}/shards1_w8")),
            median(&format!("{algo}/shards8_w8")),
        ) else {
            continue;
        };
        let ratio = one / eight.max(1e-9);
        println!("    [gate] {algo}: shards1_w8 / shards8_w8 = {ratio:.2}x");
        best = best.max(ratio);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        if best < 1.3 {
            eprintln!(
                "RATIO REGRESSION: 8-worker contended commit speedup {best:.2}x < 1.30x \
                 floor on every orec-based algorithm"
            );
            std::process::exit(1);
        }
    } else {
        println!(
            "    [gate] host has {cores} core(s): 8 workers time-share, so cross-core \
             cache-line contention cannot materialize — ≥1.30x floor informational \
             (best {best:.2}x); structural shard-spread asserts ran above"
        );
    }
}

criterion_group!(
    benches,
    bench_copy1k,
    bench_smalltx,
    bench_steady_state_allocs,
    bench_contended
);
criterion_main!(benches);
