//! Micro-benches of the STM primitives underneath every figure:
//! per-transaction cost of reads/writes for each algorithm, with and
//! without the global serial readers/writer lock, plus the serialization
//! paths (start-serial and in-flight switch).

use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};
use tm::{
    Algorithm, ContentionManager, RelaxedPlan, SerialLockMode, TBytes, TCell, TmRuntime,
    Transaction,
};

fn runtime(algo: Algorithm, serial: SerialLockMode) -> TmRuntime {
    let cm = match serial {
        SerialLockMode::ReaderWriter => ContentionManager::GCC_DEFAULT,
        SerialLockMode::None => ContentionManager::None,
    };
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(cm)
        .serial_lock(serial)
        .build()
}

fn bench_read_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn_rw10");
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        for (serial, tag) in [
            (SerialLockMode::ReaderWriter, "rwlock"),
            (SerialLockMode::None, "nolock"),
        ] {
            let rt = runtime(algo, serial);
            let cells: Vec<TCell<u64>> = (0..10).map(TCell::new).collect();
            g.bench_function(format!("{algo}/{tag}"), |b| {
                b.iter(|| {
                    rt.atomic(|tx| {
                        for c in &cells {
                            let v = tx.read(c)?;
                            tx.write(c, v + 1)?;
                        }
                        Ok(())
                    })
                })
            });
        }
    }
    g.finish();
}

fn bench_read_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn_readonly50");
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo, SerialLockMode::None);
        let cells: Vec<TCell<u64>> = (0..50).map(TCell::new).collect();
        g.bench_function(format!("{algo}"), |b| {
            b.iter(|| {
                rt.atomic(|tx| {
                    let mut sum = 0u64;
                    for c in &cells {
                        sum = sum.wrapping_add(tx.read(c)?);
                    }
                    Ok(sum)
                })
            })
        });
    }
    g.finish();
}

fn bench_memcpy(c: &mut Criterion) {
    // The §4 claim: buffered-update algorithms pay for byte-wise stores
    // read back as words (the memcpy-heavy memcached transactions).
    let mut g = c.benchmark_group("txn_memcpy256");
    let payload = vec![0xabu8; 256];
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo, SerialLockMode::None);
        let dst = TBytes::zeroed(256);
        g.bench_function(format!("{algo}"), |b| {
            b.iter(|| {
                rt.atomic(|tx| {
                    tx.write_bytes(&dst, 0, &payload)?;
                    tx.read_bytes_vec(&dst)
                })
            })
        });
    }
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("serialization");
    let rt = runtime(Algorithm::Eager, SerialLockMode::ReaderWriter);
    let cell = TCell::new(0u64);
    g.bench_function("start_serial", |b| {
        b.iter(|| {
            rt.relaxed(RelaxedPlan::serial(), |tx| tx.fetch_add(&cell, 1))
        })
    });
    g.bench_function("in_flight_switch", |b| {
        b.iter(|| {
            rt.relaxed(RelaxedPlan::new(), |tx| {
                tx.fetch_add(&cell, 1)?;
                tx.unsafe_op(|| ())
            })
        })
    });
    g.bench_function("atomic_no_serialization", |b| {
        b.iter(|| rt.atomic(|tx| tx.fetch_add(&cell, 1)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_read_write,
    bench_read_only,
    bench_memcpy,
    bench_serialization
);
criterion_main!(benches);
