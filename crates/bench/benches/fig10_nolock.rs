//! Timed bench for the paper's fig10: each branch runs the scaled
//! memslap workload at 2 worker threads (scale via MC_OPS / MC_KEYS).
use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut scale = bench::Scale::tiny();
    if let Ok(v) = std::env::var("MC_OPS") {
        if let Ok(n) = v.parse() {
            scale.ops = n;
        }
    }
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for cfg in bench::figures::fig10() {
        let label = cfg.label.clone();
        g.bench_function(&label, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += Duration::from_secs_f64(bench::run_once(&cfg, &scale, 2).secs);
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
