//! Wire-path benches: what the TCP front end costs over the in-process
//! protocol engine. Each pair drives the SAME operation shape two ways:
//!
//! * **inproc** — `proto::execute_ascii` straight into the cache, the
//!   shape every earlier bench measured (no sockets, no framing copies).
//! * **loopback** — the full server path over a real `127.0.0.1` socket:
//!   client write → kernel → nonblocking read → incremental frame scan →
//!   dispatch → response write → client read.
//!
//! Groups:
//!
//! * `wirepath_get` — single-key GET roundtrips (hit), in-process vs
//!   loopback, plus an 8-key multiget per roundtrip on the wire (the
//!   PR 4 coalescing shape: one syscall pair, one read-only
//!   transaction).
//! * `wirepath_set` — single-key overwrite SET roundtrips, in-process
//!   vs loopback, plus an 8-deep pipelined SET burst per roundtrip (the
//!   PR 5 `store_batch` shape on the wire).
//!
//! There is deliberately NO ratio gate here: loopback pays two syscalls
//! and a scheduler handoff per roundtrip and legitimately loses to the
//! in-process call by orders of magnitude. The committed
//! `BENCH_wirepath_*.json` baselines instead feed the bench_compare
//! regression gate, which catches the server path itself getting slower.

use std::hint::black_box;

use bench::wire::WireConn;
use mcache::net::{NetConfig, Server};
use mcache::{proto, Branch, McCache, McConfig, Stage};
use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};

const KEYS: usize = 64;
const VALUE: &[u8] = &[0x5a; 100];

fn key(i: usize) -> String {
    format!("wirebench:{i:04}")
}

/// One cache + server on an ephemeral loopback port, warmed with the
/// bench keyspace.
fn server() -> Server {
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 2,
        magazine: 16,
        ..Default::default()
    });
    for i in 0..KEYS {
        assert_eq!(
            handle.set(0, key(i).as_bytes(), VALUE, 0, 0),
            mcache::StoreStatus::Stored
        );
    }
    Server::start(
        handle,
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        },
    )
    .expect("bind ephemeral loopback port")
}

fn bench_get(c: &mut Criterion) {
    let srv = server();
    let addr = srv.local_addr().to_string();
    let cache = srv.cache().clone();
    let mut conn = WireConn::connect(&addr).expect("connect");
    let mut i = 0usize;
    let mut j = 0usize;

    let mut g = c.benchmark_group("wirepath_get");
    g.sample_size(30);
    g.bench_pair(
        "get/inproc",
        |b| {
            b.iter(|| {
                i = (i + 1) % KEYS;
                let req = format!("get {}\r\n", key(i));
                black_box(proto::execute_ascii(&cache, 0, req.as_bytes()))
            })
        },
        "get/loopback",
        |b| {
            b.iter(|| {
                j = (j + 1) % KEYS;
                let k = key(j);
                let hits = conn.ascii_get(&[k.as_bytes()], false).expect("get");
                assert_eq!(hits.len(), 1, "warm key must hit");
                black_box(hits)
            })
        },
    );

    // The coalescing shape: 8 keys per roundtrip, one syscall pair, one
    // read-only transaction server-side.
    let mut m = 0usize;
    g.bench_function("get/loopback_multiget_x8", |b| {
        b.iter(|| {
            let keys: Vec<String> = (0..8)
                .map(|n| {
                    m = (m + 1) % KEYS;
                    key((m + n) % KEYS)
                })
                .collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
            let hits = conn.ascii_get(&refs, false).expect("multiget");
            black_box(hits)
        })
    });
    g.finish();
    drop(conn);
}

fn bench_set(c: &mut Criterion) {
    let srv = server();
    let addr = srv.local_addr().to_string();
    let cache = srv.cache().clone();
    let mut conn = WireConn::connect(&addr).expect("connect");
    let mut i = 0usize;
    let mut j = 0usize;

    fn set_frame(i: usize) -> Vec<u8> {
        let mut f = format!("set {} 0 0 {}\r\n", key(i), VALUE.len()).into_bytes();
        f.extend_from_slice(VALUE);
        f.extend_from_slice(b"\r\n");
        f
    }

    let mut g = c.benchmark_group("wirepath_set");
    g.sample_size(30);
    g.bench_pair(
        "set/inproc",
        |b| {
            b.iter(|| {
                i = (i + 1) % KEYS;
                let out = proto::execute_ascii(&cache, 0, &set_frame(i));
                assert_eq!(out, b"STORED\r\n");
                black_box(out)
            })
        },
        "set/loopback",
        |b| {
            b.iter(|| {
                j = (j + 1) % KEYS;
                let line = conn.ascii_line(&set_frame(j)).expect("set");
                assert_eq!(line, b"STORED");
                black_box(line)
            })
        },
    );

    // The store_batch shape on the wire: 8 sets in one write, 8 STORED
    // lines back — the server folds the run into one transaction.
    let mut m = 0usize;
    g.bench_function("set/loopback_pipeline_x8", |b| {
        b.iter(|| {
            let mut wire = Vec::new();
            for n in 0..8 {
                wire.extend_from_slice(&set_frame((m + n) % KEYS));
            }
            m = (m + 8) % KEYS;
            conn.send(&wire).expect("pipelined sets");
            for _ in 0..8 {
                assert_eq!(conn.read_line().expect("set reply"), b"STORED");
            }
        })
    });
    g.finish();
    drop(conn);
}

criterion_group!(benches, bench_get, bench_set);
criterion_main!(benches);
