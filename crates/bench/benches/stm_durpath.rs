//! Durability-path benches: what the commit-time redo log costs on the
//! mutation path, and what a warm restart buys.
//!
//! Groups:
//!
//! * `durpath_set` — single-key overwrite SETs through the transactional
//!   store, four arms: no log at all, log attached with `fsync=off`
//!   (encode + writer mutex + page-cache write per commit), `every:32`
//!   group commit, and `always` (one deduplicated `fdatasync` per
//!   commit). The nolog/fsync-off pair runs interleaved via
//!   `bench_pair`, so their ratio — the pure logging overhead with the
//!   disk out of the picture — is stable across host-noise epochs.
//! * `durpath_recovery` — a full `McCache::start` on a sealed log of
//!   2 000 items: segment scan, checksum verify, replay into
//!   slab/assoc, CAS-floor restore. This is the cold-start price of a
//!   warm cache.
//!
//! Gates: `fsync=always` must cost at least as much as no log at all
//! (an inversion means the bench or the log stopped doing work), and
//! every recovery must replay exactly the expected item count with zero
//! torn records. Absolute drift is caught by the committed
//! `BENCH_durpath_*.json` baselines through the bench_compare gate.

use std::hint::black_box;
use std::path::PathBuf;

use mcache::{Branch, DurFsync, McCache, McConfig, McHandle, Stage};
use testkit::bench::{BenchStats, Criterion};
use testkit::{criterion_group, criterion_main};

const KEYS: usize = 64;
const VALUE: &[u8] = &[0x7d; 100];

fn key(i: usize) -> String {
    format!("durbench:{i:04}")
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("stm-durpath-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create bench log dir");
    d
}

fn cache(dur: Option<(&PathBuf, DurFsync)>) -> McHandle {
    let handle = McCache::start(McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 1,
        dur_path: dur.map(|(d, _)| d.clone()),
        dur_fsync: dur.map_or(DurFsync::Off, |(_, f)| f),
        ..Default::default()
    });
    for i in 0..KEYS {
        assert_eq!(
            handle.set(0, key(i).as_bytes(), VALUE, 0, 0),
            mcache::StoreStatus::Stored
        );
    }
    handle
}

fn median_of(stats: &[BenchStats], suffix: &str) -> f64 {
    stats
        .iter()
        .find(|s| s.name.ends_with(suffix))
        .unwrap_or_else(|| panic!("no bench named *{suffix}"))
        .median_ns
}

fn bench_set(c: &mut Criterion) {
    let nolog = cache(None);
    let dir_off = tmpdir("off");
    let log_off = cache(Some((&dir_off, DurFsync::Off)));
    let dir_n = tmpdir("every32");
    let log_n = cache(Some((&dir_n, DurFsync::EveryN(32))));
    let dir_always = tmpdir("always");
    let log_always = cache(Some((&dir_always, DurFsync::Always)));

    let mut g = c.benchmark_group("durpath_set");
    g.sample_size(20);
    let mut i = 0usize;
    let mut j = 0usize;
    g.bench_pair(
        "set/nolog",
        |b| {
            b.iter(|| {
                i = (i + 1) % KEYS;
                black_box(nolog.set(0, key(i).as_bytes(), VALUE, 0, 0))
            })
        },
        "set/log_fsync_off",
        |b| {
            b.iter(|| {
                j = (j + 1) % KEYS;
                black_box(log_off.set(0, key(j).as_bytes(), VALUE, 0, 0))
            })
        },
    );
    let mut m = 0usize;
    g.bench_function("set/log_every32", |b| {
        b.iter(|| {
            m = (m + 1) % KEYS;
            black_box(log_n.set(0, key(m).as_bytes(), VALUE, 0, 0))
        })
    });
    let mut n = 0usize;
    g.bench_function("set/log_always", |b| {
        b.iter(|| {
            n = (n + 1) % KEYS;
            black_box(log_always.set(0, key(n).as_bytes(), VALUE, 0, 0))
        })
    });
    let stats = g.finish();

    // Sanity: the logged arms actually logged (no silent degradation).
    for (name, h) in [("fsync_off", &log_off), ("every32", &log_n), ("always", &log_always)] {
        let d = h.dur_stats().expect("log attached");
        assert!(h.dur_enabled(), "{name}: log degraded during the bench");
        assert!(d.appends > 0, "{name}: no appends recorded");
        assert_eq!(d.log_write_errors, 0, "{name}: write errors during the bench");
    }
    // Inversion gate: paying an fdatasync per commit can never beat the
    // log-free store. (The interesting number — fsync_off vs nolog — is
    // reported and baselined, but the disk-free overhead is small enough
    // that a hard ratio floor would just flake on shared hosts.)
    let always = median_of(&stats, "set/log_always");
    let free = median_of(&stats, "set/nolog");
    assert!(
        always >= free,
        "fsync=always ({always:.0}ns) beat nolog ({free:.0}ns) — the log is not syncing"
    );

    drop(nolog);
    drop(log_off);
    drop(log_n);
    drop(log_always);
    for d in [dir_off, dir_n, dir_always] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

fn bench_recovery(c: &mut Criterion) {
    const ITEMS: usize = 2000;
    let dir = tmpdir("recovery");
    let recover_cfg = || McConfig {
        branch: Branch::It(Stage::OnCommit),
        workers: 1,
        dur_path: Some(dir.clone()),
        dur_fsync: DurFsync::Off,
        ..Default::default()
    };
    {
        let h = McCache::start(recover_cfg());
        for i in 0..ITEMS {
            h.set(0, format!("rkey:{i:06}").as_bytes(), VALUE, 0, 0);
        }
    } // drop seals
    let mut g = c.benchmark_group("durpath_recovery");
    g.sample_size(10);
    g.bench_function("recover/2000_items", |b| {
        b.iter(|| {
            let h = McCache::start(recover_cfg());
            let d = h.dur_stats().expect("log attached");
            assert_eq!(d.recovered_items, ITEMS as u64, "replay must be exact");
            assert_eq!(d.torn_records_dropped, 0, "sealed log has no torn tail");
            black_box(h)
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_set, bench_recovery);
criterion_main!(benches);
