//! Read-path overdrive benches: the GET-shaped transaction of the paper's
//! §3.3 item path, measured with and without the runtime's read-only fast
//! lane, per algorithm.
//!
//! * `getpath_mix` — a 90/10 GET/SET mix over a small item table. The
//!   **fulltx** arm is the pre-overdrive shape: every GET is an ordinary
//!   transaction that also carries its stats updates (three read-modify-
//!   writes), so even a "read" commits through the write path. The
//!   **fastlane** arm is the trimmed shape: GETs enter through
//!   [`TmRuntime::atomic_ro`] and carry only the item reads — hash-walk,
//!   key check, flags, value — with stats privatized to plain per-thread
//!   counters outside the section. The fast lane must win by ≥1.5x median.
//!   The **promote** arm measures the fall-from-grace case: an RO-entered
//!   GET that still bumps a refcount mid-flight, i.e. one in-flight
//!   promotion per transaction.
//! * `getpath_multiget` — 16 GETs as 16 read-only transactions vs 16 GETs
//!   batched into ONE read-only transaction (the multiget shape the cache
//!   layer uses for `get k1 .. k16` and pipelined quiet binary gets).
//!
//! Each arm prints the runtime's fast-lane counters afterwards
//! (`ro_fast_commits`, `ro_promotions`, `snapshot_extensions`) — the
//! validation-pass counts quoted in EXPERIMENTS.md.

use std::hint::black_box;

use testkit::bench::Criterion;
use testkit::{criterion_group, criterion_main};
use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};

const ITEMS: usize = 256;
/// Words per item: bucket link, key word, flags, refcount, value, cas —
/// the words the cache's `item_get` actually touches.
const ITEM_WORDS: usize = 6;

fn runtime(algo: Algorithm) -> TmRuntime {
    TmRuntime::builder()
        .algorithm(algo)
        .contention_manager(ContentionManager::None)
        .serial_lock(SerialLockMode::None)
        .build()
}

fn table() -> Vec<[TCell<u64>; ITEM_WORDS]> {
    (0..ITEMS)
        .map(|i| std::array::from_fn(|w| TCell::new((i * ITEM_WORDS + w) as u64)))
        .collect()
}

/// Deterministic 64-bit LCG; the bench must not depend on ambient entropy.
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// The SET shape, identical in both mix arms: value + cas stores with the
/// stats block inline, a plain read-write transaction.
fn set_tx(
    rt: &TmRuntime,
    it: &[TCell<u64>; ITEM_WORDS],
    stats: &[TCell<u64>; 3],
) -> u64 {
    rt.atomic(|tx| {
        let v = tx.read(&it[4])?;
        tx.write(&it[4], v.wrapping_add(1))?;
        let cas = tx.read(&it[5])?;
        tx.write(&it[5], cas.wrapping_add(1))?;
        for s in stats {
            let sv = tx.read(s)?;
            tx.write(s, sv + 1)?;
        }
        Ok(v)
    })
}

fn report(arm: &str, rt: &TmRuntime) {
    let s = rt.stats();
    println!(
        "    [{arm}] ro_fast_commits={} ro_promotions={} snapshot_extensions={} read_log_dedup_hits={}",
        s.ro_fast_commits, s.ro_promotions, s.snapshot_extensions, s.read_log_dedup_hits
    );
}

fn bench_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("getpath_mix");
    g.sample_size(40);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        // The fulltx/fastlane arms are a before/after pair destined for a
        // ratio check, so their samples run interleaved (`bench_pair`) and
        // see the same host-noise epochs.
        //
        // fulltx — the pre-overdrive GET: exactly what the cache's
        // transactional GET used to carry — refcount incr/decr pair, an
        // UNCONDITIONAL ITEM_FETCHED flag store, and the stats block
        // (get_cmds, get_hits, cmd_total) inline — six read-modify-writes
        // riding on the item reads, so even a "read" commits through the
        // write path.
        //
        // fastlane — the trimmed GET: atomic_ro carrying only the reads —
        // the refcount pair elided to a plain read, ITEM_FETCHED checked
        // but not re-stored, stats privatized to plain per-thread counters
        // bumped after the section. SETs keep the identical full shape.
        {
            let rt_full = runtime(algo);
            let items_full = table();
            let stats_full: [TCell<u64>; 3] = std::array::from_fn(|_| TCell::new(0));
            let mut seed_full = 0x9e3779b97f4a7c15u64;
            let rt_fast = runtime(algo);
            let items_fast = table();
            let stats_fast: [TCell<u64>; 3] = std::array::from_fn(|_| TCell::new(0));
            let mut priv_stats = [0u64; 3];
            let mut seed_fast = 0x9e3779b97f4a7c15u64;
            g.bench_pair(
                format!("{algo}/fulltx_90_10"),
                |b| {
                    b.iter(|| {
                        let r = lcg(&mut seed_full);
                        let it = &items_full[(r % ITEMS as u64) as usize];
                        if r % 10 < 9 {
                            rt_full.atomic(|tx| {
                                // Hash-bucket walk + key memcmp.
                                let mut acc = tx.read(&it[0])? ^ tx.read(&it[1])?;
                                // ref_incr.
                                let rc = tx.read(&it[3])?;
                                tx.write(&it[3], rc.wrapping_add(1))?;
                                // ITEM_FETCHED, stored even when already set.
                                let f = tx.read(&it[2])?;
                                tx.write(&it[2], f | 1)?;
                                // Value + cas.
                                acc ^= tx.read(&it[4])? ^ tx.read(&it[5])?;
                                // ref_decr.
                                let rc = tx.read(&it[3])?;
                                tx.write(&it[3], rc.wrapping_sub(1))?;
                                // stats_inline.
                                for s in &stats_full {
                                    let v = tx.read(s)?;
                                    tx.write(s, v + 1)?;
                                }
                                Ok(acc)
                            })
                        } else {
                            set_tx(&rt_full, it, &stats_full)
                        }
                    })
                },
                format!("{algo}/fastlane_90_10"),
                |b| {
                    b.iter(|| {
                        let r = lcg(&mut seed_fast);
                        let it = &items_fast[(r % ITEMS as u64) as usize];
                        if r % 10 < 9 {
                            let out = rt_fast.atomic_ro(|tx| {
                                let mut acc = tx.read(&it[0])? ^ tx.read(&it[1])?;
                                let rc = tx.read(&it[3])?; // elided refcount
                                let f = tx.read(&it[2])?; // FETCHED already set
                                acc ^= tx.read(&it[4])? ^ tx.read(&it[5])? ^ rc ^ f;
                                Ok(acc)
                            });
                            for s in &mut priv_stats {
                                *s += 1;
                            }
                            out
                        } else {
                            set_tx(&rt_fast, it, &stats_fast)
                        }
                    })
                },
            );
            black_box(priv_stats);
            report("fulltx", &rt_full);
            report("fastlane", &rt_fast);
        }

        // The promotion tax: enter RO but still RMW the refcount word —
        // every GET promotes in flight (the no-elision shape).
        {
            let rt = runtime(algo);
            let items = table();
            let mut seed = 0x9e3779b97f4a7c15u64;
            g.bench_function(format!("{algo}/fastlane_promote"), |b| {
                b.iter(|| {
                    let r = lcg(&mut seed);
                    let it = &items[(r % ITEMS as u64) as usize];
                    rt.atomic_ro(|tx| {
                        let mut acc = tx.read(&it[0])? ^ tx.read(&it[1])? ^ tx.read(&it[2])?;
                        let rc = tx.read(&it[3])?;
                        tx.write(&it[3], rc.wrapping_add(1))?;
                        acc ^= tx.read(&it[4])?;
                        Ok(acc)
                    })
                })
            });
            report("promote", &rt);
        }
    }
    let stats = g.finish();
    // The epoch-invariant regression gate: because the pair ran
    // interleaved, the fulltx/fastlane ratio is stable (observed
    // 1.6–2.2x across runs and noise epochs) even when absolute
    // nanoseconds wander ±50%. The acceptance bar is 1.5x; gating a
    // notch under it tolerates residual per-sample noise while still
    // failing loudly if the fast lane ever stops being a fast lane.
    ratio_gate(&stats, "fulltx_90_10", "fastlane_90_10", 1.4);
}

/// Fails the bench run unless `slow`'s median is at least `floor` times
/// `fast`'s median, for every algorithm prefix present in `stats`.
fn ratio_gate(stats: &[testkit::bench::BenchStats], slow: &str, fast: &str, floor: f64) {
    for s in stats {
        let Some(algo) = s.name.strip_suffix(&format!("/{slow}")) else {
            continue;
        };
        let fast_name = format!("{algo}/{fast}");
        let Some(f) = stats.iter().find(|b| b.name == fast_name) else {
            continue;
        };
        let ratio = s.median_ns / f.median_ns.max(1e-9);
        if ratio < floor {
            eprintln!(
                "RATIO REGRESSION {algo}: {slow} {:.1}ns / {fast} {:.1}ns = {ratio:.2}x \
                 < required {floor:.2}x",
                s.median_ns, f.median_ns
            );
            std::process::exit(1);
        }
        println!("    [gate] {algo}: {slow}/{fast} = {ratio:.2}x (floor {floor:.2}x)");
    }
}

fn bench_multiget(c: &mut Criterion) {
    const BATCH: usize = 16;
    let mut g = c.benchmark_group("getpath_multiget");
    g.sample_size(40);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        let rt = runtime(algo);
        let items = table();

        // single — 16 keys, one read-only transaction each. batched — the
        // same 16 keys in ONE read-only transaction: one begin, one
        // snapshot, one commit fence for the whole batch. Interleaved for
        // the same ratio-stability reason as the mix pair.
        let mut seed = 1u64;
        let mut seed2 = 1u64;
        g.bench_pair(
            format!("{algo}/single_x16"),
            |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for _ in 0..BATCH {
                        let it = &items[(lcg(&mut seed) % ITEMS as u64) as usize];
                        acc ^= rt.atomic_ro(|tx| {
                            let mut a = 0u64;
                            for w in it {
                                a ^= tx.read(w)?;
                            }
                            Ok(a)
                        });
                    }
                    acc
                })
            },
            format!("{algo}/batched_x16"),
            |b| {
                b.iter(|| {
                    let picks: [usize; BATCH] =
                        std::array::from_fn(|_| (lcg(&mut seed2) % ITEMS as u64) as usize);
                    rt.atomic_ro(|tx| {
                        let mut a = 0u64;
                        for &i in &picks {
                            for w in &items[i] {
                                a ^= tx.read(w)?;
                            }
                        }
                        Ok(a)
                    })
                })
            },
        );
        report("multiget", &rt);
    }
    let stats = g.finish();
    // Batching must never LOSE to one-transaction-per-key; the win is
    // modest single-threaded (it saves begin/commit, not validation), so
    // the floor only guards against inversion.
    ratio_gate(&stats, "single_x16", "batched_x16", 0.95);
}

/// One sample of the contended GET mix: `workers` threads each run
/// `iters` operations of a 90/10 GET/SET mix over their **own** slice of
/// the item table, so write sets never overlap and the threads share only
/// the commit machinery. GETs ride the read-only fast lane (they read the
/// clock but never tick it); the SETs are what contend on the commit
/// clock. The per-worker batch is floored so one sample spans many
/// scheduler quanta (short samples on small hosts measure descheduling,
/// not the payload); the barrier-to-join wall time is scaled back to the
/// requested `iters`.
fn contended_mix_run(
    rt: &TmRuntime,
    items: &[[TCell<u64>; ITEM_WORDS]],
    workers: usize,
    iters: u64,
) -> std::time::Duration {
    const MIN_REPS: u64 = 12_000;
    let reps = iters.max(MIN_REPS);
    let block = ITEMS / workers;
    let barrier = std::sync::Barrier::new(workers + 1);
    let elapsed = std::thread::scope(|s| {
        for w in 0..workers {
            let barrier = &barrier;
            s.spawn(move || {
                let mut seed = 0x9e3779b97f4a7c15u64 ^ (w as u64) << 32;
                barrier.wait();
                let mut acc = 0u64;
                for _ in 0..reps {
                    let r = lcg(&mut seed);
                    let it = &items[w * block + (r % block as u64) as usize];
                    if r % 10 < 9 {
                        acc ^= rt.atomic_ro(|tx| {
                            let mut a = tx.read(&it[0])? ^ tx.read(&it[1])?;
                            a ^= tx.read(&it[2])? ^ tx.read(&it[3])?;
                            a ^= tx.read(&it[4])? ^ tx.read(&it[5])?;
                            Ok(a)
                        });
                    } else {
                        rt.atomic(|tx| {
                            let v = tx.read(&it[4])?;
                            tx.write(&it[4], v.wrapping_add(1))?;
                            let cas = tx.read(&it[5])?;
                            tx.write(&it[5], cas.wrapping_add(1))?;
                            Ok(())
                        });
                    }
                }
                black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0.elapsed()
    });
    elapsed.mul_f64(iters as f64 / reps as f64)
}

/// Contended GET path: 2/4/8 workers on disjoint item slices, single
/// global clock vs the 8-shard clock. GETs dominate, so this pins the
/// read side of the sharding work — `now_cached` keeps fast-lane reads
/// off the other shards' cache lines. The pair feeds the bench_compare
/// baseline gate; the shard-spread assert (from the SETs' commit ticks)
/// is the structural check that holds on any host.
fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("getpath_contended");
    g.sample_size(15);
    for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
        for workers in [2usize, 4, 8] {
            let rt1 = TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .clock_shards(1)
                .build();
            let items1 = table();
            let rt8 = TmRuntime::builder()
                .algorithm(algo)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .clock_shards(8)
                .build();
            let items8 = table();
            g.bench_pair(
                format!("{algo}/shards1_w{workers}"),
                |b| b.iter_custom(|iters| contended_mix_run(&rt1, &items1, workers, iters)),
                format!("{algo}/shards8_w{workers}"),
                |b| b.iter_custom(|iters| contended_mix_run(&rt8, &items8, workers, iters)),
            );
            if !matches!(algo, Algorithm::Norec) {
                let ticked = rt8.clock_shard_stats().iter().filter(|s| s.ticks > 0).count();
                let want = workers.min(rt8.clock_shards());
                assert!(
                    ticked >= want,
                    "{algo}: {workers} disjoint writers ticked only {ticked} of \
                     {} clock shards (expected >= {want})",
                    rt8.clock_shards()
                );
            }
            report(&format!("contended_shards8_w{workers}"), &rt8);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_mix, bench_multiget, bench_contended);
criterion_main!(benches);
