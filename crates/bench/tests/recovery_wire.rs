//! Recovery-semantics conformance against a REAL `mcached` process over
//! TCP: kill it (gracefully and un-gracefully), start a new process on
//! the same redo-log directory, and check what the wire serves.
//!
//! What a warm restart must and must not preserve:
//!
//! * last-write-wins values, flags, and the durability stats surface
//! * CAS uniqueness ACROSS processes — every post-restart id is strictly
//!   above every pre-crash id (the recovered floor)
//! * expired-at-replay entries are skipped, not resurrected
//! * `flush_all` is logged, so replay cannot resurrect flushed items
//! * `SIGTERM` drains, seals the segment, and prints the final counters

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use bench::wire::WireConn;

struct Daemon {
    child: Child,
    stdout: BufReader<ChildStdout>,
    pub addr: String,
    /// The `RECOVERED items=N torn_records_dropped=M` banner, when the
    /// server started with a log attached.
    pub recovered_banner: Option<String>,
}

impl Daemon {
    /// Spawns `mcached` on an ephemeral port and waits for `LISTENING`.
    fn start(dur_dir: &PathBuf, fsync: &str) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_mcached"))
            .args([
                "--port",
                "0",
                "--threads",
                "2",
                "--branch",
                "it-oncommit",
                "--dur-path",
                dur_dir.to_str().unwrap(),
                "--dur-fsync",
                fsync,
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn mcached");
        let mut child = child;
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut recovered_banner = None;
        let mut addr = None;
        for _ in 0..64 {
            let mut line = String::new();
            if stdout.read_line(&mut line).expect("read startup banner") == 0 {
                break;
            }
            let line = line.trim().to_string();
            if line.starts_with("RECOVERED ") {
                recovered_banner = Some(line);
            } else if let Some(a) = line.strip_prefix("LISTENING ") {
                addr = Some(a.to_string());
                break;
            }
        }
        Daemon {
            child,
            stdout,
            addr: addr.expect("mcached printed LISTENING"),
            recovered_banner,
        }
    }

    fn conn(&self) -> WireConn {
        WireConn::connect(&self.addr).expect("connect to mcached")
    }

    /// Graceful stop through the stdin pipe; returns the full remaining
    /// stdout (the shutdown counters).
    fn stop_via_pipe(mut self) -> String {
        self.child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(b"shutdown\n")
            .expect("write shutdown");
        self.wait_and_drain()
    }

    /// Graceful stop via SIGTERM; returns the full remaining stdout.
    fn stop_via_sigterm(mut self) -> String {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
        self.wait_and_drain()
    }

    /// Hard kill — no seal, no drain; the log keeps whatever the OS has.
    fn kill_hard(mut self) {
        self.child.kill().expect("SIGKILL mcached");
        let _ = self.child.wait();
    }

    fn wait_and_drain(&mut self) -> String {
        let status = self.child.wait().expect("wait for mcached");
        assert!(status.success(), "graceful shutdown must exit 0: {status:?}");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drain stdout");
        rest
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("recovery-wire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn set(conn: &mut WireConn, key: &str, value: &[u8], flags: u32, exptime: u32) {
    let mut req = format!("set {key} {flags} {exptime} {}\r\n", value.len()).into_bytes();
    req.extend_from_slice(value);
    req.extend_from_slice(b"\r\n");
    assert_eq!(conn.ascii_line(&req).expect("set"), b"STORED");
}

fn stat(conn: &mut WireConn, name: &str) -> u64 {
    conn.ascii_stats()
        .expect("stats")
        .into_iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("stats missing {name}"))
        .1
}

#[test]
fn sigterm_restart_preserves_values_cas_floor_and_expiry() {
    let dir = tmpdir("sigterm");
    let d = Daemon::start(&dir, "always");
    assert_eq!(
        d.recovered_banner.as_deref(),
        Some("RECOVERED items=0 torn_records_dropped=0"),
        "a fresh directory recovers nothing"
    );
    let old_cas;
    {
        let mut c = d.conn();
        set(&mut c, "keep", b"v1", 9, 0);
        set(&mut c, "keep", b"v2", 9, 0); // overwrite: replay keeps last
        set(&mut c, "brief", b"x", 0, 1); // expires while we sleep below
        assert_eq!(c.ascii_line(b"incr absent 1\r\n").expect("incr"), b"NOT_FOUND");
        let hits = c.ascii_get(&[b"keep"], true).expect("gets");
        old_cas = hits[0].cas;
        assert!(stat(&mut c, "dur_appends") >= 3, "every mutation logged");
        assert_eq!(stat(&mut c, "log_write_errors"), 0);
    }
    let out = d.stop_via_sigterm();
    assert!(
        out.contains("shutdown: total_connections="),
        "SIGTERM must print the final wire counters: {out:?}"
    );
    assert!(
        out.contains("durability: dur_appends="),
        "SIGTERM must print the durability counters: {out:?}"
    );

    // Let `brief` pass its 1s expiry so replay must drop it.
    std::thread::sleep(Duration::from_millis(1300));

    let d = Daemon::start(&dir, "always");
    let banner = d.recovered_banner.clone().expect("log attached");
    assert!(
        banner.ends_with("torn_records_dropped=0"),
        "sealed log recovers without torn records: {banner}"
    );
    {
        let mut c = d.conn();
        assert_eq!(stat(&mut c, "recovered_items"), 1, "only `keep` is live at replay");
        let hits = c.ascii_get(&[b"keep", b"brief"], true).expect("gets");
        assert_eq!(hits.len(), 1, "expired entry must not be resurrected");
        assert_eq!(hits[0].data, b"v2", "last write wins across restart");
        assert_eq!(hits[0].flags, 9, "flags replayed");
        assert!(
            hits[0].cas > old_cas,
            "replayed CAS {} must clear the pre-crash id {old_cas}",
            hits[0].cas
        );
        set(&mut c, "fresh", b"y", 0, 0);
        let fresh = c.ascii_get(&[b"fresh"], true).expect("gets");
        assert!(
            fresh[0].cas > old_cas,
            "post-restart CAS ids stay strictly above every pre-crash id"
        );
    }
    d.stop_via_pipe();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flush_all_is_logged_and_not_resurrected() {
    let dir = tmpdir("flush");
    let d = Daemon::start(&dir, "every:8");
    {
        let mut c = d.conn();
        set(&mut c, "pre", b"doomed", 0, 0);
        assert_eq!(c.ascii_line(b"flush_all\r\n").expect("flush"), b"OK");
        // Cross the second boundary so the post-flush store is live under
        // memcached's `last > watermark` rule in BOTH incarnations.
        std::thread::sleep(Duration::from_millis(1100));
        set(&mut c, "post", b"alive", 0, 0);
        let hits = c.ascii_get(&[b"pre", b"post"], false).expect("get");
        assert_eq!(hits.len(), 1, "flush took `pre` in the live cache");
    }
    let out = d.stop_via_pipe();
    assert!(out.contains("durability:"), "pipe shutdown prints counters too: {out:?}");

    let d = Daemon::start(&dir, "every:8");
    {
        let mut c = d.conn();
        let hits = c.ascii_get(&[b"pre", b"post"], false).expect("get");
        assert_eq!(hits.len(), 1, "replay must not resurrect flushed items");
        assert_eq!(hits[0].key, b"post");
        assert_eq!(hits[0].data, b"alive");
    }
    d.stop_via_pipe();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hard_kill_recovers_synced_prefix() {
    let dir = tmpdir("kill9");
    let d = Daemon::start(&dir, "always");
    {
        let mut c = d.conn();
        for i in 0..20 {
            set(&mut c, &format!("k{i}"), b"v", 0, 0);
        }
        assert_eq!(stat(&mut c, "dur_appends"), 20);
    }
    // SIGKILL: no drain, no seal. With fsync=always every append was
    // synced before its STORED went out, so nothing may be lost.
    d.kill_hard();
    let d = Daemon::start(&dir, "always");
    {
        let mut c = d.conn();
        assert_eq!(
            stat(&mut c, "recovered_items"),
            20,
            "fsync=always loses nothing on SIGKILL"
        );
        let keys: Vec<String> = (0..20).map(|i| format!("k{i}")).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        assert_eq!(c.ascii_get(&refs, false).expect("get").len(), 20);
    }
    d.stop_via_pipe();
    let _ = std::fs::remove_dir_all(&dir);
}
