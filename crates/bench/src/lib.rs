//! Benchmark harness for the reproduction: workload runner, per-figure and
//! per-table experiment definitions, and paper-format reporting.
//!
//! The paper's setup: memslap v1.0 with `--concurrency=x
//! --execute-number=625000 --binary`, x ∈ {1, 2, 4, 8, 12}, server and
//! client co-located, 5 trials, mean ± one standard deviation. Perfect
//! scaling shows as *flat* run time, since every thread performs the same
//! number of operations.
//!
//! Scale knobs (environment variables, so `cargo bench` stays tractable on
//! small hosts while `bin/reproduce --full` approaches the paper's size):
//!
//! | var | meaning | default |
//! |---|---|---|
//! | `MC_OPS` | operations per thread | 5000 |
//! | `MC_TRIALS` | trials per point | 3 |
//! | `MC_THREADS` | comma-separated worker counts | `1,2,4,8,12` |
//! | `MC_KEYS` | keyspace size | 2000 |
//! | `MC_VALUE` | value bytes | 256 |

#![warn(missing_docs)]

pub mod wire;

use std::sync::Arc;
use std::time::Instant;

use mcache::{Branch, McCache, McConfig, SlabConfig, Stage};
use tm::{Algorithm, ContentionManager, StatsSnapshot, ThreadTally};
use workload::{Op, Workload};

/// Experiment scale (see module docs for the environment overrides).
#[derive(Clone, Debug)]
pub struct Scale {
    /// Operations per worker thread (paper: 625 000).
    pub ops: usize,
    /// Trials per configuration (paper: 5).
    pub trials: usize,
    /// Worker-thread counts (paper: 1, 2, 4, 8, 12).
    pub threads: Vec<usize>,
    /// Keyspace size.
    pub keys: usize,
    /// Value size in bytes (memslap default ~1 KiB; scaled down).
    pub value: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            ops: 5_000,
            trials: 3,
            threads: vec![1, 2, 4, 8, 12],
            keys: 2_000,
            value: 256,
        }
    }
}

impl Scale {
    /// Reads the scale from the environment (see module docs).
    pub fn from_env() -> Self {
        let mut s = Scale::default();
        let num = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = num("MC_OPS") {
            s.ops = v.max(1);
        }
        if let Some(v) = num("MC_TRIALS") {
            s.trials = v.max(1);
        }
        if let Some(v) = num("MC_KEYS") {
            s.keys = v.max(1);
        }
        if let Some(v) = num("MC_VALUE") {
            s.value = v.max(1);
        }
        if let Ok(t) = std::env::var("MC_THREADS") {
            let parsed: Vec<usize> = t
                .split(',')
                .filter_map(|x| x.trim().parse().ok())
                .filter(|&x| x > 0)
                .collect();
            if !parsed.is_empty() {
                s.threads = parsed;
            }
        }
        s
    }

    /// A tiny scale for unit tests and Criterion samples.
    pub fn tiny() -> Self {
        Scale {
            ops: 300,
            trials: 1,
            threads: vec![2],
            keys: 200,
            value: 64,
        }
    }

    /// The memslap workload for a given thread count.
    pub fn workload(&self, threads: usize) -> Workload {
        Workload::builder()
            .concurrency(threads)
            .execute_number(self.ops)
            .key_count(self.keys)
            .value_size(self.value)
            .binary(true)
            .build()
    }
}

/// One experiment configuration: a branch plus optional runtime overrides
/// (Figure 11 varies algorithm and contention manager on a fixed branch).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Display label (the paper's legend entry).
    pub label: String,
    /// Cache branch.
    pub branch: Branch,
    /// STM algorithm.
    pub algorithm: Algorithm,
    /// Contention manager override.
    pub contention: Option<ContentionManager>,
    /// §5 future-work optimization: elide refcount RMWs on IT branches.
    pub refcount_elision: bool,
}

impl BenchConfig {
    /// A plain branch configuration labeled with the branch's paper name.
    pub fn branch(branch: Branch) -> Self {
        BenchConfig {
            label: branch.to_string(),
            branch,
            algorithm: Algorithm::Eager,
            contention: None,
            refcount_elision: false,
        }
    }

    /// A Figure-11 configuration: IP-NoLock with an explicit algorithm and
    /// contention manager.
    pub fn algo(label: &str, algorithm: Algorithm, contention: ContentionManager) -> Self {
        BenchConfig {
            label: label.to_owned(),
            branch: Branch::IpNoLock,
            algorithm,
            contention: Some(contention),
            refcount_elision: false,
        }
    }

    fn mc_config(&self, scale: &Scale, threads: usize) -> McConfig {
        McConfig {
            branch: self.branch,
            algorithm: self.algorithm,
            contention: self.contention,
            workers: threads,
            slab: SlabConfig {
                // Size the arena so the working set fits without thrashing
                // but eviction still occurs under pressure sweeps.
                mem_limit: (scale.keys * (scale.value + 512)).next_power_of_two().max(4 << 20),
                page_size: 256 << 10,
                chunk_min: 96,
                growth_factor: 1.25,
            },
            // Saturating table: the load factor stays above the expansion
            // threshold, so every set exercises the maintenance-signal
            // site, as the per-set counts in the paper's tables suggest.
            hash_power: 8,
            hash_power_max: 9,
            item_lock_power: 8,
            verbose: false,
            lru_bump_every: 8,
            maintenance: true,
            refcount_elision: self.refcount_elision,
            // Figures and tables run with magazines off so the per-set
            // serialization counts stay bit-identical to the paper's
            // 3-transaction store; mcslap exposes the knob for the
            // setpath experiments.
            magazine: 0,
            // Figure/table runners keep the default shard fanout; the
            // deterministic tablecheck bin pins its own config to 1.
            clock_shards: 8,
            // Figures and tables measure the in-memory paths; durability
            // has its own bench (stm_durpath) and harness (mccrash).
            dur_path: None,
            dur_fsync: mcache::DurFsync::Off,
            dur_segment_bytes: 4 << 20,
            dur_compact_ratio: 0.5,
            // Figures and tables measure fixed configurations; the
            // adaptive controller has its own bench (stm_adaptpath) and
            // the mcslap --phase-shift schedule.
            adapt: false,
            adapt_epoch_ms: 50,
            hot_slots: 0,
        }
    }
}

/// Measurements from one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock seconds for all threads to finish their streams.
    pub secs: f64,
    /// TM runtime counters accumulated during the run.
    pub tm: StatsSnapshot,
    /// Per-worker commit/abort tallies (Figure 11's variance discussion).
    pub tallies: Vec<ThreadTally>,
    /// get hits observed (sanity: the workload must actually hit).
    pub get_hits: u64,
}

/// Runs `config` once at `threads` workers and returns the measurements.
pub fn run_once(config: &BenchConfig, scale: &Scale, threads: usize) -> RunResult {
    run_once_with(config, scale, threads, Arc::new(scale.workload(threads)))
}

/// [`run_once`] with a caller-provided workload (skewed ablations).
pub fn run_once_with(
    config: &BenchConfig,
    scale: &Scale,
    threads: usize,
    wl: Arc<Workload>,
) -> RunResult {
    let handle = McCache::start(config.mc_config(scale, threads));
    let cache = handle.cache().clone();

    // Preload half the keyspace so gets hit (memslap does an initial
    // window of sets for the same reason).
    for i in (0..wl.key_count()).step_by(2) {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }

    let tm_before = cache.tm_stats();
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let mut joins = Vec::new();
    for w in 0..threads {
        let cache = cache.clone();
        let wl = wl.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            let _ = tm::take_thread_tally();
            barrier.wait();
            for op in wl.stream(w) {
                match op {
                    Op::Get(k) => {
                        cache.get(w, wl.key(k));
                    }
                    Op::Set(k) => {
                        cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                    }
                    Op::Delete(k) => {
                        cache.delete(w, wl.key(k));
                    }
                    Op::Incr(k, d) => {
                        cache.arith(w, wl.key(k), d, true);
                    }
                }
            }
            tm::take_thread_tally()
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let tallies: Vec<ThreadTally> = joins
        .into_iter()
        .map(|j| j.join().expect("worker panicked"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    let tm = cache.tm_stats().since(&tm_before);
    let get_hits = cache.stats().threads.get_hits;
    RunResult {
        secs,
        tm,
        tallies,
        get_hits,
    }
}

/// Mean and sample standard deviation over `trials` runs.
pub fn run_trials(config: &BenchConfig, scale: &Scale, threads: usize) -> (f64, f64, RunResult) {
    let mut times = Vec::with_capacity(scale.trials);
    let mut last = None;
    for _ in 0..scale.trials {
        let r = run_once(config, scale, threads);
        times.push(r.secs);
        last = Some(r);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = if times.len() > 1 {
        times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / (times.len() - 1) as f64
    } else {
        0.0
    };
    (mean, var.sqrt(), last.expect("at least one trial"))
}

/// Prints one figure: a time-vs-threads series per configuration, in the
/// paper's layout (columns = thread counts).
pub fn print_figure(title: &str, configs: &[BenchConfig], scale: &Scale) {
    println!("# {title}");
    println!(
        "# ops/thread={} trials={} keys={} value={}B (paper: 625000 ops, 5 trials)",
        scale.ops, scale.trials, scale.keys, scale.value
    );
    print!("{:<16}", "branch");
    for t in &scale.threads {
        print!(" {t:>7}T stdev ");
    }
    println!();
    for cfg in configs {
        print!("{:<16}", cfg.label);
        for &t in &scale.threads {
            let (mean, sd, _) = run_trials(cfg, scale, t);
            print!(" {mean:>7.3}s {sd:>5.3} ");
        }
        println!();
    }
    println!();
}

/// Prints one serialization table (the paper's Tables 1–4) at the paper's
/// 4-thread point.
pub fn print_table(title: &str, configs: &[BenchConfig], scale: &Scale) {
    println!("# {title} (4-thread execution)");
    println!(
        "{:<16} {:>12} {:>20} {:>20} {:>12}",
        "branch", "txns", "in-flight-switch", "start-serial", "abort-serial"
    );
    for cfg in configs {
        let r = run_once(cfg, scale, 4);
        let t = r.tm.transactions().max(1) as f64;
        println!(
            "{:<16} {:>12} {:>12} ({:>4.1}%) {:>12} ({:>4.1}%) {:>12}",
            cfg.label,
            r.tm.transactions(),
            r.tm.in_flight_switch,
            100.0 * r.tm.in_flight_switch as f64 / t,
            r.tm.start_serial,
            100.0 * r.tm.start_serial as f64 / t,
            r.tm.abort_serial,
        );
    }
    println!();
}

/// The experiment roster, one entry per paper artifact.
pub mod figures {
    use super::*;

    /// Figure 4 configurations: baseline transactionalization.
    pub fn fig4() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Baseline),
            BenchConfig::branch(Branch::Semaphore),
            BenchConfig::branch(Branch::Ip(Stage::Plain)),
            BenchConfig::branch(Branch::It(Stage::Plain)),
            BenchConfig::branch(Branch::Ip(Stage::Callable)),
            BenchConfig::branch(Branch::It(Stage::Callable)),
        ]
    }

    /// Table 1 configurations.
    pub fn table1() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Ip(Stage::Plain)),
            BenchConfig::branch(Branch::It(Stage::Plain)),
            BenchConfig::branch(Branch::Ip(Stage::Callable)),
            BenchConfig::branch(Branch::It(Stage::Callable)),
        ]
    }

    /// Figure 6: maximal transactionalization.
    pub fn fig6() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Baseline),
            BenchConfig::branch(Branch::Ip(Stage::Callable)),
            BenchConfig::branch(Branch::It(Stage::Callable)),
            BenchConfig::branch(Branch::Ip(Stage::Max)),
            BenchConfig::branch(Branch::It(Stage::Max)),
        ]
    }

    /// Table 2 configurations.
    pub fn table2() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Ip(Stage::Callable)),
            BenchConfig::branch(Branch::It(Stage::Callable)),
            BenchConfig::branch(Branch::Ip(Stage::Max)),
            BenchConfig::branch(Branch::It(Stage::Max)),
        ]
    }

    /// Figure 8: safe libraries.
    pub fn fig8() -> Vec<BenchConfig> {
        let mut v = fig6();
        v.push(BenchConfig::branch(Branch::Ip(Stage::Lib)));
        v.push(BenchConfig::branch(Branch::It(Stage::Lib)));
        v
    }

    /// Table 3 configurations.
    pub fn table3() -> Vec<BenchConfig> {
        let mut v = table2();
        v.push(BenchConfig::branch(Branch::Ip(Stage::Lib)));
        v.push(BenchConfig::branch(Branch::It(Stage::Lib)));
        v
    }

    /// Figure 9: onCommit handlers.
    pub fn fig9() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Baseline),
            BenchConfig::branch(Branch::Ip(Stage::Callable)),
            BenchConfig::branch(Branch::It(Stage::Callable)),
            BenchConfig::branch(Branch::Ip(Stage::Lib)),
            BenchConfig::branch(Branch::It(Stage::Lib)),
            BenchConfig::branch(Branch::Ip(Stage::OnCommit)),
            BenchConfig::branch(Branch::It(Stage::OnCommit)),
        ]
    }

    /// Table 4 configurations.
    pub fn table4() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Ip(Stage::Callable)),
            BenchConfig::branch(Branch::It(Stage::Callable)),
            BenchConfig::branch(Branch::Ip(Stage::Lib)),
            BenchConfig::branch(Branch::It(Stage::Lib)),
            BenchConfig::branch(Branch::Ip(Stage::OnCommit)),
            BenchConfig::branch(Branch::It(Stage::OnCommit)),
        ]
    }

    /// Figure 10: removing the serial readers/writer lock.
    pub fn fig10() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Baseline),
            BenchConfig::branch(Branch::Ip(Stage::OnCommit)),
            BenchConfig::branch(Branch::It(Stage::OnCommit)),
            BenchConfig::branch(Branch::IpNoLock),
            BenchConfig::branch(Branch::ItNoLock),
        ]
    }

    /// Figure 11: algorithms and contention managers on the NoLock
    /// runtime.
    pub fn fig11() -> Vec<BenchConfig> {
        vec![
            BenchConfig::branch(Branch::Baseline),
            BenchConfig::algo("GCC-NoCM", Algorithm::Eager, ContentionManager::None),
            BenchConfig::algo("NOrec", Algorithm::Norec, ContentionManager::None),
            BenchConfig::algo("Lazy", Algorithm::Lazy, ContentionManager::None),
            BenchConfig::algo(
                "GCC-Hourglass",
                Algorithm::Eager,
                ContentionManager::HOURGLASS_128,
            ),
            BenchConfig::algo(
                "GCC-Backoff",
                Algorithm::Eager,
                ContentionManager::Backoff { max_shift: 12 },
            ),
        ]
    }
}

/// Prints Figure 11's companion abort-rate report (the paper's §4 text:
/// aborts per commit and cross-thread variance).
pub fn print_abort_rates(scale: &Scale, threads: usize) {
    println!("# Abort rates at {threads} threads (paper §4 text)");
    println!(
        "{:<16} {:>16} {:>18} {:>22}",
        "algorithm", "commits", "aborts/commit", "per-thread a/c stdev"
    );
    for cfg in figures::fig11().iter().skip(1) {
        let r = run_once(cfg, scale, threads);
        let per_thread: Vec<f64> = r
            .tallies
            .iter()
            .filter(|t| t.commits > 0)
            .map(|t| t.aborts as f64 / t.commits as f64)
            .collect();
        let mean = per_thread.iter().sum::<f64>() / per_thread.len().max(1) as f64;
        let var = per_thread
            .iter()
            .map(|x| (x - mean).powi(2))
            .sum::<f64>()
            / per_thread.len().max(1) as f64;
        println!(
            "{:<16} {:>16} {:>18.3} {:>22.4}",
            cfg.label,
            r.tm.commits,
            r.tm.aborts_per_commit(),
            var.sqrt()
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_sane_results() {
        let scale = Scale::tiny();
        let cfg = BenchConfig::branch(Branch::Ip(Stage::OnCommit));
        let r = run_once(&cfg, &scale, 2);
        assert!(r.secs > 0.0);
        assert!(r.tm.commits > 0, "{:?}", r.tm);
        assert!(r.get_hits > 0, "workload must hit the preloaded keys");
        assert_eq!(r.tallies.len(), 2);
    }

    #[test]
    fn trials_compute_mean_and_stdev() {
        let mut scale = Scale::tiny();
        scale.trials = 2;
        let cfg = BenchConfig::branch(Branch::Baseline);
        let (mean, sd, _) = run_trials(&cfg, &scale, 1);
        assert!(mean > 0.0);
        assert!(sd >= 0.0);
    }

    #[test]
    fn fig11_configs_run_all_algorithms() {
        let scale = Scale::tiny();
        for cfg in figures::fig11() {
            let r = run_once(&cfg, &scale, 2);
            assert!(r.tm.commits > 0 || !cfg.branch.policy().transactional, "{}", cfg.label);
        }
    }

    #[test]
    fn roster_sizes_match_paper() {
        assert_eq!(figures::fig4().len(), 6);
        assert_eq!(figures::table1().len(), 4);
        assert_eq!(figures::fig6().len(), 5);
        assert_eq!(figures::fig8().len(), 7);
        assert_eq!(figures::fig9().len(), 7);
        assert_eq!(figures::fig10().len(), 5);
        assert_eq!(figures::fig11().len(), 6);
    }

    #[test]
    fn scale_env_parsing() {
        // No env set: defaults.
        let s = Scale::default();
        assert_eq!(s.threads, vec![1, 2, 4, 8, 12]);
        assert_eq!(s.trials, 3);
    }
}
