//! Regenerates the paper's Table 2.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_table("Table 2", &bench::figures::table2(), &scale);
}
