//! Runs every evaluation artifact of the paper in order, printing
//! paper-format figures and tables (see EXPERIMENTS.md for the recorded
//! output and the paper-vs-measured comparison).
fn main() {
    let scale = bench::Scale::from_env();
    eprintln!("reproducing all figures/tables at {scale:?}");
    bench::print_figure("Figure 4: Performance of baseline transactional memcached", &bench::figures::fig4(), &scale);
    bench::print_table("Table 1: Frequency and cause of serialized transactions", &bench::figures::table1(), &scale);
    bench::print_figure("Figure 6: Performance of maximally transactionalized memcached", &bench::figures::fig6(), &scale);
    bench::print_table("Table 2: Frequency and cause of serialized transactions (Max)", &bench::figures::table2(), &scale);
    bench::print_figure("Figure 8: Performance with safe library functions", &bench::figures::fig8(), &scale);
    bench::print_table("Table 3: Frequency and cause of serialized transactions (Lib)", &bench::figures::table3(), &scale);
    bench::print_figure("Figure 9: Performance with onCommit handlers", &bench::figures::fig9(), &scale);
    bench::print_table("Table 4: Frequency and cause of serialized transactions (onCommit)", &bench::figures::table4(), &scale);
    bench::print_figure("Figure 10: Performance without the readers/writer lock", &bench::figures::fig10(), &scale);
    bench::print_figure("Figure 11: Comparison to other TM algorithms and contention managers", &bench::figures::fig11(), &scale);
    let threads = scale.threads.iter().copied().max().unwrap_or(4);
    bench::print_abort_rates(&scale, threads);
}
