//! Regenerates the paper's Figure 9.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_figure("Figure 9", &bench::figures::fig9(), &scale);
}
