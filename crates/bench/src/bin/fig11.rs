//! Regenerates the paper's Figure 11 (STM algorithms and contention
//! managers on the NoLock runtime) plus the §4 abort-rate discussion.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_figure(
        "Figure 11: Comparison to other TM algorithms and contention managers",
        &bench::figures::fig11(),
        &scale,
    );
    let threads = scale.threads.iter().copied().max().unwrap_or(4);
    bench::print_abort_rates(&scale, threads);
}
