//! Deterministic serialization-cause check for Tables 1–4.
//!
//! The table runners execute 4 workers, so their counts wobble slightly
//! run-to-run with scheduling. This binary runs every table's branch
//! roster single-worker with the maintenance thread disabled, where the
//! operation stream — and therefore every serialization decision — is a
//! pure function of the workload seed. Its output must be bit-identical
//! across runs *and across runtime-internal refactors* (log arenas,
//! write-map layout): serialization causes are a property of the code
//! paths taken, never of the logging machinery.
//!
//! Usage: `cargo run --release -p bench --bin tablecheck`

use std::sync::Arc;

use bench::{figures, BenchConfig, Scale};
use mcache::{McCache, McConfig, SlabConfig};
use workload::Op;

fn run_deterministic(cfg: &BenchConfig, scale: &Scale) -> (u64, u64, u64, u64) {
    let mc = McConfig {
        branch: cfg.branch,
        algorithm: cfg.algorithm,
        contention: cfg.contention,
        workers: 1,
        slab: SlabConfig {
            mem_limit: (scale.keys * (scale.value + 512)).next_power_of_two().max(4 << 20),
            page_size: 256 << 10,
            chunk_min: 96,
            growth_factor: 1.25,
        },
        hash_power: 8,
        hash_power_max: 9,
        item_lock_power: 8,
        verbose: false,
        lru_bump_every: 8,
        maintenance: false,
        refcount_elision: false,
        // Tables 1–4 count the 3-transaction store; magazines stay off so
        // the per-set serialization counts remain bit-identical.
        magazine: 0,
        // One clock shard reproduces the classic single-word global clock
        // timestamp-for-timestamp, so the serialization decision stream is
        // unchanged by the sharded-clock machinery.
        clock_shards: 1,
        dur_path: None,
        dur_fsync: mcache::DurFsync::Off,
        dur_segment_bytes: 4 << 20,
        dur_compact_ratio: 0.5,
        // The adaptive controller stays off: tables measure fixed configs.
        adapt: false,
        adapt_epoch_ms: 50,
        hot_slots: 0,
    };
    let handle = McCache::start(mc);
    let cache = handle.cache().clone();
    let wl = Arc::new(scale.workload(1));
    for i in (0..wl.key_count()).step_by(2) {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }
    let before = cache.tm_stats();
    for op in wl.stream(0) {
        match op {
            Op::Get(k) => {
                cache.get(0, wl.key(k));
            }
            Op::Set(k) => {
                cache.set(0, wl.key(k), &wl.value(k), 0, 0);
            }
            Op::Delete(k) => {
                cache.delete(0, wl.key(k));
            }
            Op::Incr(k, d) => {
                cache.arith(0, wl.key(k), d, true);
            }
        }
    }
    let tm = cache.tm_stats().since(&before);
    (
        tm.transactions(),
        tm.in_flight_switch,
        tm.start_serial,
        tm.abort_serial,
    )
}

fn main() {
    let scale = Scale::from_env();
    for (title, configs) in [
        ("Table 1", figures::table1()),
        ("Table 2", figures::table2()),
        ("Table 3", figures::table3()),
        ("Table 4", figures::table4()),
    ] {
        println!("# {title} (single worker, deterministic)");
        println!(
            "{:<16} {:>12} {:>18} {:>14} {:>14}",
            "branch", "txns", "in-flight-switch", "start-serial", "abort-serial"
        );
        for cfg in &configs {
            let (txns, ifs, ss, as_) = run_deterministic(cfg, &scale);
            println!("{:<16} {txns:>12} {ifs:>18} {ss:>14} {as_:>14}", cfg.label);
        }
        println!();
    }
}
