//! Regenerates the paper's Figure 6.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_figure("Figure 6", &bench::figures::fig6(), &scale);
}
