//! Regenerates the paper's Table 3.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_table("Table 3", &bench::figures::table3(), &scale);
}
