//! Regenerates the paper's Table 1.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_table("Table 1", &bench::figures::table1(), &scale);
}
