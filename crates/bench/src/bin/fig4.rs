//! Regenerates the paper's Figure 4.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_figure("Figure 4", &bench::figures::fig4(), &scale);
}
