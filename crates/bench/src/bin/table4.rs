//! Regenerates the paper's Table 4.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_table("Table 4", &bench::figures::table4(), &scale);
}
