//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. **Hot-key skew** — IP's privatized item access vs IT's transactional
//!    item sections as contention concentrates (the paper's Figure-1
//!    trade-off: IP's lock mini-transactions "implicitly take priority
//!    over" IT's larger transactions).
//! 2. **Value size** — the §4 claim that buffered-update algorithms pay
//!    for byte-wise stores (`memcpy`) read back as words.
//! 3. **Hourglass threshold** — sensitivity of the toxic-transaction gate
//!    (paper configured 128).
//! 4. **Orec-table size** — false-conflict sensitivity of the lock table.
//! 5. **Refcount elision** — the paper's §5 future-work idea: under full
//!    transactionalization, get-path refcount RMW pairs become plain
//!    reads.
//!
//! Reference measurements (1-core host, MC_OPS=3000, MC_KEYS=1000):
//!
//! * Skew: IP stays flat (~0.027s, ~0 aborts/commit at any skew — its
//!   privatized item data never conflicts transactionally) while IT
//!   degrades sharply (1.2 → 12.2 aborts/commit as 50% of traffic lands
//!   on 5% of keys) — the Figure-1 trade-off, quantified.
//! * Value size: eager ≈ lazy ≈ norec at 64 B; by 1–4 KiB the buffered
//!   algorithms pay the byte-store redo-log tax (see also the
//!   `txn_memcpy256` Criterion bench: eager 0.93 µs vs lazy 2.30 µs).
//! * Hourglass: tiny thresholds (4) serialize too eagerly (0.021s,
//!   0.78 a/c); 128 (the paper's setting) already behaves like no-CM.
//! * Orec table: 2^6 orecs alias disjoint cells into 2.6 false aborts
//!   per commit; 2^16 (the default) eliminates them at this scale.

use std::sync::Arc;
use std::time::Instant;

use bench::{run_once, BenchConfig, Scale};
use mcache::Branch;
use tm::{Algorithm, ContentionManager, SerialLockMode, TCell, TmRuntime, Transaction};
use workload::Workload;

fn main() {
    let scale = {
        let mut s = Scale::from_env();
        s.threads = vec![4];
        s
    };

    // ----------------------------------------------------------------
    println!("# Ablation 1: hot-key skew — IP vs IT (onCommit stage, 4 threads)");
    println!(
        "{:<10} {:>12} {:>12} {:>16} {:>16}",
        "skew", "IP secs", "IT secs", "IP aborts/commit", "IT aborts/commit"
    );
    for &(frac, prob) in &[(0.0, 0.0), (0.05, 0.5), (0.01, 0.9), (0.002, 0.95)] {
        let mut row = Vec::new();
        for branch in [Branch::IpNoLock, Branch::ItNoLock] {
            let cfg = BenchConfig::branch(branch);
            let r = run_skewed(&cfg, &scale, 4, frac, prob);
            row.push(r);
        }
        println!(
            "{:<10} {:>11.3}s {:>11.3}s {:>16.3} {:>16.3}",
            format!("{:.0}%@{:.0}%", frac * 100.0, prob * 100.0),
            row[0].secs,
            row[1].secs,
            row[0].tm.aborts_per_commit(),
            row[1].tm.aborts_per_commit(),
        );
    }
    println!();

    // ----------------------------------------------------------------
    println!("# Ablation 2: value size — redo-log tax per algorithm (2 threads)");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "value", "eager", "lazy", "norec"
    );
    for &value in &[64usize, 256, 1024, 4096] {
        let mut s = scale.clone();
        s.value = value;
        s.keys = 500;
        print!("{value:<10}");
        for algo in [Algorithm::Eager, Algorithm::Lazy, Algorithm::Norec] {
            let cfg = BenchConfig::algo(&format!("{algo}"), algo, ContentionManager::None);
            let r = run_once(&cfg, &s, 2);
            print!(" {:>11.3}s", r.secs);
        }
        println!();
    }
    println!();

    // ----------------------------------------------------------------
    println!("# Ablation 3: hourglass threshold (hot counter, 4 threads x 20k txns)");
    println!("{:<12} {:>12} {:>16}", "threshold", "secs", "aborts/commit");
    for &limit in &[4u32, 32, 128, 512] {
        let rt = Arc::new(
            TmRuntime::builder()
                .contention_manager(ContentionManager::Hourglass(limit))
                .serial_lock(SerialLockMode::None)
                .build(),
        );
        let hot = Arc::new(TCell::new(0u64));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rt = rt.clone();
                let hot = hot.clone();
                s.spawn(move || {
                    for _ in 0..20_000 {
                        rt.atomic(|tx| tx.fetch_add(&hot, 1));
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<12} {:>11.3}s {:>16.3}",
            limit,
            secs,
            rt.stats().aborts_per_commit()
        );
        assert_eq!(hot.load_direct(), 80_000);
    }
    println!();

    // ----------------------------------------------------------------
    println!("# Ablation 4: orec table size — false conflicts (4 threads, disjoint cells)");
    println!("{:<12} {:>12} {:>16}", "log2(orecs)", "secs", "aborts/commit");
    for &log in &[6u32, 10, 16, 20] {
        let rt = Arc::new(
            TmRuntime::builder()
                .orec_log_size(log)
                .contention_manager(ContentionManager::None)
                .serial_lock(SerialLockMode::None)
                .build(),
        );
        // Threads touch disjoint cells: every abort is a false conflict
        // from orec aliasing.
        let cells: Arc<Vec<TCell<u64>>> = Arc::new((0..4096).map(|_| TCell::new(0)).collect());
        let start = Instant::now();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let rt = rt.clone();
                let cells = cells.clone();
                s.spawn(move || {
                    for i in 0..10_000usize {
                        let base = t * 1024;
                        rt.atomic(|tx| {
                            for k in 0..8 {
                                tx.modify(&cells[base + (i * 8 + k) % 1024], |v| v + 1)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<12} {:>11.3}s {:>16.4}",
            log,
            secs,
            rt.stats().aborts_per_commit()
        );
    }
    println!();

    // ----------------------------------------------------------------
    println!("# Ablation 5: refcount elision on IT (the paper's §5 future-work idea)");
    println!("{:<14} {:>12} {:>16}", "variant", "secs", "aborts/commit");
    for elide in [false, true] {
        let mut cfg = BenchConfig::branch(Branch::ItNoLock);
        cfg.refcount_elision = elide;
        cfg.label = if elide { "IT+elision".into() } else { "IT".into() };
        let r = run_once(&cfg, &scale, 4);
        println!(
            "{:<14} {:>11.3}s {:>16.3}",
            cfg.label,
            r.secs,
            r.tm.aborts_per_commit()
        );
    }
}

/// `run_once` with a skewed keyspace.
fn run_skewed(
    cfg: &BenchConfig,
    scale: &Scale,
    threads: usize,
    frac: f64,
    prob: f64,
) -> bench::RunResult {
    // Re-implement the runner loop with a skewed workload: the library's
    // run_once is uniform.
    let _ = (frac, prob);
    let wl = Workload::builder()
        .concurrency(threads)
        .execute_number(scale.ops)
        .key_count(scale.keys)
        .value_size(scale.value)
        .skew(frac, prob)
        .build();
    bench::run_once_with(cfg, scale, threads, Arc::new(wl))
}
