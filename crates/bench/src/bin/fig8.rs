//! Regenerates the paper's Figure 8.
fn main() {
    let scale = bench::Scale::from_env();
    bench::print_figure("Figure 8", &bench::figures::fig8(), &scale);
}
