//! `mcslap`: a memslap-flag-compatible load generator that drives the
//! cache through the **binary protocol** layer (encode → decode →
//! dispatch for every operation), end to end.
//!
//! ```console
//! $ cargo run --release -p bench --bin mcslap -- \
//!       --concurrency 4 --execute-number 10000 --binary --branch ip-nolock
//! ```
//!
//! With `--tcp HOST:PORT` the same workloads run over real sockets
//! against a running `mcached` instead of an in-process cache — every
//! GET hit is verified against the deterministic workload oracle, and
//! the run ends by asserting the server saw zero frame errors:
//!
//! ```console
//! $ cargo run --release -p bench --bin mcslap -- \
//!       --tcp 127.0.0.1:11311 --connections 4 --multiget 8
//! ```

use std::sync::Arc;
use std::time::Instant;

use bench::wire::WireConn;
use mcache::proto::binary::{self, Opcode, Request, Status};
use mcache::{Branch, McCache, McConfig, Stage, StoreMode, StoreOp};
use tm::{Algorithm, ContentionManager};
use workload::{Op, OpMix, Workload};

struct Args {
    concurrency: usize,
    execute_number: usize,
    binary: bool,
    branch: Branch,
    value_size: usize,
    keys: usize,
    /// Run over TCP against this `HOST:PORT` instead of in-process.
    tcp: Option<String>,
    /// Client connections in `--tcp` mode (each with its own thread and
    /// workload stream); 0 = `--concurrency`.
    connections: usize,
    /// Percent of operations that are GETs (the rest are SETs).
    read_ratio: usize,
    /// Batch consecutive GETs n-at-a-time through the multiget path
    /// (ASCII-style `get k1 .. kn` via the API, pipelined quiet GETKQ
    /// frames under `--binary`). 1 = no batching.
    multiget: usize,
    /// Batch consecutive SETs n-at-a-time through the single-transaction
    /// store path (`store_batch` via the API, pipelined quiet SETQ frames
    /// under `--binary`). 1 = no batching.
    setq_pipeline: usize,
    /// Upper bound for uniform per-key value sizes; 0 = fixed
    /// `--value-size` for every key.
    value_size_max: usize,
    /// Per-worker slab magazine capacity (transactional-item branches
    /// only); 0 = off, the 3-transaction store.
    magazine: usize,
    /// Warm-restart mode: load the keyspace with the redo log attached,
    /// shut down (sealing the log), restart on the same directory, and
    /// verify + time the recovery.
    restart: bool,
    /// Redo-log directory for `--restart`; a fresh temp dir when unset.
    dur_path: Option<std::path::PathBuf>,
    /// Fsync policy for `--restart`.
    dur_fsync: mcache::DurFsync,
    /// Zipfian key-popularity exponent in `[0, 1)`; 0 = uniform.
    zipf: f64,
    /// Run the adaptive controller (`--adapt on|off`).
    adapt: bool,
    /// Controller epoch in milliseconds.
    adapt_epoch_ms: u64,
    /// Hot-key privatization slots; 0 = off.
    hot_slots: usize,
    /// Run the three-phase schedule (read-mostly → write-storm →
    /// hot-key zipfian) instead of one homogeneous stream, reporting
    /// per-phase throughput and the configuration the controller landed
    /// on after each phase.
    phase_shift: bool,
    /// Pin the STM algorithm (`--algorithm eager|lazy|norec`); None =
    /// the cache default. The static arms of the adaptive-vs-static
    /// comparison pin this with `--adapt off`.
    algorithm: Option<Algorithm>,
    /// Pin the contention manager (`--cm none|gcc-default|backoff:N|
    /// serialize-after:N|hourglass:N`); None = the branch default.
    cm: Option<ContentionManager>,
}

fn parse_cm(name: &str) -> Option<ContentionManager> {
    if name == "none" {
        return Some(ContentionManager::None);
    }
    if name == "gcc-default" {
        return Some(ContentionManager::GCC_DEFAULT);
    }
    if let Some(n) = name.strip_prefix("serialize-after:") {
        return Some(ContentionManager::SerializeAfter(n.parse().ok()?));
    }
    if let Some(n) = name.strip_prefix("backoff:") {
        return Some(ContentionManager::Backoff { max_shift: n.parse().ok()? });
    }
    if let Some(n) = name.strip_prefix("hourglass:") {
        return Some(ContentionManager::Hourglass(n.parse().ok()?));
    }
    None
}

fn parse_branch(name: &str) -> Option<Branch> {
    Some(match name {
        "baseline" => Branch::Baseline,
        "semaphore" => Branch::Semaphore,
        "ip" => Branch::Ip(Stage::Plain),
        "it" => Branch::It(Stage::Plain),
        "ip-max" => Branch::Ip(Stage::Max),
        "it-max" => Branch::It(Stage::Max),
        "ip-lib" => Branch::Ip(Stage::Lib),
        "it-lib" => Branch::It(Stage::Lib),
        "ip-oncommit" => Branch::Ip(Stage::OnCommit),
        "it-oncommit" => Branch::It(Stage::OnCommit),
        "ip-nolock" => Branch::IpNoLock,
        "it-nolock" => Branch::ItNoLock,
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        concurrency: 4,
        execute_number: 10_000,
        binary: false,
        branch: Branch::IpNoLock,
        value_size: 256,
        keys: 2000,
        tcp: None,
        connections: 0,
        read_ratio: 90,
        multiget: 1,
        setq_pipeline: 1,
        value_size_max: 0,
        magazine: 0,
        restart: false,
        dur_path: None,
        dur_fsync: mcache::DurFsync::EveryN(32),
        zipf: 0.0,
        adapt: false,
        adapt_epoch_ms: 50,
        hot_slots: 0,
        phase_shift: false,
        algorithm: None,
        cm: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| {
            it.next().and_then(|v| v.parse::<usize>().ok())
        };
        match flag.as_str() {
            "--concurrency" | "-c" => {
                if let Some(v) = num(&mut it) {
                    args.concurrency = v.max(1);
                }
            }
            "--execute-number" | "-x" => {
                if let Some(v) = num(&mut it) {
                    args.execute_number = v;
                }
            }
            "--value-size" => {
                if let Some(v) = num(&mut it) {
                    args.value_size = v.max(1);
                }
            }
            "--keys" => {
                if let Some(v) = num(&mut it) {
                    args.keys = v.max(1);
                }
            }
            "--read-ratio" => {
                if let Some(v) = num(&mut it) {
                    args.read_ratio = v.min(100);
                }
            }
            // memslap has no such flag, but every setpath arm is
            // write-shaped; --write-ratio 70 == --read-ratio 30.
            "--write-ratio" => {
                if let Some(v) = num(&mut it) {
                    args.read_ratio = 100 - v.min(100);
                }
            }
            "--value-size-max" => {
                if let Some(v) = num(&mut it) {
                    args.value_size_max = v;
                }
            }
            "--setq-pipeline" => {
                if let Some(v) = num(&mut it) {
                    args.setq_pipeline = v.max(1);
                }
            }
            "--magazine" => {
                if let Some(v) = num(&mut it) {
                    args.magazine = v;
                }
            }
            "--multiget" => {
                if let Some(v) = num(&mut it) {
                    args.multiget = v.max(1);
                }
            }
            "--binary" => args.binary = true,
            "--restart" => args.restart = true,
            "--phase-shift" => args.phase_shift = true,
            "--zipf" => {
                match it.next().and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) if (0.0..1.0).contains(&t) => args.zipf = t,
                    _ => {
                        eprintln!("--zipf takes a theta in [0, 1)");
                        std::process::exit(2);
                    }
                }
            }
            "--adapt" => {
                match it.next().as_deref() {
                    Some("on") => args.adapt = true,
                    Some("off") => args.adapt = false,
                    _ => {
                        eprintln!("--adapt takes on | off");
                        std::process::exit(2);
                    }
                }
            }
            "--adapt-epoch-ms" => {
                if let Some(v) = num(&mut it) {
                    args.adapt_epoch_ms = v.max(1) as u64;
                }
            }
            "--hot-slots" => {
                if let Some(v) = num(&mut it) {
                    args.hot_slots = v;
                }
            }
            "--dur-path" => {
                if let Some(p) = it.next() {
                    args.dur_path = Some(std::path::PathBuf::from(p));
                } else {
                    eprintln!("--dur-path needs a directory");
                    std::process::exit(2);
                }
            }
            "--dur-fsync" => {
                if let Some(f) = it.next().as_deref().and_then(mcache::DurFsync::parse) {
                    args.dur_fsync = f;
                } else {
                    eprintln!("--dur-fsync takes always | every:N | off");
                    std::process::exit(2);
                }
            }
            "--tcp" => {
                if let Some(a) = it.next() {
                    args.tcp = Some(a);
                } else {
                    eprintln!("--tcp needs HOST:PORT");
                    std::process::exit(2);
                }
            }
            "--connections" => {
                if let Some(v) = num(&mut it) {
                    args.connections = v.max(1);
                }
            }
            "--algorithm" => {
                args.algorithm = match it.next().as_deref() {
                    Some("eager") => Some(Algorithm::Eager),
                    Some("lazy") => Some(Algorithm::Lazy),
                    Some("norec") => Some(Algorithm::Norec),
                    _ => {
                        eprintln!("--algorithm takes eager | lazy | norec");
                        std::process::exit(2);
                    }
                };
            }
            "--cm" => {
                if let Some(cm) = it.next().as_deref().and_then(parse_cm) {
                    args.cm = Some(cm);
                } else {
                    eprintln!(
                        "--cm takes none | gcc-default | serialize-after:N | \
                         backoff:N | hourglass:N"
                    );
                    std::process::exit(2);
                }
            }
            "--branch" => {
                if let Some(b) = it.next().as_deref().and_then(parse_branch) {
                    args.branch = b;
                } else {
                    eprintln!("unknown branch; see examples/cache_server.rs for names");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    if args.restart {
        run_restart(&args);
        return;
    }
    if args.phase_shift {
        run_phase_shift(&args);
        return;
    }
    if let Some(addr) = args.tcp.clone() {
        run_tcp(&args, &addr);
        return;
    }
    let wl = Arc::new(
        Workload::builder()
            .concurrency(args.concurrency)
            .execute_number(args.execute_number)
            .key_count(args.keys)
            .value_size_range(
                args.value_size,
                args.value_size_max.max(args.value_size),
            )
            .binary(args.binary)
            .zipf(args.zipf)
            .mix(OpMix {
                get: args.read_ratio as u32,
                set: 100 - args.read_ratio as u32,
                delete: 0,
                incr: 0,
            })
            .build(),
    );
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        adapt: args.adapt,
        adapt_epoch_ms: args.adapt_epoch_ms,
        hot_slots: args.hot_slots,
        algorithm: args.algorithm.unwrap_or_default(),
        contention: args.cm,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    for i in 0..wl.key_count() {
        cache.set(0, wl.key(i), &wl.value(i), 0, 0);
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..args.concurrency {
            let cache = cache.clone();
            let wl = wl.clone();
            let binary = args.binary;
            let multiget = args.multiget;
            let setq_pipeline = args.setq_pipeline;
            s.spawn(move || {
                // --multiget batching: consecutive GETs accumulate here and
                // flush n-at-a-time through the single-transaction multiget
                // path; any interleaved write flushes the partial batch
                // first, preserving per-thread order.
                let mut batch: Vec<usize> = Vec::new();
                // --setq-pipeline batching: the write twin — consecutive
                // SETs flush n-at-a-time through the single-transaction
                // store path (quiet SETQ frames on the wire under
                // --binary, `store_batch` through the API).
                let mut set_batch: Vec<usize> = Vec::new();
                let flush_sets = |set_batch: &mut Vec<usize>| {
                    if set_batch.is_empty() {
                        return;
                    }
                    if binary {
                        // Full wire path: encode and decode every quiet
                        // SETQ frame, then dispatch the run as one batch;
                        // successes are silent by protocol.
                        let decoded: Vec<Request> = set_batch
                            .iter()
                            .map(|&k| {
                                let req = Request {
                                    opcode: Opcode::SetQ,
                                    opaque: w as u32,
                                    cas: 0,
                                    key: wl.key(k).to_vec(),
                                    value: wl.value(k),
                                    extra: 0,
                                };
                                Request::decode(&req.encode()).expect("self-encoded frame")
                            })
                            .collect();
                        for resp in binary::execute_pipeline(&cache, w, &decoded) {
                            assert_eq!(resp.opaque, w as u32);
                        }
                    } else {
                        let values: Vec<Vec<u8>> =
                            set_batch.iter().map(|&k| wl.value(k)).collect();
                        let ops: Vec<StoreOp> = set_batch
                            .iter()
                            .zip(&values)
                            .map(|(&k, v)| StoreOp {
                                mode: StoreMode::Set,
                                key: wl.key(k),
                                value: v,
                                flags: 0,
                                exptime: 0,
                            })
                            .collect();
                        cache.store_batch(w, &ops);
                    }
                    set_batch.clear();
                };
                let flush = |batch: &mut Vec<usize>| {
                    if batch.is_empty() {
                        return;
                    }
                    if binary {
                        // Full wire path for the whole pipeline: encode and
                        // decode every quiet-get frame, then dispatch the
                        // run as one batch.
                        let decoded: Vec<Request> = batch
                            .iter()
                            .map(|&k| {
                                let req = Request {
                                    opcode: Opcode::GetKQ,
                                    opaque: w as u32,
                                    cas: 0,
                                    key: wl.key(k).to_vec(),
                                    value: vec![],
                                    extra: 0,
                                };
                                Request::decode(&req.encode()).expect("self-encoded frame")
                            })
                            .collect();
                        for resp in binary::execute_pipeline(&cache, w, &decoded) {
                            assert_eq!(resp.opaque, w as u32);
                        }
                    } else {
                        let keys: Vec<&[u8]> =
                            batch.iter().map(|&k| wl.key(k).as_ref()).collect();
                        cache.get_multi(w, &keys);
                    }
                    batch.clear();
                };
                for op in wl.stream(w) {
                    if multiget > 1 {
                        if let Op::Get(k) = op {
                            flush_sets(&mut set_batch);
                            batch.push(k);
                            if batch.len() == multiget {
                                flush(&mut batch);
                            }
                            continue;
                        }
                        flush(&mut batch);
                    }
                    if setq_pipeline > 1 {
                        if let Op::Set(k) = op {
                            set_batch.push(k);
                            if set_batch.len() == setq_pipeline {
                                flush_sets(&mut set_batch);
                            }
                            continue;
                        }
                        flush_sets(&mut set_batch);
                    }
                    if binary {
                        // Full wire path: encode, decode, dispatch.
                        let req = match op {
                            Op::Get(k) => Request {
                                opcode: Opcode::Get,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: 0,
                            },
                            Op::Set(k) => Request {
                                opcode: Opcode::Set,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: wl.value(k),
                                extra: 0,
                            },
                            Op::Delete(k) => Request {
                                opcode: Opcode::Delete,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: 0,
                            },
                            Op::Incr(k, d) => Request {
                                opcode: Opcode::Increment,
                                opaque: w as u32,
                                cas: 0,
                                key: wl.key(k).to_vec(),
                                value: vec![],
                                extra: d,
                            },
                        };
                        let wire = req.encode();
                        let decoded = Request::decode(&wire).expect("self-encoded frame");
                        let resp = binary::execute(&cache, w, &decoded);
                        assert_eq!(resp.opaque, w as u32);
                    } else {
                        match op {
                            Op::Get(k) => {
                                cache.get(w, wl.key(k));
                            }
                            Op::Set(k) => {
                                cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                            }
                            Op::Delete(k) => {
                                cache.delete(w, wl.key(k));
                            }
                            Op::Incr(k, d) => {
                                cache.arith(w, wl.key(k), d, true);
                            }
                        }
                    }
                }
                flush(&mut batch);
                flush_sets(&mut set_batch);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = args.concurrency * args.execute_number;
    let stats = cache.stats();
    let tm = cache.tm_stats();
    println!(
        "{} ops in {:.3}s = {:.0} ops/s  ({} threads, {} branch, {}, {}% reads, \
         multiget {}, setq-pipeline {}, magazine {})",
        total_ops,
        secs,
        total_ops as f64 / secs,
        args.concurrency,
        args.branch,
        if args.binary { "binary" } else { "api" },
        args.read_ratio,
        args.multiget,
        args.setq_pipeline,
        args.magazine,
    );
    println!(
        "hits={} misses={} evictions={} expansions={} rebalances={}",
        stats.threads.get_hits,
        stats.threads.get_misses,
        stats.global.evictions,
        stats.global.expansions,
        stats.global.rebalances,
    );
    println!("tm: {tm}");
    if args.adapt || args.hot_slots > 0 {
        let (algo, cm) = cache.tm_config();
        println!(
            "adapt: epochs={} switches={} mag_resizes={} ro_tunes={} \
             magazine_cap={} lru_bump_every={} now={algo}/{cm}",
            stats.adapt_epochs,
            stats.adapt_switches,
            stats.adapt_mag_resizes,
            stats.adapt_ro_tunes,
            stats.magazine_cap,
            stats.lru_bump_every,
        );
        println!(
            "hot: armed={} hits={} installs={} invalidations={}",
            stats.hot_armed, stats.hot_hits, stats.hot_installs, stats.hot_invalidations,
        );
    }
}

/// The `--phase-shift` schedule: three back-to-back phases with sharply
/// different profiles — read-mostly uniform, write-storm uniform, and
/// read-heavy hot-key zipfian — over one live cache, the workload the
/// adaptive controller exists for. Per-phase throughput and the
/// configuration the controller landed on print after each phase; the
/// final line is the aggregate ops/s used by the adaptive-vs-static
/// comparison in EXPERIMENTS.md.
fn run_phase_shift(args: &Args) {
    let phases: [(&str, u32, f64); 3] = [
        ("read-mostly", 98, 0.0),
        ("write-storm", 10, 0.0),
        ("hot-zipfian", 90, if args.zipf > 0.0 { args.zipf } else { 0.9 }),
    ];
    let handle = McCache::start(McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        adapt: args.adapt,
        adapt_epoch_ms: args.adapt_epoch_ms,
        hot_slots: args.hot_slots,
        algorithm: args.algorithm.unwrap_or_default(),
        contention: args.cm,
        // GETs ride the pure-read fast lane (§5) so a read-dominated
        // phase is visible to the controller as read-only commits, and
        // the LRU-bump cadence starts wide enough that bump writes don't
        // drown the read signal.
        refcount_elision: true,
        lru_bump_every: 16,
        ..Default::default()
    });
    let cache = handle.cache().clone();
    // Preload so phase 1's reads hit.
    let preload = Workload::builder()
        .concurrency(args.concurrency)
        .execute_number(1)
        .key_count(args.keys)
        .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
        .build();
    for i in 0..preload.key_count() {
        cache.set(0, preload.key(i), &preload.value(i), 0, 0);
    }

    let total_start = Instant::now();
    let mut total_ops = 0usize;
    for (pi, &(name, read_ratio, zipf)) in phases.iter().enumerate() {
        let wl = Arc::new(
            Workload::builder()
                .concurrency(args.concurrency)
                .execute_number(args.execute_number)
                .key_count(args.keys)
                .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
                .seed(0xC0FFEE + pi as u64)
                .zipf(zipf)
                .mix(OpMix {
                    get: read_ratio,
                    set: 100 - read_ratio,
                    delete: 0,
                    incr: 0,
                })
                .build(),
        );
        let start = Instant::now();
        std::thread::scope(|s| {
            for w in 0..args.concurrency {
                let cache = cache.clone();
                let wl = wl.clone();
                s.spawn(move || {
                    for op in wl.stream(w) {
                        match op {
                            Op::Get(k) => {
                                cache.get(w, wl.key(k));
                            }
                            Op::Set(k) => {
                                cache.set(w, wl.key(k), &wl.value(k), 0, 0);
                            }
                            Op::Delete(k) => {
                                cache.delete(w, wl.key(k));
                            }
                            Op::Incr(k, d) => {
                                cache.arith(w, wl.key(k), d, true);
                            }
                        }
                    }
                });
            }
        });
        let secs = start.elapsed().as_secs_f64();
        let ops = args.concurrency * args.execute_number;
        total_ops += ops;
        let (algo, cm) = cache.tm_config();
        let s = cache.stats();
        println!(
            "phase {name}: {} ops in {secs:.3}s = {:.0} ops/s  \
             (now {algo}/{cm}, switches={}, magazine_cap={}, bump_every={}, \
             hot_armed={}, hot_hits={})",
            ops,
            ops as f64 / secs,
            s.adapt_switches,
            s.magazine_cap,
            s.lru_bump_every,
            s.hot_armed,
            s.hot_hits,
        );
    }
    let secs = total_start.elapsed().as_secs_f64();
    let s = cache.stats();
    println!(
        "phase-shift total: {total_ops} ops in {secs:.3}s = {:.0} ops/s  \
         ({} threads, {} branch, adapt={}, epoch={}ms, hot_slots={}, magazine={})",
        total_ops as f64 / secs,
        args.concurrency,
        args.branch,
        if args.adapt { "on" } else { "off" },
        args.adapt_epoch_ms,
        args.hot_slots,
        args.magazine,
    );
    println!(
        "adapt: epochs={} switches={} mag_resizes={} ro_tunes={} \
         hot: armed={} hits={} installs={} invalidations={}",
        s.adapt_epochs,
        s.adapt_switches,
        s.adapt_mag_resizes,
        s.adapt_ro_tunes,
        s.hot_armed,
        s.hot_hits,
        s.hot_installs,
        s.hot_invalidations,
    );
}

/// The `--restart` mode: memslap meets `kill -TERM`. Loads the whole
/// keyspace with the redo log attached, shuts down gracefully (sealing
/// the log), restarts a second cache on the same directory, and verifies
/// every key against the workload oracle — timing each phase so warm
/// restarts are a measured artifact, not folklore.
fn run_restart(args: &Args) {
    let owned_tmp = args.dur_path.is_none();
    let dir = args.dur_path.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mcslap-restart-{}", std::process::id()))
    });
    if owned_tmp {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create restart dir");
    }
    let wl = Workload::builder()
        .concurrency(args.concurrency)
        .execute_number(args.execute_number)
        .key_count(args.keys)
        .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
        .binary(args.binary)
        .mix(OpMix { get: 0, set: 100, delete: 0, incr: 0 })
        .build();
    let cfg = || McConfig {
        branch: args.branch,
        workers: args.concurrency,
        magazine: args.magazine,
        dur_path: Some(dir.clone()),
        dur_fsync: args.dur_fsync,
        ..Default::default()
    };

    // Phase 1: load. One loud set per key, all workers.
    let load_start = Instant::now();
    let handle = McCache::start(cfg());
    let cache = handle.cache().clone();
    std::thread::scope(|s| {
        for w in 0..args.concurrency {
            let cache = cache.clone();
            let wl = &wl;
            s.spawn(move || {
                for i in (w..wl.key_count()).step_by(args.concurrency) {
                    cache.set(w, wl.key(i), &wl.value(i), 0, 0);
                }
            });
        }
    });
    let d = cache.dur_stats().expect("restart mode always logs");
    let load_secs = load_start.elapsed().as_secs_f64();
    println!(
        "restart: loaded {} keys in {:.3}s = {:.0} sets/s ({} branch, fsync={}, \
         dur_appends={} dur_fsyncs={} dur_bytes={})",
        args.keys,
        load_secs,
        args.keys as f64 / load_secs,
        args.branch,
        args.dur_fsync,
        d.appends,
        d.fsyncs,
        d.bytes,
    );

    // Phase 2: graceful shutdown seals the segment.
    let seal_start = Instant::now();
    drop(handle);
    println!("restart: sealed + shut down in {:.3}s", seal_start.elapsed().as_secs_f64());

    // Phase 3: warm restart — recovery runs inside `start`, before the
    // cache accepts its first operation.
    let boot_start = Instant::now();
    let handle = McCache::start(cfg());
    let boot_secs = boot_start.elapsed().as_secs_f64();
    let d = handle.dur_stats().expect("restart mode always logs");
    assert_eq!(
        d.torn_records_dropped, 0,
        "a sealed log must recover without torn records"
    );
    println!(
        "restart: recovered {} items in {:.3}s = {:.0} items/s (torn={})",
        d.recovered_items,
        boot_secs,
        d.recovered_items as f64 / boot_secs.max(1e-9),
        d.torn_records_dropped,
    );

    // Phase 4: verify every key against the oracle.
    let mut verified = 0usize;
    for i in 0..wl.key_count() {
        let got = handle.get(0, wl.key(i)).unwrap_or_else(|| {
            panic!("key index {i} lost across restart")
        });
        assert!(wl.verify_value(i, &got.data), "key index {i} recovered wrong bytes");
        verified += 1;
    }
    println!("restart: verified {verified}/{} keys", wl.key_count());
    drop(handle);
    if owned_tmp {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Sentinel opaque for the trailing Noop in quiet pipelines; key
/// indices (the other opaques in flight) can never reach it.
const NOOP_OPAQUE: u32 = u32::MAX;

/// The `--tcp` mode: same workloads, real sockets against a running
/// `mcached`. Every GET hit is verified against the workload oracle
/// (values are a pure function of the key index), and the run asserts
/// the server counted zero frame errors.
fn run_tcp(args: &Args, addr: &str) {
    let workers = if args.connections > 0 {
        args.connections
    } else {
        args.concurrency
    };
    let wl = Arc::new(
        Workload::builder()
            .concurrency(workers)
            .execute_number(args.execute_number)
            .key_count(args.keys)
            .value_size_range(args.value_size, args.value_size_max.max(args.value_size))
            .binary(args.binary)
            .mix(OpMix {
                get: args.read_ratio as u32,
                set: 100 - args.read_ratio as u32,
                delete: 0,
                incr: 0,
            })
            .build(),
    );

    // Preload the whole keyspace through one connection: noreply sets
    // in bulk writes, then a version roundtrip as the sync point.
    {
        let mut conn = WireConn::connect(addr).expect("connect for preload");
        let mut buf = Vec::new();
        for i in 0..wl.key_count() {
            let value = wl.value(i);
            buf.extend_from_slice(
                format!(
                    "set {} 0 0 {} noreply\r\n",
                    String::from_utf8_lossy(wl.key(i)),
                    value.len()
                )
                .as_bytes(),
            );
            buf.extend_from_slice(&value);
            buf.extend_from_slice(b"\r\n");
            if buf.len() > 256 << 10 {
                conn.send(&buf).expect("preload send");
                buf.clear();
            }
        }
        conn.send(&buf).expect("preload send");
        let v = conn.ascii_line(b"version\r\n").expect("preload sync");
        assert!(v.starts_with(b"VERSION"), "unexpected preload sync: {v:?}");
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let wl = wl.clone();
            s.spawn(move || run_tcp_worker(args, addr, &wl, w));
        }
    });
    let secs = start.elapsed().as_secs_f64();
    let total_ops = workers * args.execute_number;

    let mut conn = WireConn::connect(addr).expect("connect for stats");
    let stats = conn.ascii_stats().expect("final stats");
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("server stats missing {k}"))
    };
    println!(
        "{} ops in {:.3}s = {:.0} ops/s  ({} connections, tcp {}, {}, {}% reads, \
         multiget {}, setq-pipeline {})",
        total_ops,
        secs,
        total_ops as f64 / secs,
        workers,
        addr,
        if args.binary { "binary" } else { "ascii" },
        args.read_ratio,
        args.multiget,
        args.setq_pipeline,
    );
    println!(
        "server: hits={} misses={} curr_connections={} bytes_read={} bytes_written={} \
         frame_errors={}",
        stat("get_hits"),
        stat("get_misses"),
        stat("curr_connections"),
        stat("bytes_read"),
        stat("bytes_written"),
        stat("frame_errors"),
    );
    assert_eq!(stat("frame_errors"), 0, "clean run must not desync frames");
    assert_eq!(stat("request_panics"), 0, "no handler may have panicked");
}

fn run_tcp_worker(args: &Args, addr: &str, wl: &Workload, w: usize) {
    let mut conn = WireConn::connect(addr).expect("worker connect");
    let mut get_batch: Vec<usize> = Vec::new();
    let mut set_batch: Vec<usize> = Vec::new();
    for op in wl.stream(w) {
        if args.multiget > 1 {
            if let Op::Get(k) = op {
                flush_tcp_sets(args, &mut conn, wl, &mut set_batch);
                get_batch.push(k);
                if get_batch.len() == args.multiget {
                    flush_tcp_gets(args, &mut conn, wl, &mut get_batch);
                }
                continue;
            }
            flush_tcp_gets(args, &mut conn, wl, &mut get_batch);
        }
        if args.setq_pipeline > 1 {
            if let Op::Set(k) = op {
                set_batch.push(k);
                if set_batch.len() == args.setq_pipeline {
                    flush_tcp_sets(args, &mut conn, wl, &mut set_batch);
                }
                continue;
            }
            flush_tcp_sets(args, &mut conn, wl, &mut set_batch);
        }
        if args.binary {
            let req = match op {
                Op::Get(k) => Request {
                    opcode: Opcode::Get,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: vec![],
                    extra: 0,
                },
                Op::Set(k) => Request {
                    opcode: Opcode::Set,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: wl.value(k),
                    extra: 0,
                },
                Op::Delete(k) => Request {
                    opcode: Opcode::Delete,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: vec![],
                    extra: 0,
                },
                Op::Incr(k, d) => Request {
                    opcode: Opcode::Increment,
                    opaque: k as u32,
                    cas: 0,
                    key: wl.key(k).to_vec(),
                    value: vec![],
                    extra: d,
                },
            };
            let resp = conn.binary_roundtrip(&req).expect("binary roundtrip");
            assert_eq!(resp.opaque, req.opaque, "opaque echo");
            match op {
                Op::Get(k) => match resp.status {
                    Status::Ok => assert!(
                        wl.verify_value(k, &resp.value),
                        "GET returned wrong bytes for key index {k}"
                    ),
                    Status::KeyNotFound => {}
                    other => panic!("GET answered {other:?}"),
                },
                Op::Set(_) => assert_eq!(resp.status, Status::Ok, "SET must store"),
                Op::Delete(_) => assert!(
                    matches!(resp.status, Status::Ok | Status::KeyNotFound),
                    "DELETE answered {:?}",
                    resp.status
                ),
                Op::Incr(..) => {}
            }
        } else {
            match op {
                Op::Get(k) => {
                    let hits = conn.ascii_get(&[wl.key(k).as_ref()], false).expect("get");
                    if let Some(hit) = hits.first() {
                        assert!(
                            wl.verify_value(k, &hit.data),
                            "GET returned wrong bytes for key index {k}"
                        );
                    }
                }
                Op::Set(k) => {
                    let value = wl.value(k);
                    let mut req = format!(
                        "set {} 0 0 {}\r\n",
                        String::from_utf8_lossy(wl.key(k)),
                        value.len()
                    )
                    .into_bytes();
                    req.extend_from_slice(&value);
                    req.extend_from_slice(b"\r\n");
                    let line = conn.ascii_line(&req).expect("set");
                    assert_eq!(line, b"STORED", "SET must store");
                }
                Op::Delete(k) => {
                    let req = format!("delete {}\r\n", String::from_utf8_lossy(wl.key(k)));
                    let line = conn.ascii_line(req.as_bytes()).expect("delete");
                    assert!(
                        line == b"DELETED" || line == b"NOT_FOUND",
                        "DELETE answered {:?}",
                        String::from_utf8_lossy(&line)
                    );
                }
                Op::Incr(k, d) => {
                    let req = format!("incr {} {}\r\n", String::from_utf8_lossy(wl.key(k)), d);
                    conn.ascii_line(req.as_bytes()).expect("incr");
                }
            }
        }
    }
    flush_tcp_gets(args, &mut conn, wl, &mut get_batch);
    flush_tcp_sets(args, &mut conn, wl, &mut set_batch);
}

/// Flushes a `--multiget` batch over the wire: one `get k1 .. kn` line
/// (ASCII) or a GETKQ burst terminated by a Noop (binary). Every hit is
/// verified against the oracle.
fn flush_tcp_gets(args: &Args, conn: &mut WireConn, wl: &Workload, batch: &mut Vec<usize>) {
    if batch.is_empty() {
        return;
    }
    if args.binary {
        let mut reqs: Vec<Request> = batch
            .iter()
            .map(|&k| Request {
                opcode: Opcode::GetKQ,
                opaque: k as u32,
                cas: 0,
                key: wl.key(k).to_vec(),
                value: vec![],
                extra: 0,
            })
            .collect();
        reqs.push(Request {
            opcode: Opcode::Noop,
            opaque: NOOP_OPAQUE,
            cas: 0,
            key: vec![],
            value: vec![],
            extra: 0,
        });
        let resps = conn.binary_pipeline(&reqs, NOOP_OPAQUE).expect("multiget");
        for resp in &resps[..resps.len() - 1] {
            assert_eq!(resp.status, Status::Ok, "quiet get only answers hits");
            let k = resp.opaque as usize;
            assert_eq!(resp.key.as_slice(), wl.key(k).as_ref(), "GETKQ echoes its key");
            assert!(
                wl.verify_value(k, &resp.value),
                "multiget returned wrong bytes for key index {k}"
            );
        }
    } else {
        let keys: Vec<&[u8]> = batch.iter().map(|&k| wl.key(k).as_ref()).collect();
        let hits = conn.ascii_get(&keys, false).expect("multiget");
        for hit in hits {
            let k = batch
                .iter()
                .copied()
                .find(|&k| wl.key(k).as_ref() == hit.key.as_slice())
                .expect("hit echoes a requested key");
            assert!(
                wl.verify_value(k, &hit.data),
                "multiget returned wrong bytes for key index {k}"
            );
        }
    }
    batch.clear();
}

/// Flushes a `--setq-pipeline` batch: a concatenated burst of loud sets
/// (ASCII) or quiet SETQ frames terminated by a Noop (binary).
fn flush_tcp_sets(args: &Args, conn: &mut WireConn, wl: &Workload, batch: &mut Vec<usize>) {
    if batch.is_empty() {
        return;
    }
    if args.binary {
        let mut reqs: Vec<Request> = batch
            .iter()
            .map(|&k| Request {
                opcode: Opcode::SetQ,
                opaque: k as u32,
                cas: 0,
                key: wl.key(k).to_vec(),
                value: wl.value(k),
                extra: 0,
            })
            .collect();
        reqs.push(Request {
            opcode: Opcode::Noop,
            opaque: NOOP_OPAQUE,
            cas: 0,
            key: vec![],
            value: vec![],
            extra: 0,
        });
        let resps = conn.binary_pipeline(&reqs, NOOP_OPAQUE).expect("setq burst");
        assert_eq!(
            resps.len(),
            1,
            "quiet sets must all succeed silently: {resps:?}"
        );
    } else {
        let mut wire = Vec::new();
        for &k in batch.iter() {
            let value = wl.value(k);
            wire.extend_from_slice(
                format!(
                    "set {} 0 0 {}\r\n",
                    String::from_utf8_lossy(wl.key(k)),
                    value.len()
                )
                .as_bytes(),
            );
            wire.extend_from_slice(&value);
            wire.extend_from_slice(b"\r\n");
        }
        conn.send(&wire).expect("pipelined sets");
        for _ in batch.iter() {
            let line = conn.read_line().expect("set reply");
            assert_eq!(line, b"STORED", "pipelined SET must store");
        }
    }
    batch.clear();
}
